//! The profiler's core safety property: arming it must not perturb
//! training. Timing flows out of the loop into reports, never back into
//! results, so a profiled run must be byte-identical to a bare one — in
//! its loss history, its held-out metrics, and the digest stream the
//! determinism sanitizer records.
//!
//! Both the profiler and the detsan recorder are process-wide, so this
//! file holds a single test (the same discipline as the recorder's own
//! unit tests).

use recsim_data::schema::ModelConfig;
use recsim_prof::Op;
use recsim_train::trainer::{TrainRun, TrainerConfig};

#[test]
fn armed_profiler_leaves_results_and_digests_byte_identical() {
    let model = ModelConfig::test_suite(8, 2, 500, &[16, 8]);

    // Bare run, with the determinism sanitizer armed.
    recsim_detsan::set_enabled(true);
    let bare = TrainRun::new(&model, TrainerConfig::quick_test()).execute();
    let bare_ne = bare.final_ne();
    let bare_stream = recsim_detsan::drain();

    // Same run with every profiling scope live.
    recsim_prof::reset();
    recsim_prof::set_enabled(true);
    let profiled = TrainRun::new(&model, TrainerConfig::quick_test()).execute();
    let profiled_ne = profiled.final_ne();
    let profiled_stream = recsim_detsan::drain();
    recsim_detsan::set_enabled(false);
    recsim_prof::set_enabled(false);
    let snapshot = recsim_prof::drain();

    // Results are bit-identical, not merely close.
    assert_eq!(
        bare.loss_history().len(),
        profiled.loss_history().len(),
        "step counts diverged"
    );
    for (step, (a, b)) in bare
        .loss_history()
        .iter()
        .zip(profiled.loss_history())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "loss diverged at step {step}");
    }
    assert_eq!(
        bare_ne.to_bits(),
        profiled_ne.to_bits(),
        "final NE diverged"
    );

    // The armed sanitizer saw the same digest stream entry-for-entry.
    assert!(!bare_stream.is_empty(), "detsan recorded nothing");
    assert_eq!(
        recsim_detsan::first_divergence(&bare_stream, &profiled_stream),
        None,
        "digest streams diverged"
    );

    // And the profiler really observed the run it left untouched.
    assert!(snapshot.op(Op::TrainStep).count > 0, "no steps profiled");
    assert!(snapshot.op(Op::LinearFwd).count > 0, "no kernels profiled");
    assert!(snapshot.total_flops() > 0, "no FLOPs counted");
}
