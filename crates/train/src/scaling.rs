//! The batch-size scaling accuracy study (paper Figure 15).
//!
//! The paper scales the GPU batch size, re-tunes the learning rate
//! *manually* (the standard linear-scaling rule with warm-up of Goyal et
//! al., which it cites), and observes that the NE gap versus the
//! small-batch CPU baseline still grows with batch size. This module
//! reproduces that protocol: a fixed example budget, a baseline batch, and
//! a sweep of larger batches whose learning rate follows the linear rule.

use crate::trainer::{TrainRun, TrainerConfig};
use recsim_data::schema::ModelConfig;
use serde::{Deserialize, Serialize};

/// One point of the batch-scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Batch size trained at.
    pub batch_size: usize,
    /// Learning rate used (after the linear-scaling rule).
    pub learning_rate: f32,
    /// Final held-out normalized entropy.
    pub ne: f64,
    /// NE gap versus the baseline, in percent (positive = worse).
    pub ne_gap_percent: f64,
}

/// The batch-size scaling study.
///
/// # Example
///
/// ```no_run
/// use recsim_data::schema::ModelConfig;
/// use recsim_train::{BatchScalingStudy, trainer::TrainerConfig};
///
/// let config = ModelConfig::test_suite(8, 2, 200, &[16]);
/// let study = BatchScalingStudy::new(&config, TrainerConfig::accuracy_baseline());
/// let points = study.sweep(&[200, 400, 800, 1600]);
/// assert_eq!(points.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct BatchScalingStudy {
    model_config: ModelConfig,
    baseline: TrainerConfig,
}

impl BatchScalingStudy {
    /// Creates a study around a baseline configuration (its `batch_size`
    /// and `learning_rate` anchor the linear-scaling rule).
    pub fn new(model_config: &ModelConfig, baseline: TrainerConfig) -> Self {
        Self {
            model_config: model_config.clone(),
            baseline,
        }
    }

    /// The linear-scaling learning rate for `batch_size`:
    /// `base_lr × batch / base_batch`, with the Adagrad variant damped to a
    /// square-root rule (adaptive methods need gentler scaling).
    pub fn scaled_learning_rate(&self, batch_size: usize) -> f32 {
        let ratio = batch_size as f32 / self.baseline.batch_size as f32;
        if self.baseline.adagrad {
            self.baseline.learning_rate * ratio.sqrt()
        } else {
            self.baseline.learning_rate * ratio
        }
    }

    /// Trains the baseline and returns its NE.
    pub fn baseline_ne(&self) -> f64 {
        TrainRun::new(&self.model_config, self.baseline)
            .execute()
            .final_ne()
    }

    /// Runs the sweep: each batch size trains on the same example budget
    /// with the manually scaled learning rate; the NE gap is measured
    /// against the baseline batch.
    pub fn sweep(&self, batch_sizes: &[usize]) -> Vec<ScalingPoint> {
        let baseline_ne = self.baseline_ne();
        batch_sizes
            .iter()
            .map(|&batch_size| {
                let lr = self.scaled_learning_rate(batch_size);
                let ne = TrainRun::new(
                    &self.model_config,
                    self.baseline
                        .with_batch_size(batch_size)
                        .with_learning_rate(lr),
                )
                .execute()
                .final_ne();
                ScalingPoint {
                    batch_size,
                    learning_rate: lr,
                    ne,
                    ne_gap_percent: (ne - baseline_ne) / baseline_ne * 100.0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> BatchScalingStudy {
        let config = ModelConfig::test_suite(8, 2, 200, &[16, 8]);
        let baseline = TrainerConfig {
            batch_size: 50,
            train_examples: 20_000,
            eval_examples: 4_000,
            learning_rate: 0.05,
            warmup_steps: 10,
            adagrad: true,
            seed: 7,
        };
        BatchScalingStudy::new(&config, baseline)
    }

    #[test]
    fn linear_rule_scales_lr() {
        let s = study();
        let lr_base = s.scaled_learning_rate(50);
        let lr_4x = s.scaled_learning_rate(200);
        assert!((lr_base - 0.05).abs() < 1e-6);
        // Adagrad variant: sqrt rule.
        assert!((lr_4x - 0.05 * 2.0).abs() < 1e-6);
    }

    #[test]
    fn sweep_produces_gap_per_batch() {
        let s = study();
        let points = s.sweep(&[50, 400]);
        assert_eq!(points.len(), 2);
        // The baseline batch re-run gives (near-)zero gap.
        assert!(points[0].ne_gap_percent.abs() < 1e-9);
        assert!(points[1].ne > 0.0 && points[1].ne.is_finite());
    }

    #[test]
    fn large_batch_with_fixed_budget_loses_quality() {
        // The Figure 15 effect: same example budget, 32x the batch (so 32x
        // fewer optimizer steps) ends with worse held-out NE despite the
        // scaled learning rate.
        let s = study();
        let points = s.sweep(&[50, 1600]);
        assert!(
            points[1].ne > points[0].ne,
            "batch 1600 NE {} should exceed batch 50 NE {}",
            points[1].ne,
            points[0].ne
        );
    }
}
