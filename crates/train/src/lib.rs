//! Real training loops and model-quality experiments for `recsim`.
//!
//! Most of the paper is throughput characterization, but its Section VI.C is
//! about *quality*: scaling the batch size degrades normalized entropy (NE)
//! even after manual learning-rate tuning (Figure 15), and a full AutoML
//! re-tune recovers — or beats — the CPU baseline. Those experiments need
//! actual numerics, which this crate provides on top of `recsim-model`:
//!
//! * [`trainer`] — a seeded training harness with held-out NE evaluation,
//! * [`scaling`] — the batch-size scaling study (linear-scaling LR rule vs a
//!   tuned baseline),
//! * [`autotune`] — random-search hyper-parameter tuning (the stand-in for
//!   FBLearner's Bayesian sweeps),
//! * [`parallel`] — EASGD workers with Hogwild-style threads on real cores,
//! * [`checkpoint`] — integrity-checked model snapshots with exact resume
//!   (the reliability concern the paper's related work highlights),
//! * [`curves`] — held-out learning curves and early stopping.
//!
//! # Example
//!
//! ```
//! use recsim_data::schema::ModelConfig;
//! use recsim_train::trainer::{TrainRun, TrainerConfig};
//!
//! let config = ModelConfig::test_suite(8, 2, 100, &[16]);
//! let run = TrainRun::new(&config, TrainerConfig::quick_test()).execute();
//! assert!(run.final_ne() < 1.05, "learns at least the base rate");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod checkpoint;
pub mod curves;
pub mod parallel;
pub mod scaling;
pub mod trainer;

pub use autotune::{AutoTuner, TuneResult};
pub use checkpoint::Checkpoint;
pub use curves::{learning_curve, EarlyStopping, LearningCurve};
pub use scaling::{BatchScalingStudy, ScalingPoint};
pub use trainer::{TrainRun, TrainerConfig};
