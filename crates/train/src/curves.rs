//! Learning curves and early stopping.
//!
//! The paper's quality experiments ran "high volumes of data … to ensure
//! the quality of the new model setup", taking about a week per sweep.
//! Learning curves make the budget/quality trade visible (how much of the
//! final NE a fraction of the data already buys), and early stopping caps
//! wasted epochs once the held-out metric plateaus.

use crate::trainer::TrainerConfig;
use recsim_data::schema::ModelConfig;
use recsim_data::CtrGenerator;
use recsim_model::optim::Optimizer;
use recsim_model::{bce_with_logits, normalized_entropy, DlrmModel};
use serde::{Deserialize, Serialize};

/// A held-out NE trajectory over training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    points: Vec<(usize, f64)>,
}

impl LearningCurve {
    /// `(examples_consumed, held_out_ne)` points in training order.
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }

    /// The best (lowest) NE observed and the example count it occurred at.
    ///
    /// # Panics
    ///
    /// Panics when the curve is empty.
    pub fn best(&self) -> (usize, f64) {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite NE"))
            .expect("non-empty curve")
    }

    /// The final NE.
    ///
    /// # Panics
    ///
    /// Panics when the curve is empty.
    pub fn final_ne(&self) -> f64 {
        self.points.last().expect("non-empty curve").1
    }

    /// Examples needed to get within `fraction` of the way from the first
    /// NE down to the best NE (e.g. `0.9` = 90% of the total improvement);
    /// `None` when never reached.
    pub fn examples_to_reach(&self, fraction: f64) -> Option<usize> {
        let first = self.points.first()?.1;
        let best = self.best().1;
        let target = first - (first - best) * fraction;
        self.points
            .iter()
            .find(|(_, ne)| *ne <= target)
            .map(|(ex, _)| *ex)
    }
}

/// Early-stopping policy: stop when the held-out NE has not improved by at
/// least `min_delta` for `patience` consecutive evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStopping {
    /// Evaluations without improvement tolerated before stopping.
    pub patience: usize,
    /// Minimum NE improvement that counts.
    pub min_delta: f64,
}

impl Default for EarlyStopping {
    fn default() -> Self {
        Self {
            patience: 3,
            min_delta: 1e-4,
        }
    }
}

/// Trains with periodic held-out evaluation, returning the curve and the
/// examples actually consumed (less than the budget when early stopping
/// triggers).
///
/// # Panics
///
/// Panics if `eval_every_steps == 0` or the configuration is degenerate.
pub fn learning_curve(
    model_config: &ModelConfig,
    config: TrainerConfig,
    eval_every_steps: usize,
    early_stopping: Option<EarlyStopping>,
) -> (LearningCurve, usize) {
    assert!(eval_every_steps > 0, "evaluation period must be positive");
    assert!(
        config.batch_size > 0 && config.train_examples > 0,
        "degenerate config"
    );
    let mut model = DlrmModel::new(model_config, config.seed);
    let mut gen = CtrGenerator::with_seeds(
        model_config,
        config.seed.wrapping_add(1),
        config.seed.wrapping_add(2),
    );
    let mut eval_gen = CtrGenerator::with_seeds(
        model_config,
        config.seed.wrapping_add(1),
        config.seed.wrapping_add(3),
    );
    let eval_batch = eval_gen.next_batch(config.eval_examples);
    let base_ctr = eval_batch.ctr().clamp(0.01, 0.99);
    let evaluate = |m: &DlrmModel| -> f64 {
        let (logits, _) = m.forward(&eval_batch);
        normalized_entropy(bce_with_logits(&logits, eval_batch.labels()).0, base_ctr)
    };

    let mut opt = if config.adagrad {
        Optimizer::adagrad(config.learning_rate)
    } else {
        Optimizer::sgd(config.learning_rate)
    };
    let steps = config.steps();
    let mut points = Vec::new();
    let mut best = f64::INFINITY;
    let mut stale = 0usize;
    let mut consumed = 0usize;
    points.push((0, evaluate(&model)));
    for step in 0..steps {
        let batch = gen.next_batch(config.batch_size);
        model.train_step(&batch, &mut opt);
        consumed += config.batch_size;
        if (step + 1) % eval_every_steps == 0 || step + 1 == steps {
            let ne = evaluate(&model);
            points.push((consumed, ne));
            if let Some(policy) = early_stopping {
                if ne < best - policy.min_delta {
                    best = ne;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= policy.patience {
                        break;
                    }
                }
            }
        }
    }
    (LearningCurve { points }, consumed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ModelConfig, TrainerConfig) {
        let model = ModelConfig::test_suite(8, 2, 200, &[16, 8]);
        let config = TrainerConfig {
            batch_size: 64,
            train_examples: 12_800,
            eval_examples: 2_000,
            learning_rate: 0.05,
            warmup_steps: 0,
            adagrad: true,
            seed: 13,
        };
        (model, config)
    }

    #[test]
    fn curve_trends_downward() {
        let (model, config) = setup();
        let (curve, consumed) = learning_curve(&model, config, 20, None);
        assert_eq!(consumed, config.train_examples);
        let first = curve.points().first().unwrap().1;
        assert!(curve.final_ne() < first, "NE falls over training");
        assert!(curve.best().1 <= curve.final_ne());
    }

    #[test]
    fn most_improvement_comes_early() {
        // The week-long-sweep motivation: a fraction of the data buys most
        // of the quality.
        let (model, config) = setup();
        let (curve, _) = learning_curve(&model, config, 10, None);
        let to_90 = curve.examples_to_reach(0.9).expect("reached");
        assert!(
            to_90 < config.train_examples,
            "90% of improvement before the full budget ({to_90})"
        );
    }

    #[test]
    fn early_stopping_saves_examples() {
        let (model, mut config) = setup();
        config.train_examples = 64_000; // generous budget
        let policy = EarlyStopping {
            patience: 2,
            min_delta: 5e-4,
        };
        let (_, consumed) = learning_curve(&model, config, 10, Some(policy));
        assert!(
            consumed < config.train_examples,
            "early stopping should fire before {consumed}"
        );
    }

    #[test]
    fn curves_are_reproducible() {
        let (model, config) = setup();
        let (a, _) = learning_curve(&model, config, 25, None);
        let (b, _) = learning_curve(&model, config, 25, None);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_eval_period_rejected() {
        let (model, config) = setup();
        learning_curve(&model, config, 0, None);
    }
}
