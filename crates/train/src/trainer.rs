//! A seeded training harness with held-out normalized-entropy evaluation.

use recsim_data::schema::ModelConfig;
use recsim_data::{CtrGenerator, MiniBatch};
use recsim_model::optim::Optimizer;
use recsim_model::{normalized_entropy, DlrmGradients, DlrmModel};
use recsim_prof::{self as prof, Counters, Op};
use serde::{Deserialize, Serialize};

/// Rows per batch shard in the shard-parallel training step. Sharding is a
/// pure function of the batch size — never of the worker count — so the
/// shard tree (and therefore every float-summation order) is identical
/// whether the shards run on one thread or sixteen.
const SHARD_ROWS: usize = 128;

/// Splits `batch_size` examples into near-equal contiguous shards of at
/// most [`SHARD_ROWS`] rows: `ceil(n / SHARD_ROWS)` shards whose sizes
/// differ by at most one.
fn shard_bounds(batch_size: usize) -> Vec<(usize, usize)> {
    let shards = batch_size.div_ceil(SHARD_ROWS);
    let base = batch_size / shards;
    let extra = batch_size % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let end = start + base + usize::from(s < extra);
        bounds.push((start, end));
        start = end;
    }
    bounds
}

/// Folds shard gradients in shard-index order (`g0 + g1 + …`, dense grads
/// in place, sparse grads through one k-way row-union merge). The order
/// depends only on the shard count — itself a pure function of the batch
/// size — so the folded gradient is bit-reproducible at any thread count.
fn fold_gradients(parts: Vec<DlrmGradients>) -> DlrmGradients {
    // detsan: reduction-order — fixed shard-index fold, see
    // DlrmGradients::fold
    DlrmGradients::fold(parts)
}

/// Hyper-parameters and budget of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Total number of training examples consumed (the *budget*; the step
    /// count is `examples / batch_size`, so bigger batches take fewer
    /// steps — exactly the trade the paper's Figure 15 explores).
    pub train_examples: usize,
    /// Held-out examples for NE evaluation.
    pub eval_examples: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Linear warm-up steps (0 disables warm-up).
    pub warmup_steps: usize,
    /// Use Adagrad (true) or plain SGD (false).
    pub adagrad: bool,
    /// Data / initialization seed.
    pub seed: u64,
}

impl TrainerConfig {
    /// A configuration small enough for unit tests (seconds, not minutes).
    pub fn quick_test() -> Self {
        Self {
            batch_size: 64,
            train_examples: 8_192,
            eval_examples: 2_048,
            learning_rate: 0.05,
            warmup_steps: 10,
            adagrad: true,
            seed: 17,
        }
    }

    /// The baseline configuration of the accuracy study: batch 200 (the
    /// production CPU mini-batch size in the paper's test suite).
    pub fn accuracy_baseline() -> Self {
        Self {
            batch_size: 200,
            train_examples: 60_000,
            eval_examples: 10_000,
            learning_rate: 0.04,
            warmup_steps: 20,
            adagrad: true,
            seed: 31,
        }
    }

    /// Returns a copy with a different batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns a copy with a different learning rate.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Number of optimizer steps the budget affords.
    pub fn steps(&self) -> usize {
        (self.train_examples / self.batch_size).max(1)
    }
}

/// A prepared training run: model + data + hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainRun {
    model: DlrmModel,
    config: TrainerConfig,
    generator: CtrGenerator,
    eval_batch: MiniBatch,
    base_ctr: f64,
    loss_history: Vec<f64>,
}

impl TrainRun {
    /// Prepares a run: builds the model, the data stream and a held-out
    /// evaluation batch (drawn from an independent seed so training never
    /// sees it).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has a zero batch size or example budget.
    pub fn new(model_config: &ModelConfig, config: TrainerConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(
            config.train_examples > 0,
            "training budget must be positive"
        );
        assert!(config.eval_examples > 0, "evaluation set must be non-empty");
        let model = DlrmModel::new(model_config, config.seed);
        let generator = CtrGenerator::new(model_config, config.seed.wrapping_add(1));
        // The held-out set shares the generator's *teacher* (same seed
        // wrapping) but a different sample stream.
        let mut eval_gen = CtrGenerator::new(model_config, config.seed.wrapping_add(1));
        let eval_batch = eval_gen.next_batch(config.eval_examples);
        // Skip the evaluation prefix in the training stream so train and
        // eval examples never overlap.
        let mut generator = generator;
        let _ = generator.next_batch(config.eval_examples);
        let base_ctr = eval_batch.ctr().clamp(0.01, 0.99);
        Self {
            model,
            config,
            generator,
            eval_batch,
            base_ctr,
            loss_history: Vec::new(),
        }
    }

    /// The hyper-parameters of this run.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains for the configured budget, recording the loss after each
    /// step, and returns `self` for inspection.
    pub fn execute(mut self) -> TrainRun {
        let steps = self.config.steps();
        let base_opt = if self.config.adagrad {
            Optimizer::adagrad(self.config.learning_rate)
        } else {
            Optimizer::sgd(self.config.learning_rate)
        };
        let mut opt = base_opt;
        for step in 0..steps {
            if self.config.warmup_steps > 0 && step < self.config.warmup_steps {
                let scale = (step + 1) as f32 / self.config.warmup_steps as f32;
                opt = base_opt.with_learning_rate(self.config.learning_rate * scale);
            } else {
                opt = opt.with_learning_rate(self.config.learning_rate);
            }
            let batch = {
                let _prof = prof::scope(Op::DataGen, Counters::none());
                self.generator.next_batch(self.config.batch_size)
            };
            let loss = {
                let _prof = prof::scope(Op::TrainStep, Counters::none());
                self.sharded_train_step(&batch, &mut opt)
            };
            self.loss_history.push(loss);
        }
        if recsim_detsan::enabled() {
            let mut d = recsim_detsan::StateDigest::new();
            d.write_usize(self.loss_history.len());
            for &loss in &self.loss_history {
                d.write_f64(loss);
            }
            d.write_f64(self.eval_log_loss());
            recsim_detsan::record("train/run", d.finish());
        }
        self
    }

    /// One optimizer step over `batch`, shard-parallel when the batch spans
    /// more than one shard: each shard runs forward/backward independently
    /// (gradients pre-scaled by the full batch size), shard gradients are
    /// folded in shard-index order by [`fold_gradients`], and the
    /// merged gradient is applied once. Returns the batch's mean loss.
    fn sharded_train_step(&mut self, batch: &MiniBatch, opt: &mut Optimizer) -> f64 {
        let bounds = shard_bounds(batch.batch_size());
        if bounds.len() <= 1 {
            return self.model.train_step(batch, opt);
        }
        let total = batch.batch_size();
        let shards: Vec<MiniBatch> = bounds.iter().map(|&(s, e)| batch.slice(s, e)).collect();
        let model = &self.model;
        let results =
            recsim_pool::par_map(&shards, |shard| model.forward_backward_scaled(shard, total));
        // detsan: reduction-order — sequential shard-order loss sum
        let mut loss_sum = 0.0f64;
        let mut parts = Vec::with_capacity(results.len());
        for (shard_loss, grads) in results {
            loss_sum += shard_loss;
            parts.push(grads);
        }
        self.model.apply(&fold_gradients(parts), opt);
        loss_sum / total as f64
    }

    /// Per-step training losses (empty before [`TrainRun::execute`]).
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }

    /// Held-out log loss of the current model, shard-parallel over the
    /// evaluation batch with a fixed serial fold of per-shard loss sums.
    pub fn eval_log_loss(&self) -> f64 {
        let _prof = prof::scope(Op::Eval, Counters::none());
        let bounds = shard_bounds(self.eval_batch.batch_size());
        if bounds.len() <= 1 {
            return self.model.evaluate(&self.eval_batch);
        }
        let shards: Vec<MiniBatch> = bounds
            .iter()
            .map(|&(s, e)| self.eval_batch.slice(s, e))
            .collect();
        let model = &self.model;
        let sums = recsim_pool::par_map(&shards, |shard| model.evaluate_sum(shard));
        // detsan: reduction-order — sequential shard-order loss sum
        let mut total = 0.0f64;
        for s in sums {
            total += s;
        }
        total / self.eval_batch.batch_size() as f64
    }

    /// Held-out normalized entropy: `< 1.0` beats base-rate prediction.
    pub fn final_ne(&self) -> f64 {
        normalized_entropy(self.eval_log_loss(), self.base_ctr)
    }

    /// The trained model.
    pub fn model(&self) -> &DlrmModel {
        &self.model
    }

    /// The empirical CTR of the held-out set.
    pub fn base_ctr(&self) -> f64 {
        self.base_ctr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ModelConfig {
        ModelConfig::test_suite(8, 2, 200, &[16, 8])
    }

    #[test]
    fn training_beats_base_rate() {
        let run = TrainRun::new(&config(), TrainerConfig::quick_test()).execute();
        assert!(
            run.final_ne() < 1.0,
            "NE {} should beat base-rate prediction",
            run.final_ne()
        );
    }

    #[test]
    fn loss_trends_down() {
        let run = TrainRun::new(&config(), TrainerConfig::quick_test()).execute();
        let hist = run.loss_history();
        let early: f64 = hist[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = hist[hist.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(late < early, "loss {early} -> {late}");
    }

    #[test]
    fn runs_are_reproducible() {
        let a = TrainRun::new(&config(), TrainerConfig::quick_test()).execute();
        let b = TrainRun::new(&config(), TrainerConfig::quick_test()).execute();
        assert_eq!(a.final_ne(), b.final_ne());
        assert_eq!(a.loss_history(), b.loss_history());
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let run = TrainRun::new(&config(), TrainerConfig::quick_test());
        // Without training, NE should be around or above 1 (no better than
        // base rate); allow generous slack for random initialization.
        assert!(run.final_ne() > 0.9);
    }

    #[test]
    fn steps_respects_budget() {
        let c = TrainerConfig::quick_test().with_batch_size(1024);
        assert_eq!(c.steps(), 8);
        let run = TrainRun::new(&config(), c).execute();
        assert_eq!(run.loss_history().len(), 8);
    }

    #[test]
    fn larger_lr_changes_outcome() {
        let base = TrainRun::new(&config(), TrainerConfig::quick_test()).execute();
        let hot = TrainRun::new(
            &config(),
            TrainerConfig::quick_test().with_learning_rate(1.0),
        )
        .execute();
        assert_ne!(base.final_ne(), hot.final_ne());
    }

    #[test]
    fn shard_bounds_partition_evenly() {
        assert_eq!(shard_bounds(64), vec![(0, 64)]);
        assert_eq!(shard_bounds(128), vec![(0, 128)]);
        assert_eq!(shard_bounds(200), vec![(0, 100), (100, 200)]);
        let bounds = shard_bounds(1000);
        assert_eq!(bounds.len(), 8);
        assert_eq!(bounds.first(), Some(&(0, 125)));
        assert_eq!(bounds.last(), Some(&(875, 1000)));
        for w in bounds.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
            assert!(w[0].1 - w[0].0 <= SHARD_ROWS);
        }
    }

    #[test]
    fn sharded_training_is_thread_count_invariant() {
        // The shard tree depends only on the batch size, so a multi-shard
        // run must be bit-identical on one worker and on four.
        let c = TrainerConfig::quick_test().with_batch_size(300);
        recsim_pool::set_thread_override(Some(1));
        let serial = TrainRun::new(&config(), c).execute();
        recsim_pool::set_thread_override(Some(4));
        let parallel = TrainRun::new(&config(), c).execute();
        recsim_pool::set_thread_override(None);
        assert_eq!(serial.loss_history(), parallel.loss_history());
        assert_eq!(serial.final_ne(), parallel.final_ne());
    }
}
