//! Model checkpointing.
//!
//! The paper's related work stresses that "making training infrastructures
//! reliable has a profound impact in the training workflow efficiency"
//! (citing CPR and DeepFreeze). Recommendation training runs for hours to
//! days over high data volumes; losing a run to a crash wastes all of it.
//! This module provides whole-model snapshots with integrity checking so a
//! run can resume exactly where it stopped.

use recsim_model::DlrmModel;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// A serialized model snapshot with metadata and an integrity checksum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Optimizer step at which the snapshot was taken.
    pub step: usize,
    /// Examples consumed up to the snapshot.
    pub examples_seen: usize,
    /// The serialized model (JSON).
    model_json: String,
    /// FNV-1a checksum of `model_json`.
    checksum: u64,
}

/// Why a checkpoint failed to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The stored checksum does not match the payload (corruption).
    ChecksumMismatch,
    /// The payload does not deserialize into a model.
    Malformed(String),
    /// Filesystem error while reading/writing.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint payload is corrupted"),
            CheckpointError::Malformed(e) => write!(f, "checkpoint does not parse: {e}"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl Checkpoint {
    /// Snapshots a model.
    ///
    /// # Panics
    ///
    /// Panics if the model cannot be serialized (cannot happen for models
    /// built by this workspace).
    pub fn capture(model: &DlrmModel, step: usize, examples_seen: usize) -> Self {
        let model_json = serde_json::to_string(model).expect("models are serializable");
        let checksum = fnv1a(model_json.as_bytes());
        Self {
            step,
            examples_seen,
            model_json,
            checksum,
        }
    }

    /// Restores the model, verifying integrity first.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ChecksumMismatch`] on corruption,
    /// [`CheckpointError::Malformed`] if the payload does not parse.
    pub fn restore(&self) -> Result<DlrmModel, CheckpointError> {
        if fnv1a(self.model_json.as_bytes()) != self.checksum {
            return Err(CheckpointError::ChecksumMismatch);
        }
        serde_json::from_str(&self.model_json)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json =
            serde_json::to_string(self).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        std::fs::write(path, json).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure,
    /// [`CheckpointError::Malformed`] if the file does not parse.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        serde_json::from_str(&json).map_err(|e| CheckpointError::Malformed(e.to_string()))
    }

    /// Size of the serialized model payload in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.model_json.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_data::schema::ModelConfig;
    use recsim_data::CtrGenerator;
    use recsim_model::optim::Optimizer;

    fn config() -> ModelConfig {
        ModelConfig::test_suite(8, 2, 100, &[16])
    }

    #[test]
    fn capture_restore_round_trips_exactly() {
        let model = DlrmModel::new(&config(), 7);
        let ckpt = Checkpoint::capture(&model, 42, 42 * 64);
        let restored = ckpt.restore().expect("intact");
        assert_eq!(model, restored);
        assert_eq!(ckpt.step, 42);
    }

    #[test]
    fn resumed_training_matches_uninterrupted_training() {
        // The point of checkpointing: crash after step 30, restore, finish —
        // identical final model to a run that never crashed (same data).
        let cfg = config();
        let mut gen_a = CtrGenerator::new(&cfg, 3);
        let mut uninterrupted = DlrmModel::new(&cfg, 1);
        let mut opt_a = Optimizer::sgd(0.05);
        let mut ckpt = None;
        for step in 0..60 {
            let batch = gen_a.next_batch(32);
            uninterrupted.train_step(&batch, &mut opt_a);
            if step == 29 {
                ckpt = Some(Checkpoint::capture(&uninterrupted, 30, 30 * 32));
            }
        }
        // "Crash" and resume from step 30 with a fresh process: replay the
        // same stream position.
        let mut resumed = ckpt.expect("captured").restore().expect("intact");
        let mut gen_b = CtrGenerator::new(&cfg, 3);
        for _ in 0..30 {
            let _ = gen_b.next_batch(32); // skip consumed data
        }
        let mut opt_b = Optimizer::sgd(0.05);
        for _ in 30..60 {
            let batch = gen_b.next_batch(32);
            resumed.train_step(&batch, &mut opt_b);
        }
        assert_eq!(uninterrupted, resumed);
    }

    #[test]
    fn corruption_is_detected() {
        let model = DlrmModel::new(&config(), 9);
        let mut ckpt = Checkpoint::capture(&model, 1, 64);
        // Flip a byte in the payload.
        ckpt.model_json.replace_range(10..11, "X");
        assert_eq!(ckpt.restore(), Err(CheckpointError::ChecksumMismatch));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("recsim_ckpt_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.ckpt");
        let model = DlrmModel::new(&config(), 11);
        let ckpt = Checkpoint::capture(&model, 5, 320);
        ckpt.save(&path).expect("write");
        let loaded = Checkpoint::load(&path).expect("read");
        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.restore().expect("intact"), model);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/recsim.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
