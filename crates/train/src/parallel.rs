//! Elastic-averaging SGD with asynchronous worker threads.
//!
//! The paper's CPU trainers run EASGD against a center parameter store with
//! Hogwild threads inside each trainer. This module reproduces that
//! topology on real OS threads: each worker owns a model replica, trains on
//! its own data shard, and periodically performs the symmetric elastic
//! update with the shared center — asynchronously, with no barrier between
//! workers. Embedding tables sync only the rows a worker actually touched,
//! as production sparse EASGD does.

use crate::trainer::TrainerConfig;
use parking_lot::Mutex;
use recsim_data::schema::ModelConfig;
use recsim_data::CtrGenerator;
use recsim_model::optim::Optimizer;
use recsim_model::{bce_with_logits, normalized_entropy, DlrmModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of an EASGD run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EasgdConfig {
    /// Number of asynchronous worker threads.
    pub workers: usize,
    /// Optimizer steps between elastic syncs (the communication period τ).
    pub sync_period: usize,
    /// Elastic coefficient α in `w += α (center − w)`.
    pub elasticity: f32,
    /// Per-worker training configuration (budget is per worker).
    pub worker: TrainerConfig,
}

impl EasgdConfig {
    /// A quick configuration for tests.
    pub fn quick_test(workers: usize) -> Self {
        Self {
            workers,
            sync_period: 8,
            elasticity: 0.5,
            worker: TrainerConfig::quick_test(),
        }
    }
}

/// The outcome of an EASGD run.
#[derive(Debug)]
pub struct EasgdOutcome {
    center: DlrmModel,
    teacher_seed: u64,
    total_examples: usize,
    syncs: usize,
}

impl EasgdOutcome {
    /// The center model after training.
    pub fn center(&self) -> &DlrmModel {
        &self.center
    }

    /// Total examples consumed across workers.
    pub fn total_examples(&self) -> usize {
        self.total_examples
    }

    /// Total elastic syncs performed.
    pub fn syncs(&self) -> usize {
        self.syncs
    }

    /// Held-out NE of the center model on a fresh evaluation stream drawn
    /// from the *training* teacher (`seed` only varies the stream).
    pub fn evaluate_ne(&self, model_config: &ModelConfig, seed: u64, examples: usize) -> f64 {
        let mut gen = CtrGenerator::with_seeds(model_config, self.teacher_seed, seed);
        let batch = gen.next_batch(examples);
        let (logits, _) = self.center.forward(&batch);
        let loss = bce_with_logits(&logits, batch.labels()).0;
        normalized_entropy(loss, batch.ctr().clamp(0.01, 0.99))
    }
}

/// Runs EASGD training with real threads.
///
/// # Panics
///
/// Panics if `config.workers == 0` or `config.sync_period == 0`.
///
/// # Example
///
/// ```no_run
/// use recsim_data::schema::ModelConfig;
/// use recsim_train::parallel::{easgd_train, EasgdConfig};
///
/// let config = ModelConfig::test_suite(8, 2, 100, &[16]);
/// let outcome = easgd_train(&config, EasgdConfig::quick_test(4));
/// assert!(outcome.evaluate_ne(&config, 999, 2000) < 1.0);
/// ```
pub fn easgd_train(model_config: &ModelConfig, config: EasgdConfig) -> EasgdOutcome {
    assert!(config.workers > 0, "need at least one worker");
    assert!(config.sync_period > 0, "sync period must be positive");
    // Workers run on scoped threads (`recsim_pool::scoped_workers`), so the
    // shared state can live on this stack frame — no Arc needed, and a
    // worker panic propagates here instead of being swallowed.
    let center = Mutex::new(DlrmModel::new(model_config, config.worker.seed));
    let sync_count = Mutex::new(0usize);
    let steps = config.worker.steps();

    recsim_pool::scoped_workers(config.workers, |w| {
        let mut local = center.lock().clone();
        // All workers share the teacher; each draws its own stream.
        let mut gen = CtrGenerator::with_seeds(
            model_config,
            config.worker.seed,
            config.worker.seed.wrapping_add(100 + w as u64),
        );
        let mut opt = if config.worker.adagrad {
            Optimizer::adagrad(config.worker.learning_rate)
        } else {
            Optimizer::sgd(config.worker.learning_rate)
        };
        // Track touched rows per *distinct* table (features sharing
        // a table pool their row sets).
        let mut touched: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); model_config.num_tables()];
        for step in 0..steps {
            let batch = gen.next_batch(config.worker.batch_size);
            for (f, sb) in batch.sparse().iter().enumerate() {
                touched[model_config.table_of(f)].extend(sb.indices().iter().copied());
            }
            local.train_step(&batch, &mut opt);
            if (step + 1) % config.sync_period == 0 || step + 1 == steps {
                let rows: Vec<Vec<u32>> = touched
                    .iter_mut()
                    .map(|set| {
                        let v: Vec<u32> = set.iter().copied().collect();
                        set.clear();
                        v
                    })
                    .collect();
                let mut c = center.lock();
                // Symmetric elastic update: the center and the
                // worker move toward each other.
                c.pull_toward(&local, config.elasticity, &rows);
                let snapshot = c.clone();
                drop(c);
                local.pull_toward(&snapshot, config.elasticity, &rows);
                *sync_count.lock() += 1;
            }
        }
    });

    let center = center.into_inner();
    let syncs = *sync_count.lock();
    EasgdOutcome {
        center,
        teacher_seed: config.worker.seed,
        total_examples: config.workers * steps * config.worker.batch_size,
        syncs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_config() -> ModelConfig {
        ModelConfig::test_suite(8, 2, 200, &[16, 8])
    }

    #[test]
    fn single_worker_learns() {
        let cfg = model_config();
        let outcome = easgd_train(&cfg, EasgdConfig::quick_test(1));
        let ne = outcome.evaluate_ne(&cfg, 12345, 4000);
        assert!(ne < 1.0, "NE {ne} should beat base rate");
    }

    #[test]
    fn four_workers_learn_and_sync() {
        let cfg = model_config();
        let config = EasgdConfig::quick_test(4);
        let outcome = easgd_train(&cfg, config);
        assert_eq!(
            outcome.total_examples(),
            4 * config.worker.steps() * config.worker.batch_size
        );
        assert!(outcome.syncs() >= 4, "every worker syncs at least once");
        let ne = outcome.evaluate_ne(&cfg, 54321, 4000);
        assert!(ne < 1.0, "NE {ne} should beat base rate");
    }

    #[test]
    fn center_beats_untrained_model() {
        let cfg = model_config();
        let outcome = easgd_train(&cfg, EasgdConfig::quick_test(2));
        let trained = outcome.evaluate_ne(&cfg, 777, 4000);
        let fresh = EasgdOutcome {
            center: DlrmModel::new(&cfg, EasgdConfig::quick_test(2).worker.seed),
            teacher_seed: EasgdConfig::quick_test(2).worker.seed,
            total_examples: 0,
            syncs: 0,
        };
        let untrained = fresh.evaluate_ne(&cfg, 777, 4000);
        assert!(
            trained < untrained,
            "trained {trained} vs untrained {untrained}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        easgd_train(&model_config(), EasgdConfig::quick_test(0));
    }
}
