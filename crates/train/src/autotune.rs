//! Random-search hyper-parameter tuning — the stand-in for FBLearner's
//! Bayesian AutoML sweeps (paper Section VI.C).
//!
//! The paper re-tunes the GPU setups "from scratch" with a Bayesian
//! optimization strategy and finds the re-tuned large-batch GPU runs reach
//! *better* NE than the CPU baselines (−0.2% / −0.1%). Any competent
//! black-box tuner reproduces that qualitative result; this one uses
//! log-uniform random search over the learning rate and warm-up length with
//! a deterministic seed.

use crate::trainer::{TrainRun, TrainerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recsim_data::schema::ModelConfig;
use serde::{Deserialize, Serialize};

/// The outcome of a tuning sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuneResult {
    /// Best learning rate found.
    pub learning_rate: f32,
    /// Best warm-up length found.
    pub warmup_steps: usize,
    /// Held-out NE achieved by the best trial.
    pub ne: f64,
    /// Number of trials evaluated.
    pub trials: usize,
}

/// A random-search tuner over learning rate and warm-up.
///
/// # Example
///
/// ```no_run
/// use recsim_data::schema::ModelConfig;
/// use recsim_train::{AutoTuner, trainer::TrainerConfig};
///
/// let config = ModelConfig::test_suite(8, 2, 200, &[16]);
/// let tuner = AutoTuner::new(&config, TrainerConfig::accuracy_baseline(), 99);
/// let best = tuner.tune(12);
/// assert!(best.ne.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct AutoTuner {
    model_config: ModelConfig,
    base: TrainerConfig,
    seed: u64,
    lr_range: (f32, f32),
}

impl AutoTuner {
    /// Creates a tuner around `base` (whose batch size, budget and seed are
    /// kept fixed across trials).
    pub fn new(model_config: &ModelConfig, base: TrainerConfig, seed: u64) -> Self {
        Self {
            model_config: model_config.clone(),
            base,
            seed,
            lr_range: (1e-3, 1.0),
        }
    }

    /// Overrides the log-uniform learning-rate search range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi`.
    pub fn with_lr_range(mut self, lo: f32, hi: f32) -> Self {
        assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi");
        self.lr_range = (lo, hi);
        self
    }

    /// Evaluates one configuration, returning its held-out NE.
    pub fn evaluate(&self, learning_rate: f32, warmup_steps: usize) -> f64 {
        let mut cfg = self.base;
        cfg.learning_rate = learning_rate;
        cfg.warmup_steps = warmup_steps;
        TrainRun::new(&self.model_config, cfg).execute().final_ne()
    }

    /// Runs `trials` random-search trials and returns the best result. The
    /// base configuration itself is always included as trial zero, so
    /// tuning can never do worse than not tuning.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn tune(&self, trials: usize) -> TuneResult {
        assert!(trials > 0, "need at least one trial");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best = TuneResult {
            learning_rate: self.base.learning_rate,
            warmup_steps: self.base.warmup_steps,
            ne: self.evaluate(self.base.learning_rate, self.base.warmup_steps),
            trials: 1,
        };
        let (lo, hi) = self.lr_range;
        let (ln_lo, ln_hi) = (lo.ln(), hi.ln());
        let max_warmup = (self.base.steps() / 4).max(1);
        for _ in 1..trials {
            let lr = (rng.gen_range(ln_lo..ln_hi)).exp();
            let warmup = rng.gen_range(0..=max_warmup);
            let ne = self.evaluate(lr, warmup);
            best.trials += 1;
            if ne < best.ne {
                best.ne = ne;
                best.learning_rate = lr;
                best.warmup_steps = warmup;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> (ModelConfig, TrainerConfig) {
        let config = ModelConfig::test_suite(8, 2, 200, &[16]);
        let base = TrainerConfig {
            batch_size: 256,
            train_examples: 8_192,
            eval_examples: 2_048,
            learning_rate: 0.5, // deliberately poor
            warmup_steps: 0,
            adagrad: true,
            seed: 5,
        };
        (config, base)
    }

    #[test]
    fn tuning_never_hurts() {
        let (config, base) = quick_base();
        let tuner = AutoTuner::new(&config, base, 42);
        let untuned = tuner.evaluate(base.learning_rate, base.warmup_steps);
        let tuned = tuner.tune(6);
        assert!(tuned.ne <= untuned + 1e-12);
        assert_eq!(tuned.trials, 6);
    }

    #[test]
    fn tuning_improves_a_bad_lr() {
        let (config, base) = quick_base();
        let tuner = AutoTuner::new(&config, base, 42).with_lr_range(1e-3, 0.3);
        let untuned = tuner.evaluate(base.learning_rate, base.warmup_steps);
        let tuned = tuner.tune(8);
        assert!(
            tuned.ne < untuned,
            "tuned {} should beat untuned {}",
            tuned.ne,
            untuned
        );
    }

    #[test]
    fn tuner_is_deterministic() {
        let (config, base) = quick_base();
        let a = AutoTuner::new(&config, base, 7).tune(4);
        let b = AutoTuner::new(&config, base, 7).tune(4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let (config, base) = quick_base();
        AutoTuner::new(&config, base, 1).tune(0);
    }
}
