//! Critical-path attribution over a finished schedule.
//!
//! The discrete-event engine in `recsim-sim` is work-conserving with FIFO
//! resource queues: a task starts either at time zero or exactly when the
//! event that released it fired — the finish of a dependency, or the finish
//! of the task whose completion freed a unit of its resource. That means the
//! interval `[0, makespan]` can be partitioned *exactly* by walking
//! backwards from the task that finishes last, at each step re-attaching to
//! whichever predecessor's finish explains the current task's start. Each
//! segment of the walk is charged to the covering task's
//! [`TaskCategory`], so the per-category breakdown sums to the makespan to
//! the last ulp (a property the test-suite pins down).

use crate::category::TaskCategory;

/// Absolute tolerance (seconds) when matching a task's start time against a
/// candidate predecessor's finish time. Schedules are built from f64
/// arithmetic; identical event times can differ by accumulated rounding.
const EPS: f64 = 1e-9;

/// One task of a finished schedule, in seconds, as the analysis consumes it.
///
/// This mirrors `recsim-sim`'s `Schedule` rows without depending on the sim
/// crate (the dependency points the other way).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledTask {
    /// Task name.
    pub name: String,
    /// Attribution category.
    pub category: TaskCategory,
    /// Start time, seconds.
    pub start: f64,
    /// Finish time, seconds.
    pub finish: f64,
    /// Index of the resource the task occupied, if any.
    pub resource: Option<usize>,
    /// Indices of dependency tasks.
    pub deps: Vec<usize>,
}

/// A task on the critical path, with the share of the makespan charged to it.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Index into the input task slice.
    pub task: usize,
    /// Task name.
    pub name: String,
    /// Attribution category.
    pub category: TaskCategory,
    /// Seconds of the makespan attributed to this step.
    pub contribution: f64,
}

/// A non-critical task ranked by how much it could slip without moving the
/// makespan (classic CPM slack over the dependency graph).
#[derive(Debug, Clone, PartialEq)]
pub struct SlackEntry {
    /// Index into the input task slice.
    pub task: usize,
    /// Task name.
    pub name: String,
    /// Attribution category.
    pub category: TaskCategory,
    /// Task duration, seconds.
    pub duration: f64,
    /// Slack, seconds: how late the task could start without delaying any
    /// dependent (ignoring resource contention).
    pub slack: f64,
}

/// Result of [`critical_path`]: the walked path, the per-category
/// partition of the makespan, and a top-k slack report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPathReport {
    /// Schedule makespan, seconds.
    pub makespan: f64,
    /// Seconds of the makespan charged to each category, in
    /// [`TaskCategory::ALL`] order, zero-share categories omitted. The
    /// values sum to `makespan` exactly (telescoping construction).
    pub breakdown: Vec<(TaskCategory, f64)>,
    /// The walked path, last-finishing task first.
    pub path: Vec<PathStep>,
    /// The `top_k` largest-slack tasks, descending.
    pub slack: Vec<SlackEntry>,
}

impl CriticalPathReport {
    /// Share of the makespan attributed to `category` (0.0 if absent).
    pub fn share_of(&self, category: TaskCategory) -> f64 {
        self.breakdown
            .iter()
            .find(|(c, _)| *c == category)
            .map_or(0.0, |(_, s)| *s)
    }

    /// Sum of all per-category shares; equals `makespan` by construction.
    pub fn attributed_total(&self) -> f64 {
        self.breakdown.iter().map(|(_, s)| s).sum()
    }
}

/// Walks the schedule backwards from its last-finishing task, partitioning
/// `[0, makespan]` into segments charged to the covering task's category,
/// and computes a dependency-graph slack report for the `top_k`
/// largest-slack tasks.
///
/// Zero-duration tasks (barriers) can appear on the path but contribute no
/// time. An empty input yields an empty report.
pub fn critical_path(tasks: &[ScheduledTask], top_k: usize) -> CriticalPathReport {
    let Some(last) = (0..tasks.len()).max_by(|&a, &b| {
        tasks[a]
            .finish
            .total_cmp(&tasks[b].finish)
            .then_with(|| b.cmp(&a))
    }) else {
        return CriticalPathReport::default();
    };
    let makespan = tasks[last].finish;

    // Tasks sharing a resource, sorted by finish time, for resource-wait
    // predecessor lookups.
    let n_resources = tasks
        .iter()
        .filter_map(|t| t.resource)
        .max()
        .map_or(0, |m| m + 1);
    let mut by_resource: Vec<Vec<usize>> = vec![Vec::new(); n_resources];
    for (i, t) in tasks.iter().enumerate() {
        if let Some(r) = t.resource {
            by_resource[r].push(i);
        }
    }
    for list in &mut by_resource {
        list.sort_by(|&a, &b| tasks[a].finish.total_cmp(&tasks[b].finish));
    }

    let mut acc = [0.0f64; TaskCategory::ALL.len()];
    let mut path = Vec::new();
    let mut visited = vec![false; tasks.len()];
    let mut cur = last;
    // `hi` is the upper edge of the still-unattributed interval [0, hi].
    let mut hi = makespan;

    while hi > 0.0 {
        visited[cur] = true;
        let t = &tasks[cur];
        let lo = t.start.min(hi);

        // Find what explains `lo` (the current task's start): an unvisited
        // dependency or same-resource predecessor finishing at ≈ lo. When
        // none matches exactly (rounding, graphs not produced by the DES),
        // fall back to the latest finisher at or before lo.
        let next = if lo <= 0.0 {
            None
        } else {
            let dep = t
                .deps
                .iter()
                .copied()
                .filter(|&d| !visited[d] && tasks[d].finish <= lo + EPS)
                .max_by(|&a, &b| tasks[a].finish.total_cmp(&tasks[b].finish));
            let res_pred = t.resource.and_then(|r| {
                by_resource[r]
                    .iter()
                    .copied()
                    .filter(|&p| !visited[p] && tasks[p].finish <= lo + EPS)
                    .max_by(|&a, &b| tasks[a].finish.total_cmp(&tasks[b].finish))
            });
            let best = match (dep, res_pred) {
                (Some(d), Some(p)) => {
                    // Prefer an exact explanation of `lo`; among exact
                    // matches prefer the dependency edge.
                    if (lo - tasks[d].finish).abs() <= EPS {
                        Some(d)
                    } else if (lo - tasks[p].finish).abs() <= EPS {
                        Some(p)
                    } else if tasks[d].finish >= tasks[p].finish {
                        Some(d)
                    } else {
                        Some(p)
                    }
                }
                (Some(d), None) => Some(d),
                (None, Some(p)) => Some(p),
                (None, None) => None,
            };
            best.or_else(|| {
                // Global fallback: any unvisited task finishing at or
                // before lo — keeps the walk total even for graphs whose
                // start times the predecessor rules can't explain.
                (0..tasks.len())
                    .filter(|&i| !visited[i] && tasks[i].finish <= lo + EPS)
                    .max_by(|&a, &b| tasks[a].finish.total_cmp(&tasks[b].finish))
            })
        };

        // Charge [hi_next, hi] to the current task: the segment telescopes,
        // so the per-category totals sum to the makespan exactly.
        let hi_next = next.map_or(0.0, |n| tasks[n].finish.min(lo)).max(0.0);
        let contribution = hi - hi_next;
        acc[t.category.index()] += contribution;
        path.push(PathStep {
            task: cur,
            name: t.name.clone(),
            category: t.category,
            contribution,
        });
        match next {
            Some(n) => {
                cur = n;
                hi = hi_next;
            }
            None => break,
        }
    }

    let breakdown: Vec<(TaskCategory, f64)> = TaskCategory::ALL
        .into_iter()
        .zip(acc)
        .filter(|(_, s)| *s > 0.0)
        .collect();

    CriticalPathReport {
        makespan,
        breakdown,
        path,
        slack: slack_report(tasks, makespan, top_k),
    }
}

/// Classic CPM backward pass over the dependency edges: latest start of a
/// task is the minimum over dependents of (their latest start) minus the
/// task's own duration; slack is latest start minus actual start.
fn slack_report(tasks: &[ScheduledTask], makespan: f64, top_k: usize) -> Vec<SlackEntry> {
    if top_k == 0 || tasks.is_empty() {
        return Vec::new();
    }
    let n = tasks.len();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, t) in tasks.iter().enumerate() {
        for &d in &t.deps {
            if d < n {
                dependents[d].push(i);
            }
        }
    }
    // Reverse-topological order via Kahn on the dependents relation.
    let mut indeg: Vec<usize> = tasks.iter().map(|t| t.deps.len()).collect();
    let mut order: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let i = order[head];
        head += 1;
        for &j in &dependents[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                order.push(j);
            }
        }
    }
    let mut latest_finish = vec![makespan; n];
    for &i in order.iter().rev() {
        for &j in &dependents[i] {
            let j_latest_start = latest_finish[j] - (tasks[j].finish - tasks[j].start);
            if j_latest_start < latest_finish[i] {
                latest_finish[i] = j_latest_start;
            }
        }
    }
    let mut entries: Vec<SlackEntry> = (0..n)
        .map(|i| {
            let t = &tasks[i];
            let duration = t.finish - t.start;
            SlackEntry {
                task: i,
                name: t.name.clone(),
                category: t.category,
                duration,
                slack: (latest_finish[i] - duration - t.start).max(0.0),
            }
        })
        .collect();
    entries.sort_by(|a, b| {
        b.slack
            .total_cmp(&a.slack)
            .then_with(|| a.task.cmp(&b.task))
    });
    entries.truncate(top_k);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(
        name: &str,
        category: TaskCategory,
        start: f64,
        finish: f64,
        resource: Option<usize>,
        deps: &[usize],
    ) -> ScheduledTask {
        ScheduledTask {
            name: name.to_string(),
            category,
            start,
            finish,
            resource,
            deps: deps.to_vec(),
        }
    }

    #[test]
    fn empty_schedule_gives_empty_report() {
        let report = critical_path(&[], 5);
        assert_eq!(report.makespan, 0.0);
        assert!(report.breakdown.is_empty());
        assert!(report.path.is_empty());
        assert!(report.slack.is_empty());
    }

    #[test]
    fn serial_chain_attributes_everything() {
        let tasks = vec![
            task("a", TaskCategory::ReaderStall, 0.0, 1.0, Some(0), &[]),
            task("b", TaskCategory::MlpCompute, 1.0, 4.0, Some(1), &[0]),
            task("c", TaskCategory::AllToAll, 4.0, 6.0, Some(2), &[1]),
        ];
        let report = critical_path(&tasks, 3);
        assert_eq!(report.makespan, 6.0);
        assert_eq!(report.attributed_total(), 6.0);
        assert_eq!(report.share_of(TaskCategory::ReaderStall), 1.0);
        assert_eq!(report.share_of(TaskCategory::MlpCompute), 3.0);
        assert_eq!(report.share_of(TaskCategory::AllToAll), 2.0);
        assert_eq!(report.path.len(), 3);
        assert_eq!(report.path[0].name, "c");
        assert_eq!(report.path[2].name, "a");
    }

    #[test]
    fn diamond_walks_through_the_slow_branch() {
        // a -> {b (slow), c (fast)} -> d. Critical path is a, b, d.
        let tasks = vec![
            task("a", TaskCategory::ReaderStall, 0.0, 1.0, Some(0), &[]),
            task("b", TaskCategory::MlpCompute, 1.0, 5.0, Some(1), &[0]),
            task("c", TaskCategory::NicTransfer, 1.0, 2.0, Some(2), &[0]),
            task("d", TaskCategory::Optimizer, 5.0, 6.0, Some(0), &[1, 2]),
        ];
        let report = critical_path(&tasks, 4);
        assert_eq!(report.makespan, 6.0);
        assert_eq!(report.attributed_total(), 6.0);
        assert_eq!(report.share_of(TaskCategory::MlpCompute), 4.0);
        assert_eq!(report.share_of(TaskCategory::NicTransfer), 0.0);
        // c has 3 seconds of slack (can finish as late as 5.0).
        let c = report.slack.iter().find(|s| s.name == "c").unwrap();
        assert!((c.slack - 3.0).abs() < 1e-12, "slack was {}", c.slack);
    }

    #[test]
    fn resource_wait_is_charged_to_the_blocking_task() {
        // Two independent tasks on one unit of resource 0: "second" waits
        // for "first" to free the unit, so both land on the path.
        let tasks = vec![
            task(
                "first",
                TaskCategory::EmbeddingLookup,
                0.0,
                2.0,
                Some(0),
                &[],
            ),
            task(
                "second",
                TaskCategory::EmbeddingUpdate,
                2.0,
                5.0,
                Some(0),
                &[],
            ),
        ];
        let report = critical_path(&tasks, 2);
        assert_eq!(report.makespan, 5.0);
        assert_eq!(report.attributed_total(), 5.0);
        assert_eq!(report.share_of(TaskCategory::EmbeddingLookup), 2.0);
        assert_eq!(report.share_of(TaskCategory::EmbeddingUpdate), 3.0);
    }

    #[test]
    fn zero_duration_barrier_contributes_nothing() {
        let tasks = vec![
            task("work", TaskCategory::MlpCompute, 0.0, 3.0, Some(0), &[]),
            task("barrier", TaskCategory::Framework, 3.0, 3.0, None, &[0]),
        ];
        let report = critical_path(&tasks, 2);
        assert_eq!(report.makespan, 3.0);
        assert_eq!(report.attributed_total(), 3.0);
        assert_eq!(report.share_of(TaskCategory::Framework), 0.0);
        assert_eq!(report.share_of(TaskCategory::MlpCompute), 3.0);
    }

    #[test]
    fn idle_gap_is_charged_to_the_task_above_it() {
        // A task starting later than anything explains (no deps, no
        // resource contention): the gap [0, start] has no predecessor, so
        // the walk charges the whole [0, finish] interval to it.
        let tasks = vec![task("late", TaskCategory::PsUpdate, 2.0, 4.0, Some(0), &[])];
        let report = critical_path(&tasks, 1);
        assert_eq!(report.makespan, 4.0);
        assert_eq!(report.attributed_total(), 4.0);
        assert_eq!(report.share_of(TaskCategory::PsUpdate), 4.0);
    }

    #[test]
    fn slack_report_is_sorted_and_truncated() {
        let tasks = vec![
            task("a", TaskCategory::MlpCompute, 0.0, 4.0, Some(0), &[]),
            task("b", TaskCategory::NicTransfer, 0.0, 1.0, Some(1), &[]),
            task("c", TaskCategory::PsUpdate, 0.0, 2.0, Some(2), &[]),
        ];
        let report = critical_path(&tasks, 2);
        assert_eq!(report.slack.len(), 2);
        assert_eq!(report.slack[0].name, "b");
        assert!((report.slack[0].slack - 3.0).abs() < 1e-12);
        assert_eq!(report.slack[1].name, "c");
    }
}
