//! The task-category taxonomy used for critical-path attribution.
//!
//! Every task a simulator schedules carries one of these categories, so a
//! nanosecond of iteration time can always be attributed to a phase of the
//! training pipeline — the attribution axis of the paper's Figures 5 and
//! 10–14 (where does time go: embedding work, MLP compute, collectives,
//! data movement, parameter-server work, or the input pipeline?).

use std::fmt;

/// What kind of work a scheduled task performs.
///
/// The set is closed on purpose: attribution reports group by category, and
/// a fixed vocabulary keeps those reports comparable across simulators
/// (CPU fleet, single-server GPU, multi-node scale-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TaskCategory {
    /// Embedding-row gathers and pooling, wherever the table lives (GPU
    /// HBM, host memory, or a sparse parameter server).
    EmbeddingLookup,
    /// Embedding-row scatter/optimizer updates applied at a table's owner
    /// on the trainer side.
    EmbeddingUpdate,
    /// Dense forward/backward compute: bottom MLP, feature interaction,
    /// top MLP, dense backward, Hogwild fwd+bwd.
    MlpCompute,
    /// Collective exchanges between workers: all-to-all of pooled vectors,
    /// all-reduce of dense gradients, replica gradient exchanges.
    AllToAll,
    /// Host↔device copies over PCIe (input upload, pooled-vector delivery,
    /// gradient download, staged-exchange hops).
    PcieTransfer,
    /// Network transfers over the NIC (parameter-server responses,
    /// gradient pushes, inter-node wires, EASGD sync traffic).
    NicTransfer,
    /// CPU-side staging/repacking of buffers in host memory.
    HostStaging,
    /// Work executed on a parameter server: sharded gathers, scatters,
    /// EASGD center updates.
    PsUpdate,
    /// Dense optimizer steps on the trainer.
    Optimizer,
    /// Waiting on the input pipeline: batch delivery from the reader tier.
    ReaderStall,
    /// Fault-recovery overhead: checkpoint writes, restarts, re-sharding
    /// after an elastic shrink (`recsim-fault`).
    Recovery,
    /// Framework bookkeeping: barriers and zero-duration joins.
    Framework,
    /// Uncategorized work (generic graphs built outside the simulators).
    Other,
}

impl TaskCategory {
    /// Every category, in display order.
    pub const ALL: [TaskCategory; 13] = [
        TaskCategory::EmbeddingLookup,
        TaskCategory::EmbeddingUpdate,
        TaskCategory::MlpCompute,
        TaskCategory::AllToAll,
        TaskCategory::PcieTransfer,
        TaskCategory::NicTransfer,
        TaskCategory::HostStaging,
        TaskCategory::PsUpdate,
        TaskCategory::Optimizer,
        TaskCategory::ReaderStall,
        TaskCategory::Recovery,
        TaskCategory::Framework,
        TaskCategory::Other,
    ];

    /// Stable human-readable label (used in attribution tables, Chrome
    /// trace `cat` fields and `SimReport` breakdowns).
    pub fn label(self) -> &'static str {
        match self {
            TaskCategory::EmbeddingLookup => "embedding lookup",
            TaskCategory::EmbeddingUpdate => "embedding update",
            TaskCategory::MlpCompute => "mlp compute",
            TaskCategory::AllToAll => "all-to-all",
            TaskCategory::PcieTransfer => "pcie transfer",
            TaskCategory::NicTransfer => "nic transfer",
            TaskCategory::HostStaging => "host staging",
            TaskCategory::PsUpdate => "ps update",
            TaskCategory::Optimizer => "optimizer",
            TaskCategory::ReaderStall => "reader stall",
            TaskCategory::Recovery => "recovery",
            TaskCategory::Framework => "framework",
            TaskCategory::Other => "other",
        }
    }

    /// Position in [`TaskCategory::ALL`] (dense array indexing for
    /// per-category accumulators).
    pub fn index(self) -> usize {
        match self {
            TaskCategory::EmbeddingLookup => 0,
            TaskCategory::EmbeddingUpdate => 1,
            TaskCategory::MlpCompute => 2,
            TaskCategory::AllToAll => 3,
            TaskCategory::PcieTransfer => 4,
            TaskCategory::NicTransfer => 5,
            TaskCategory::HostStaging => 6,
            TaskCategory::PsUpdate => 7,
            TaskCategory::Optimizer => 8,
            TaskCategory::ReaderStall => 9,
            TaskCategory::Recovery => 10,
            TaskCategory::Framework => 11,
            TaskCategory::Other => 12,
        }
    }

    /// Parses a [`TaskCategory::label`] back into a category.
    pub fn from_label(label: &str) -> Option<TaskCategory> {
        TaskCategory::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl Default for TaskCategory {
    /// Generic graphs that predate categorization default to
    /// [`TaskCategory::Other`].
    fn default() -> Self {
        TaskCategory::Other
    }
}

impl fmt::Display for TaskCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for c in TaskCategory::ALL {
            assert!(seen.insert(c.label()), "duplicate label {}", c.label());
            assert_eq!(TaskCategory::from_label(c.label()), Some(c));
        }
        assert_eq!(TaskCategory::from_label("nonsense"), None);
    }

    #[test]
    fn index_matches_all_order() {
        for (i, c) in TaskCategory::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn default_is_other() {
        assert_eq!(TaskCategory::default(), TaskCategory::Other);
    }
}
