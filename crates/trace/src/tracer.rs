//! The tracing sink: spans, instants and counters.
//!
//! Simulators emit through the [`Tracer`] trait; the default
//! [`NoopTracer`] compiles every emission down to nothing, so instrumented
//! code pays no cost unless a [`TraceRecorder`] is plugged in.

use crate::category::TaskCategory;

/// One recorded event. Timestamps and durations are in microseconds from
/// the start of the traced run — the native unit of the Chrome trace-event
/// format, and precise enough for nanosecond-scale simulated work when
/// carried as `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A task occupying `track` for `[start_us, start_us + dur_us]`.
    Span {
        /// Resource or lane the work ran on (becomes a Chrome "thread").
        track: String,
        /// Task name.
        name: String,
        /// Attribution category.
        category: TaskCategory,
        /// Start timestamp, µs.
        start_us: f64,
        /// Duration, µs.
        dur_us: f64,
    },
    /// A point-in-time marker on `track`.
    Instant {
        /// Track the marker belongs to.
        track: String,
        /// Marker name.
        name: String,
        /// Timestamp, µs.
        ts_us: f64,
    },
    /// A named numeric series sample (queue depth, occupancy, rates).
    Counter {
        /// Counter name.
        name: String,
        /// Timestamp, µs.
        ts_us: f64,
        /// Sampled value.
        value: f64,
    },
}

/// Where instrumented code sends its events.
///
/// Every method has an empty default body, so `&mut NoopTracer` is free:
/// the call sites stay, the work disappears. Implementations that record
/// override [`Tracer::enabled`] to let callers skip expensive
/// event-preparation entirely.
pub trait Tracer {
    /// Whether emissions are observed at all. Callers may skip building
    /// event arguments when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Records a span (see [`TraceEvent::Span`]).
    fn span(
        &mut self,
        track: &str,
        name: &str,
        category: TaskCategory,
        start_us: f64,
        dur_us: f64,
    ) {
        let _ = (track, name, category, start_us, dur_us);
    }

    /// Records an instant marker.
    fn instant(&mut self, track: &str, name: &str, ts_us: f64) {
        let _ = (track, name, ts_us);
    }

    /// Records a counter sample.
    fn counter(&mut self, name: &str, ts_us: f64, value: f64) {
        let _ = (name, ts_us, value);
    }
}

/// The zero-cost default sink: drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// A [`Tracer`] that records every event in memory; [`TraceRecorder::finish`]
/// turns the recording into an immutable [`Trace`] for export.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder and returns the finished trace.
    pub fn finish(self) -> Trace {
        Trace {
            events: self.events,
        }
    }
}

impl Tracer for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span(
        &mut self,
        track: &str,
        name: &str,
        category: TaskCategory,
        start_us: f64,
        dur_us: f64,
    ) {
        self.events.push(TraceEvent::Span {
            track: track.to_string(),
            name: name.to_string(),
            category,
            start_us,
            dur_us,
        });
    }

    fn instant(&mut self, track: &str, name: &str, ts_us: f64) {
        self.events.push(TraceEvent::Instant {
            track: track.to_string(),
            name: name.to_string(),
            ts_us,
        });
    }

    fn counter(&mut self, name: &str, ts_us: f64, value: f64) {
        self.events.push(TraceEvent::Counter {
            name: name.to_string(),
            ts_us,
            value,
        });
    }
}

/// An immutable recording, ready for the exporters in [`crate::export`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Every recorded event, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Distinct span/instant tracks, in first-seen order.
    pub fn tracks(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.events {
            let track = match e {
                TraceEvent::Span { track, .. } | TraceEvent::Instant { track, .. } => track,
                TraceEvent::Counter { .. } => continue,
            };
            if !out.contains(&track.as_str()) {
                out.push(track);
            }
        }
        out
    }

    /// Distinct counter names, in first-seen order.
    pub fn counter_names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.events {
            if let TraceEvent::Counter { name, .. } = e {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
        }
        out
    }

    /// Total span time per category, in µs, in [`TaskCategory::ALL`] order;
    /// categories with zero time are omitted.
    pub fn category_totals(&self) -> Vec<(TaskCategory, f64)> {
        let mut acc = [0.0f64; TaskCategory::ALL.len()];
        for e in &self.events {
            if let TraceEvent::Span {
                category, dur_us, ..
            } = e
            {
                acc[category.index()] += dur_us;
            }
        }
        TaskCategory::ALL
            .into_iter()
            .zip(acc)
            .filter(|(_, t)| *t > 0.0)
            .collect()
    }

    /// Timestamp of the latest span end, instant, or counter sample, in µs.
    pub fn end_us(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Span {
                    start_us, dur_us, ..
                } => start_us + dur_us,
                TraceEvent::Instant { ts_us, .. } | TraceEvent::Counter { ts_us, .. } => *ts_us,
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_disabled_and_silent() {
        let mut t = NoopTracer;
        assert!(!t.enabled());
        t.span("r", "a", TaskCategory::MlpCompute, 0.0, 5.0);
        t.instant("r", "m", 1.0);
        t.counter("c", 1.0, 2.0);
    }

    #[test]
    fn recorder_collects_in_order() {
        let mut rec = TraceRecorder::new();
        assert!(rec.enabled());
        rec.span("gpu0", "kernel", TaskCategory::MlpCompute, 0.0, 10.0);
        rec.counter("occupancy:gpu0", 0.0, 1.0);
        rec.instant("gpu0", "done", 10.0);
        let trace = rec.finish();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.tracks(), vec!["gpu0"]);
        assert_eq!(trace.counter_names(), vec!["occupancy:gpu0"]);
        assert_eq!(trace.end_us(), 10.0);
    }

    #[test]
    fn category_totals_aggregate_spans() {
        let mut rec = TraceRecorder::new();
        rec.span("a", "x", TaskCategory::MlpCompute, 0.0, 3.0);
        rec.span("b", "y", TaskCategory::MlpCompute, 1.0, 4.0);
        rec.span("a", "z", TaskCategory::NicTransfer, 3.0, 2.0);
        let totals = rec.finish().category_totals();
        assert_eq!(
            totals,
            vec![
                (TaskCategory::MlpCompute, 7.0),
                (TaskCategory::NicTransfer, 2.0)
            ]
        );
    }
}
