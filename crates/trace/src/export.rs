//! Trace exporters: Chrome trace-event JSON, a plain-text per-track
//! timeline, and summary tables rendered via `recsim-metrics`.

use crate::critical_path::CriticalPathReport;
use crate::tracer::{Trace, TraceEvent};
use recsim_metrics::Table;
use std::fmt::Write as _;

/// Serializes a trace into Chrome trace-event JSON
/// (`{"traceEvents": [...]}`), loadable by Perfetto and `chrome://tracing`.
///
/// Each track becomes a thread of process 0 (named via an `"M"` metadata
/// event); spans become `"X"` complete events carrying their category in
/// `cat`, instants become `"i"` events, counters become `"C"` events.
pub fn chrome_trace(trace: &Trace) -> String {
    let tracks = trace.tracks();
    let tid_of = |track: &str| tracks.iter().position(|t| *t == track).unwrap_or(0);
    let mut parts: Vec<String> = Vec::with_capacity(trace.len() + tracks.len());
    for (tid, track) in tracks.iter().enumerate() {
        parts.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(track)
        ));
    }
    for event in trace.events() {
        parts.push(match event {
            TraceEvent::Span {
                track,
                name,
                category,
                start_us,
                dur_us,
            } => format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":{},\"pid\":0,\"tid\":{}}}",
                escape(name),
                escape(category.label()),
                num(*start_us),
                num(*dur_us),
                tid_of(track)
            ),
            TraceEvent::Instant { track, name, ts_us } => format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\
                 \"tid\":{},\"s\":\"t\"}}",
                escape(name),
                num(*ts_us),
                tid_of(track)
            ),
            TraceEvent::Counter { name, ts_us, value } => format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                 \"args\":{{\"value\":{}}}}}",
                escape(name),
                num(*ts_us),
                num(*value)
            ),
        });
    }
    format!("{{\"traceEvents\":[{}]}}", parts.join(","))
}

/// Renders a plain-text timeline: one section per track, spans in start
/// order with `[start .. end] name (category)` rows, instants marked with
/// `@`, followed by a counter section when counters were recorded.
pub fn text_timeline(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline ({} events, {} end)",
        trace.len(),
        fmt_us(trace.end_us())
    );
    for track in trace.tracks() {
        let _ = writeln!(out, "{track}:");
        let mut rows: Vec<(f64, String)> = Vec::new();
        for event in trace.events() {
            match event {
                TraceEvent::Span {
                    track: t,
                    name,
                    category,
                    start_us,
                    dur_us,
                } if t == track => {
                    rows.push((
                        *start_us,
                        format!(
                            "  [{:>12} .. {:>12}] {name} ({category})",
                            fmt_us(*start_us),
                            fmt_us(start_us + dur_us)
                        ),
                    ));
                }
                TraceEvent::Instant {
                    track: t,
                    name,
                    ts_us,
                } if t == track => {
                    rows.push((*ts_us, format!("  @{:>12} {name}", fmt_us(*ts_us))));
                }
                _ => {}
            }
        }
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (_, row) in rows {
            let _ = writeln!(out, "{row}");
        }
    }
    let counters = trace.counter_names();
    if !counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for name in counters {
            for event in trace.events() {
                if let TraceEvent::Counter {
                    name: n,
                    ts_us,
                    value,
                } = event
                {
                    if n == name {
                        let _ = writeln!(out, "  {n} @{} = {value}", fmt_us(*ts_us));
                    }
                }
            }
        }
    }
    out
}

/// Summarizes every counter series as a table: sample count, min, mean,
/// max and last value.
pub fn counter_summary(trace: &Trace) -> Table {
    let mut table = Table::new(vec!["counter", "samples", "min", "mean", "max", "last"]);
    for name in trace.counter_names() {
        let values: Vec<f64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Counter { name: n, value, .. } if n == name => Some(*value),
                _ => None,
            })
            .collect();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        let last = values.last().copied().unwrap_or(0.0);
        table.push_row(vec![
            name.to_string(),
            values.len().to_string(),
            format!("{min:.3}"),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{last:.3}"),
        ]);
    }
    table
}

/// Summarizes total span time per category as a table (busy time across all
/// tracks, not critical-path attribution — see [`attribution_table`] for
/// the latter).
pub fn category_summary(trace: &Trace) -> Table {
    let totals = trace.category_totals();
    let grand: f64 = totals.iter().map(|(_, t)| t).sum();
    let mut table = Table::new(vec!["category", "busy time", "share"]);
    for (category, us) in totals {
        table.push_row(vec![
            category.label().to_string(),
            fmt_us(us),
            fmt_share(us, grand),
        ]);
    }
    table
}

/// Renders a critical-path attribution report as a table: seconds of the
/// makespan charged to each category, with percentage shares. The time
/// column sums to the makespan by construction.
pub fn attribution_table(report: &CriticalPathReport) -> Table {
    let mut table = Table::new(vec!["category", "time", "share"]);
    for (category, secs) in &report.breakdown {
        table.push_row(vec![
            category.label().to_string(),
            fmt_us(secs * 1e6),
            fmt_share(*secs, report.makespan),
        ]);
    }
    table.push_row(vec![
        "total (makespan)".to_string(),
        fmt_us(report.makespan * 1e6),
        fmt_share(report.makespan, report.makespan),
    ]);
    table
}

/// Renders the top-k slack report as a table.
pub fn slack_table(report: &CriticalPathReport) -> Table {
    let mut table = Table::new(vec!["task", "category", "duration", "slack"]);
    for entry in &report.slack {
        table.push_row(vec![
            entry.name.clone(),
            entry.category.label().to_string(),
            fmt_us(entry.duration * 1e6),
            fmt_us(entry.slack * 1e6),
        ]);
    }
    table
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values degrade to 0).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Formats a microsecond quantity with a readable unit.
fn fmt_us(us: f64) -> String {
    if us.abs() >= 1e6 {
        format!("{:.3} s", us / 1e6)
    } else if us.abs() >= 1e3 {
        format!("{:.3} ms", us / 1e3)
    } else {
        format!("{us:.3} µs")
    }
}

/// Formats `part / whole` as a percentage (0.0% when the whole is zero).
fn fmt_share(part: f64, whole: f64) -> String {
    if whole > 0.0 {
        format!("{:.1}%", 100.0 * part / whole)
    } else {
        "0.0%".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::TaskCategory;
    use crate::critical_path::{critical_path, ScheduledTask};
    use crate::tracer::{TraceRecorder, Tracer};

    fn sample_trace() -> Trace {
        let mut rec = TraceRecorder::new();
        rec.span("gpu0", "bottom_mlp", TaskCategory::MlpCompute, 0.0, 10.0);
        rec.span("nic", "read \"batch\"", TaskCategory::ReaderStall, 0.0, 4.0);
        rec.instant("gpu0", "iteration_done", 10.0);
        rec.counter("occupancy:gpu0", 0.0, 1.0);
        rec.counter("occupancy:gpu0", 10.0, 0.0);
        rec.finish()
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let json = chrome_trace(&sample_trace());
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        // 2 metadata + 2 spans + 1 instant + 2 counters.
        assert_eq!(events.len(), 7);
        let phases: Vec<&str> = events.iter().map(|e| e["ph"].as_str().unwrap()).collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "C").count(), 2);
        // The quoted task name survives escaping and round-trips.
        assert!(events.iter().any(|e| e["name"] == "read \"batch\""));
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let json = chrome_trace(&Trace::default());
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn text_timeline_lists_tracks_and_counters() {
        let text = text_timeline(&sample_trace());
        assert!(text.contains("gpu0:"));
        assert!(text.contains("nic:"));
        assert!(text.contains("bottom_mlp (mlp compute)"));
        assert!(text.contains("counters:"));
        assert!(text.contains("occupancy:gpu0"));
    }

    #[test]
    fn counter_summary_aggregates() {
        let table = counter_summary(&sample_trace());
        assert_eq!(table.len(), 1);
        assert_eq!(table.cell(0, 0), Some("occupancy:gpu0"));
        assert_eq!(table.cell(0, 1), Some("2"));
        assert_eq!(table.cell(0, 2), Some("0.000"));
        assert_eq!(table.cell(0, 4), Some("1.000"));
    }

    #[test]
    fn category_summary_totals_spans() {
        let table = category_summary(&sample_trace());
        assert_eq!(table.len(), 2);
        let rendered = table.to_string();
        assert!(rendered.contains("mlp compute"));
        assert!(rendered.contains("reader stall"));
    }

    #[test]
    fn attribution_table_includes_total_row() {
        let tasks = vec![ScheduledTask {
            name: "only".to_string(),
            category: TaskCategory::MlpCompute,
            start: 0.0,
            finish: 2e-3,
            resource: Some(0),
            deps: vec![],
        }];
        let report = critical_path(&tasks, 1);
        let table = attribution_table(&report);
        assert_eq!(table.len(), 2);
        assert_eq!(table.cell(1, 0), Some("total (makespan)"));
        assert_eq!(table.cell(1, 2), Some("100.0%"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
