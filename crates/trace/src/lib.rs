//! Unified tracing, counters, and critical-path attribution for recsim.
//!
//! The simulators in `recsim-sim` answer *how long* an iteration takes;
//! this crate answers *where the time goes*. It provides:
//!
//! - a [`Tracer`] sink with spans, instant events, and counters, defaulting
//!   to the zero-cost [`NoopTracer`] so uninstrumented runs pay nothing;
//! - exporters: Chrome trace-event JSON ([`chrome_trace`], loadable in
//!   Perfetto), a plain-text per-resource timeline ([`text_timeline`]), and
//!   counter/category summary tables rendered via `recsim-metrics`;
//! - [`critical_path`] analysis: a backward walk over a finished schedule
//!   that partitions `[0, makespan]` across [`TaskCategory`] buckets and
//!   ranks off-path tasks by slack.
//!
//! # Example
//!
//! ```
//! use recsim_trace::{
//!     chrome_trace, critical_path, ScheduledTask, TaskCategory, TraceRecorder, Tracer,
//! };
//!
//! // Record a couple of spans and export them.
//! let mut rec = TraceRecorder::new();
//! rec.span("gpu0", "bottom_mlp", TaskCategory::MlpCompute, 0.0, 120.0);
//! rec.span("nic", "read_batch", TaskCategory::ReaderStall, 0.0, 80.0);
//! let json = chrome_trace(&rec.finish());
//! assert!(json.starts_with("{\"traceEvents\":["));
//!
//! // Attribute a two-task schedule: every second lands in a category.
//! let tasks = vec![
//!     ScheduledTask {
//!         name: "read".into(),
//!         category: TaskCategory::ReaderStall,
//!         start: 0.0,
//!         finish: 1.0,
//!         resource: Some(0),
//!         deps: vec![],
//!     },
//!     ScheduledTask {
//!         name: "mlp".into(),
//!         category: TaskCategory::MlpCompute,
//!         start: 1.0,
//!         finish: 3.0,
//!         resource: Some(1),
//!         deps: vec![0],
//!     },
//! ];
//! let report = critical_path(&tasks, 5);
//! assert_eq!(report.attributed_total(), report.makespan);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod critical_path;
pub mod export;
pub mod tracer;

pub use category::TaskCategory;
pub use critical_path::{critical_path, CriticalPathReport, PathStep, ScheduledTask, SlackEntry};
pub use export::{
    attribution_table, category_summary, chrome_trace, counter_summary, slack_table, text_timeline,
};
pub use tracer::{NoopTracer, Trace, TraceEvent, TraceRecorder, Tracer};
