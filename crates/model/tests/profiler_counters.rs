//! Property tests pinning the profiler's FLOP/byte accounting: for random
//! kernel shapes, the counters a scope charges must equal the closed-form
//! counts re-derived *independently* here (the formulas are written out
//! again rather than calling `Counters` constructors, so a drifted kernel
//! or counter fails loudly instead of drifting in lockstep).
//!
//! The profiler recorder is process-wide, so every check runs under one
//! lock; the fixed-grid test gives the same coverage deterministically
//! where the proptest harness is unavailable.

use std::sync::{Mutex, PoisonError};

use proptest::prelude::*;
use recsim_data::SparseBatch;
use recsim_model::embedding::EmbeddingTable;
use recsim_model::linear::Linear;
use recsim_model::optim::Optimizer;
use recsim_model::{bce_with_logits, Matrix};
use recsim_prof::{Op, ProfileSnapshot};

/// Serializes access to the process-wide profiler across test threads.
static PROF_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the profiler armed from a clean slate and returns what it
/// recorded.
fn profiled<R>(f: impl FnOnce() -> R) -> ProfileSnapshot {
    let _guard = PROF_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    recsim_prof::reset();
    recsim_prof::set_enabled(true);
    let _ = f();
    recsim_prof::set_enabled(false);
    recsim_prof::drain()
}

/// Linear fwd + bwd + SGD apply for batch `b` through an `i → o` layer.
fn check_linear(b: usize, i: usize, o: usize, seed: u64) {
    let snap = profiled(|| {
        let mut layer = Linear::new(i, o, seed);
        let x = Matrix::xavier(b, i, seed + 1);
        let dy = Matrix::xavier(b, o, seed + 2);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (b, o));
        let (grads, _) = layer.backward(&x, &dy);
        layer.apply(&grads, &mut Optimizer::sgd(0.1));
    });
    let (bu, iu, ou) = (b as u64, i as u64, o as u64);

    // Forward: GEMM 2·b·i·o plus bias add b·o; reads x, W, bias, writes y.
    let fwd = snap.op(Op::LinearFwd);
    assert_eq!(fwd.count, 1);
    assert_eq!(
        fwd.flops,
        2 * bu * iu * ou + bu * ou,
        "fwd flops {b}x{i}x{o}"
    );
    assert_eq!(fwd.bytes, 4 * (bu * iu + iu * ou + ou + bu * ou));

    // Backward: dW = xᵀdy and dx = dyWᵀ GEMMs plus db column sums.
    let bwd = snap.op(Op::LinearBwd);
    assert_eq!(
        bwd.flops,
        4 * bu * iu * ou + bu * ou,
        "bwd flops {b}x{i}x{o}"
    );
    assert_eq!(bwd.bytes, 4 * (2 * bu * iu + bu * ou + 2 * iu * ou + ou));

    // SGD over i·o weights and o biases: 2 FLOPs and 3 touched values per
    // parameter.
    let opt = snap.op(Op::OptDense);
    let params = iu * ou + ou;
    assert_eq!(opt.flops, 2 * params, "sgd flops over {params} params");
    assert_eq!(opt.bytes, 4 * 3 * params);
}

/// Embedding-bag gather + scatter + sparse SGD for a two-bag batch.
fn check_embedding(rows: usize, dim: usize, idxs: &[u32]) {
    let split = idxs.len() / 2;
    let batch = SparseBatch::new(vec![0, split, idxs.len()], idxs.to_vec());
    // The coalesced-row count, derived independently of the kernel.
    let mut unique: Vec<u32> = idxs.to_vec();
    unique.sort_unstable();
    unique.dedup();

    let snap = profiled(|| {
        let mut table = EmbeddingTable::new(rows, dim, 11);
        let pooled = table.forward(&batch);
        let grad = table.backward(&batch, &pooled);
        table.apply(&grad, &mut Optimizer::sgd(0.1));
    });
    let (l, u, d) = (idxs.len() as u64, unique.len() as u64, dim as u64);

    // Gather: one add per gathered element; reads the gathered rows,
    // writes the 2-row pooled output.
    let gather = snap.op(Op::EmbGather);
    assert_eq!(gather.count, 1);
    assert_eq!(gather.flops, l * d, "gather flops l={l} d={d}");
    assert_eq!(gather.bytes, 4 * (l * d + 2 * d));

    // Scatter: one add per scattered element; each unique row read+written.
    let scatter = snap.op(Op::EmbScatter);
    assert_eq!(scatter.flops, l * d, "scatter flops l={l} d={d}");
    assert_eq!(
        scatter.bytes,
        4 * (l * d + 2 * u * d),
        "scatter bytes u={u}"
    );

    // Sparse SGD touches exactly the coalesced rows.
    let opt = snap.op(Op::OptSparse);
    assert_eq!(opt.flops, 2 * u * d);
    assert_eq!(opt.bytes, 4 * 3 * u * d);
}

/// BCE-with-logits over `b` examples: ~10 FLOPs each, three columns moved.
fn check_bce(b: usize) {
    let logits = Matrix::zeros(b, 1);
    let labels = vec![1.0f32; b];
    let snap = profiled(|| bce_with_logits(&logits, &labels));
    let loss = snap.op(Op::LossBce);
    assert_eq!(loss.count, 1);
    assert_eq!(loss.flops, 10 * b as u64);
    assert_eq!(loss.bytes, 4 * 3 * b as u64);
}

/// Deterministic shape grid covering the same invariants as the proptests,
/// for harnesses where the proptest runner is unavailable.
#[test]
fn closed_form_counters_fixed_grid() {
    for (b, i, o) in [(1, 1, 1), (2, 3, 4), (7, 16, 5), (32, 64, 8)] {
        check_linear(b, i, o, 42);
    }
    check_embedding(20, 4, &[3, 3, 3, 3]); // heavy duplication
    check_embedding(50, 8, &[0, 7, 13, 49, 7, 0]); // partial overlap
    check_embedding(10, 2, &[9]); // single lookup
    for b in [1, 5, 33] {
        check_bce(b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_counters_match_closed_form(
        b in 1usize..24,
        i in 1usize..32,
        o in 1usize..16,
        seed in 0u64..1000,
    ) {
        check_linear(b, i, o, seed);
    }

    #[test]
    fn embedding_counters_match_closed_form(
        dim in 1usize..12,
        idxs in prop::collection::vec(0u32..30, 1..20),
    ) {
        check_embedding(30, dim, &idxs);
    }

    #[test]
    fn bce_counters_match_closed_form(b in 1usize..64) {
        check_bce(b);
    }
}
