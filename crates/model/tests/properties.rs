//! Property-based tests: gradient checks and algebraic invariants of the
//! DLRM numerics.

use proptest::prelude::*;
use recsim_data::schema::ModelConfig;
use recsim_data::{CtrGenerator, SparseBatch};
use recsim_model::embedding::EmbeddingTable;
use recsim_model::linear::Linear;
use recsim_model::mlp::Mlp;
use recsim_model::optim::Optimizer;
use recsim_model::{bce_with_logits, DlrmModel, Matrix};

fn small_vals() -> impl Strategy<Value = f32> {
    (-2.0f32..2.0).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(small_vals(), 6),
        b in prop::collection::vec(small_vals(), 6),
        c in prop::collection::vec(small_vals(), 6),
    ) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 2, b);
        let c = Matrix::from_vec(3, 2, c);
        let mut b_plus_c = b.clone();
        b_plus_c.add_scaled(&c, 1.0);
        let lhs = a.matmul(&b_plus_c);
        let mut rhs = a.matmul(&b);
        rhs.add_scaled(&a.matmul(&c), 1.0);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let a = Matrix::xavier(3, 4, seed);
        let b = Matrix::xavier(4, 2, seed + 1);
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_gradient_check_random(seed in 0u64..500) {
        let layer = Linear::new(3, 2, seed);
        let x = Matrix::xavier(2, 3, seed + 7);
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let (g, _) = layer.backward(&x, &dy);
        // Analytic dW == xᵀ·1; verify against direct computation.
        let expected = x.transposed_matmul(&dy);
        for (a, b) in g.weight.as_slice().iter().zip(expected.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn embedding_pooling_is_additive(
        seed in 0u64..200,
        idxs in prop::collection::vec(0u32..20, 1..8),
    ) {
        // Sum pooling is additive: pooling a concatenated index list equals
        // the sum of pooling each index alone.
        let table = EmbeddingTable::new(20, 4, seed);
        let all = SparseBatch::new(vec![0, idxs.len()], idxs.clone());
        let pooled = table.forward(&all);
        let mut expected = vec![0.0f32; 4];
        for &i in &idxs {
            let single = SparseBatch::new(vec![0, 1], vec![i]);
            for (e, &v) in expected.iter_mut().zip(table.forward(&single).row(0)) {
                *e += v;
            }
        }
        for (p, e) in pooled.row(0).iter().zip(&expected) {
            prop_assert!((p - e).abs() < 1e-4);
        }
    }

    #[test]
    fn bce_loss_nonnegative_and_gradient_bounded(
        logits in prop::collection::vec(-10.0f32..10.0, 1..32),
        seed in 0u64..100,
    ) {
        let labels: Vec<f32> = logits
            .iter()
            .enumerate()
            .map(|(i, _)| if (i as u64 + seed).is_multiple_of(2) { 1.0 } else { 0.0 })
            .collect();
        let m = Matrix::from_vec(logits.len(), 1, logits.clone());
        let (loss, grad) = bce_with_logits(&m, &labels);
        prop_assert!(loss >= 0.0);
        for &g in grad.as_slice() {
            prop_assert!(g.abs() <= 1.0 / logits.len() as f32 + 1e-6);
        }
    }

    #[test]
    fn mlp_forward_deterministic(seed in 0u64..200) {
        let mlp = Mlp::new(4, &[8, 2], false, seed);
        let x = Matrix::xavier(3, 4, seed + 5);
        let (a, _) = mlp.forward(&x);
        let (b, _) = mlp.forward(&x);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dlrm_logits_finite_for_any_batch(
        dense in 1usize..12,
        sparse in 1usize..5,
        bs in 1usize..16,
        seed in 0u64..100,
    ) {
        let cfg = ModelConfig::test_suite(dense, sparse, 40, &[8]);
        let model = DlrmModel::new(&cfg, seed);
        let mut gen = CtrGenerator::new(&cfg, seed + 1);
        let batch = gen.next_batch(bs);
        let (logits, _) = model.forward(&batch);
        prop_assert_eq!(logits.rows(), bs);
        for &v in logits.as_slice() {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn sgd_step_is_linear_in_lr(lr in 0.001f32..0.5, g in -3.0f32..3.0) {
        let mut p1 = vec![1.0f32];
        Optimizer::sgd(lr).update_vector(&mut p1, &[g], &mut None);
        let mut p2 = vec![1.0f32];
        Optimizer::sgd(lr * 2.0).update_vector(&mut p2, &[g], &mut None);
        let d1 = 1.0 - p1[0];
        let d2 = 1.0 - p2[0];
        prop_assert!((d2 - 2.0 * d1).abs() < 1e-5);
    }
}
