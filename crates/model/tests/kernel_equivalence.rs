//! Equivalence of the optimized kernels against their retained reference
//! implementations (DESIGN.md §13).
//!
//! Two tiers of guarantee, each pinned here at random and ragged shapes:
//!
//! - **Byte-identical**: the coalesced embedding scatter
//!   (`EmbeddingTable::backward`) and the fused sparse optimizer update
//!   (`Optimizer::update_rows`) perform the same float operations in the
//!   same order as their references — results must match bit-for-bit.
//! - **Documented tolerance** (RV016 reduction-order change): the tiled
//!   GEMMs and the pair-fused embedding gather reassociate their
//!   accumulations, so they match the naive kernels to float tolerance
//!   only. The changed orders are fixed functions of the shapes, so
//!   determinism at any thread count is unaffected.
//!
//! The seeded loop tests run in every build; the `proptest!` blocks fuzz
//! the same properties in CI (they compile out of offline shadow builds).

use proptest::prelude::*;
use recsim_data::SparseBatch;
use recsim_model::embedding::EmbeddingTable;
use recsim_model::optim::Optimizer;
use recsim_model::Matrix;

/// Minimal splittable generator so the loop tests need no external RNG.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn val(&mut self) -> f32 {
        (self.next_u64() % 4001) as f32 / 2000.0 - 1.0
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| self.val()).collect())
    }

    /// A ragged sparse batch: `batch` examples, bags of 0..=max_len lookups
    /// into `hash` rows.
    fn sparse(&mut self, batch: usize, hash: usize, max_len: usize) -> SparseBatch {
        let mut offsets = vec![0usize];
        let mut indices = Vec::new();
        for _ in 0..batch {
            let len = self.below(max_len + 1);
            for _ in 0..len {
                indices.push(self.below(hash) as u32);
            }
            offsets.push(indices.len());
        }
        SparseBatch::new(offsets, indices)
    }
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0),
            "{what}: element {i}: {x} vs {y}"
        );
    }
}

#[test]
fn tiled_gemms_match_naive_at_ragged_shapes() {
    let mut rng = Lcg(0x9E3779B97F4A7C15);
    for trial in 0..60 {
        // Deliberately ragged: shapes straddle the unroll widths (4-wide k,
        // 8-lane dot) so every remainder path is exercised.
        let m = 1 + rng.below(13);
        let k = 1 + rng.below(19);
        let n = 1 + rng.below(13);
        let a = rng.matrix(m, k);
        let b = rng.matrix(k, n);
        assert_close(
            &a.matmul(&b),
            &a.matmul_naive(&b),
            1e-5,
            &format!("matmul trial {trial} ({m}x{k}x{n})"),
        );
        let bt = rng.matrix(n, k);
        assert_close(
            &a.matmul_transposed(&bt),
            &a.matmul_transposed_naive(&bt),
            1e-5,
            &format!("matmul_transposed trial {trial}"),
        );
        let c = rng.matrix(m, n);
        assert_close(
            &a.transposed_matmul(&c),
            &a.transposed_matmul_naive(&c),
            1e-5,
            &format!("transposed_matmul trial {trial}"),
        );
    }
}

#[test]
fn fused_gather_matches_reference_at_ragged_bags() {
    let mut rng = Lcg(0xA24BAED4963EE407);
    for trial in 0..40 {
        let hash = 1 + rng.below(40);
        let dim = 1 + rng.below(12);
        let table = EmbeddingTable::new(hash, dim, trial);
        let bsz = 1 + rng.below(9);
        let batch = rng.sparse(bsz, hash, 9);
        // Pair-fused pooling reassociates the bag sum: tolerance, not bytes.
        assert_close(
            &table.forward(&batch),
            &table.forward_reference(&batch),
            1e-5,
            &format!("fused gather trial {trial}"),
        );
    }
}

#[test]
fn coalesced_scatter_is_byte_identical_to_reference() {
    let mut rng = Lcg(0x85EBCA77C2B2AE63);
    for trial in 0..40 {
        let hash = 1 + rng.below(40);
        let dim = 1 + rng.below(12);
        let table = EmbeddingTable::new(hash, dim, trial);
        let bsz = 1 + rng.below(9);
        let batch = rng.sparse(bsz, hash, 9);
        let dy = rng.matrix(batch.batch_size(), dim);
        let fast = table.backward(&batch, &dy);
        let refr = table.backward_reference(&batch, &dy);
        assert_eq!(fast.rows(), refr.rows(), "scatter rows trial {trial}");
        assert_eq!(
            fast.grads().as_slice(),
            refr.grads().as_slice(),
            "scatter grads trial {trial}"
        );
    }
}

#[test]
fn fused_sparse_update_is_byte_identical_to_reference() {
    let mut rng = Lcg(0xC2B2AE3D27D4EB4F);
    for trial in 0..40 {
        let hash = 2 + rng.below(20);
        let dim = 1 + rng.below(12);
        // Unique sorted touched rows, as the scatter produces them.
        let mut rows: Vec<u32> = (0..hash as u32).filter(|_| rng.below(2) == 0).collect();
        if rows.is_empty() {
            rows.push(rng.below(hash) as u32);
        }
        let grads = rng.matrix(rows.len(), dim);
        for opt in [
            Optimizer::sgd(0.1),
            Optimizer::adagrad(0.05),
            Optimizer::row_wise_adagrad(0.05),
        ] {
            let param = rng.matrix(hash, dim);
            let (mut p_fast, mut p_ref) = (param.clone(), param);
            let (mut s_fast, mut s_ref) = (None, None);
            let (mut o_fast, mut o_ref) = (opt, opt);
            // Two steps so the Adagrad accumulator path is hit warm too.
            for _ in 0..2 {
                o_fast.update_rows(&mut p_fast, &rows, &grads, &mut s_fast);
                o_ref.update_rows_reference(&mut p_ref, &rows, &grads, &mut s_ref);
            }
            assert_eq!(
                p_fast.as_slice(),
                p_ref.as_slice(),
                "update trial {trial} ({opt:?})"
            );
            assert_eq!(s_fast, s_ref, "state trial {trial} ({opt:?})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_tiled_matmul_matches_naive(
        seed in 0u64..10_000,
        m in 1usize..12,
        k in 1usize..20,
        n in 1usize..12,
    ) {
        let a = Matrix::xavier(m, k, seed);
        let b = Matrix::xavier(k, n, seed.wrapping_add(1));
        let fast = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-5 * x.abs().max(y.abs()).max(1.0));
        }
    }

    #[test]
    fn prop_scatter_byte_identical(
        seed in 0u64..10_000,
        idxs in prop::collection::vec(0u32..30, 0..24),
        cuts in prop::collection::vec(0usize..24, 0..4),
    ) {
        // Build ragged offsets from sorted cut points clamped to the
        // index-list length.
        let mut offsets: Vec<usize> = cuts.iter().map(|&c| c.min(idxs.len())).collect();
        offsets.push(0);
        offsets.push(idxs.len());
        offsets.sort_unstable();
        let batch = SparseBatch::new(offsets, idxs);
        let table = EmbeddingTable::new(30, 5, seed);
        let dy = Matrix::xavier(batch.batch_size(), 5, seed.wrapping_add(9));
        let fast = table.backward(&batch, &dy);
        let refr = table.backward_reference(&batch, &dy);
        prop_assert_eq!(fast.rows(), refr.rows());
        prop_assert_eq!(fast.grads().as_slice(), refr.grads().as_slice());
    }

    #[test]
    fn prop_fused_update_rows_byte_identical(
        seed in 0u64..10_000,
        picks in prop::collection::vec(0u32..16, 1..10),
    ) {
        let mut rows = picks;
        rows.sort_unstable();
        rows.dedup();
        let grads = Matrix::xavier(rows.len(), 6, seed);
        for opt in [
            Optimizer::sgd(0.1),
            Optimizer::adagrad(0.05),
            Optimizer::row_wise_adagrad(0.05),
        ] {
            let param = Matrix::xavier(16, 6, seed.wrapping_add(3));
            let (mut p_fast, mut p_ref) = (param.clone(), param);
            let (mut s_fast, mut s_ref) = (None, None);
            let (mut o_fast, mut o_ref) = (opt, opt);
            o_fast.update_rows(&mut p_fast, &rows, &grads, &mut s_fast);
            o_ref.update_rows_reference(&mut p_ref, &rows, &grads, &mut s_ref);
            prop_assert_eq!(p_fast.as_slice(), p_ref.as_slice());
            prop_assert_eq!(s_fast, s_ref);
        }
    }
}
