//! Optimizers: SGD and (row-wise capable) Adagrad.
//!
//! The paper's recommendation models train with per-parameter adaptive
//! methods on the sparse side; Adagrad is the canonical choice. Optimizer
//! state lives next to each parameter (allocated lazily), so the same
//! [`Optimizer`] value can drive every layer.

use crate::tensor::Matrix;
use recsim_prof::Counters;
use serde::{Deserialize, Serialize};

/// The optimizer algorithm and its hyper-parameters.
///
/// # Example
///
/// ```
/// use recsim_model::optim::Optimizer;
///
/// let mut opt = Optimizer::adagrad(0.1);
/// let mut w = vec![1.0f32];
/// let mut state = None;
/// opt.update_vector(&mut w, &[1.0], &mut state);
/// assert!(w[0] < 1.0);
/// assert!(state.is_some(), "Adagrad allocates accumulator state");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adagrad: per-parameter learning-rate adaptation by accumulated
    /// squared gradients.
    Adagrad {
        /// Base learning rate.
        lr: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Row-wise Adagrad: one accumulator per embedding *row* (the mean of
    /// the row's squared gradients), the memory-frugal variant production
    /// recommendation systems use for their terabyte-scale tables — it
    /// shrinks optimizer state from one float per weight to one float per
    /// row.
    RowWiseAdagrad {
        /// Base learning rate.
        lr: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl Optimizer {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn sgd(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Optimizer::Sgd { lr }
    }

    /// Creates an Adagrad optimizer with `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn adagrad(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Optimizer::Adagrad { lr, eps: 1e-8 }
    }

    /// Creates a row-wise Adagrad optimizer with `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn row_wise_adagrad(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Optimizer::RowWiseAdagrad { lr, eps: 1e-8 }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        match *self {
            Optimizer::Sgd { lr }
            | Optimizer::Adagrad { lr, .. }
            | Optimizer::RowWiseAdagrad { lr, .. } => lr,
        }
    }

    /// Returns a copy with a different learning rate (for LR sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn with_learning_rate(&self, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        match *self {
            Optimizer::Sgd { .. } => Optimizer::Sgd { lr },
            Optimizer::Adagrad { eps, .. } => Optimizer::Adagrad { lr, eps },
            Optimizer::RowWiseAdagrad { eps, .. } => Optimizer::RowWiseAdagrad { lr, eps },
        }
    }

    /// Closed-form profiler counters for one update of a `rows`×`dim`
    /// parameter under this algorithm (a flat vector is one row). Call
    /// sites open their `OptDense`/`OptSparse` scopes with this so the
    /// FLOP/byte accounting tracks the optimizer variant.
    pub fn step_counters(&self, rows: usize, dim: usize) -> Counters {
        match *self {
            Optimizer::Sgd { .. } => Counters::sgd_update(rows * dim),
            Optimizer::Adagrad { .. } => Counters::adagrad_update(rows * dim),
            Optimizer::RowWiseAdagrad { .. } => Counters::row_wise_adagrad_update(rows, dim),
        }
    }

    /// Updates a flat parameter slice. Allocates state on first use for
    /// stateful algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `param` and `grad` lengths disagree.
    pub fn update_vector(&mut self, param: &mut [f32], grad: &[f32], state: &mut Option<Vec<f32>>) {
        assert_eq!(param.len(), grad.len(), "gradient length mismatch");
        match *self {
            Optimizer::Sgd { lr } => {
                for (p, &g) in param.iter_mut().zip(grad) {
                    *p -= lr * g;
                }
            }
            Optimizer::Adagrad { lr, eps } => {
                let acc = state.get_or_insert_with(|| vec![0.0; param.len()]);
                assert_eq!(acc.len(), param.len(), "optimizer state length mismatch");
                for ((p, &g), a) in param.iter_mut().zip(grad).zip(acc.iter_mut()) {
                    *a += g * g;
                    *p -= lr * g / (a.sqrt() + eps);
                }
            }
            Optimizer::RowWiseAdagrad { lr, eps } => {
                // A flat vector is a single "row": one shared accumulator.
                let acc = state.get_or_insert_with(|| vec![0.0; 1]);
                let mean_sq = grad.iter().map(|&g| g * g).sum::<f32>() / param.len().max(1) as f32;
                acc[0] += mean_sq;
                let scale = lr / (acc[0].sqrt() + eps);
                for (p, &g) in param.iter_mut().zip(grad) {
                    *p -= scale * g;
                }
            }
        }
    }

    /// Updates a matrix parameter.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn update_matrix(&mut self, param: &mut Matrix, grad: &Matrix, state: &mut Option<Matrix>) {
        assert_eq!(
            (param.rows(), param.cols()),
            (grad.rows(), grad.cols()),
            "gradient shape mismatch"
        );
        match *self {
            Optimizer::Sgd { lr } => {
                param.add_scaled(grad, -lr);
            }
            Optimizer::Adagrad { lr, eps } => {
                let acc = state.get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
                for ((p, &g), a) in param
                    .as_mut_slice()
                    .iter_mut()
                    .zip(grad.as_slice())
                    .zip(acc.as_mut_slice().iter_mut())
                {
                    *a += g * g;
                    *p -= lr * g / (a.sqrt() + eps);
                }
            }
            Optimizer::RowWiseAdagrad { lr, eps } => {
                // One accumulator per matrix row, stored as an n x 1 state.
                let acc = state.get_or_insert_with(|| Matrix::zeros(param.rows(), 1));
                for r in 0..param.rows() {
                    let g_row = grad.row(r);
                    let mean_sq = g_row.iter().map(|&g| g * g).sum::<f32>() / g_row.len() as f32;
                    let a = acc.get(r, 0) + mean_sq;
                    acc.set(r, 0, a);
                    let scale = lr / (a.sqrt() + eps);
                    for (p, &g) in param.row_mut(r).iter_mut().zip(g_row) {
                        *p -= scale * g;
                    }
                }
            }
        }
    }

    /// Updates selected rows of a matrix parameter (sparse embedding
    /// update): row `rows[i]` of `param` receives row `i` of `grads`.
    ///
    /// For Adagrad the accumulator is also row-sparse — only touched rows
    /// pay state updates, matching how production embedding training works.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree, `grads.rows() != rows.len()`, or a row is
    /// out of bounds.
    pub fn update_rows(
        &mut self,
        param: &mut Matrix,
        rows: &[u32],
        grads: &Matrix,
        state: &mut Option<Matrix>,
    ) {
        assert_eq!(grads.rows(), rows.len(), "row count mismatch");
        assert_eq!(grads.cols(), param.cols(), "row width mismatch");
        match *self {
            Optimizer::Sgd { lr } => {
                for (i, &r) in rows.iter().enumerate() {
                    let dst = param.row_mut(r as usize);
                    for (p, &g) in dst.iter_mut().zip(grads.row(i)) {
                        *p -= lr * g;
                    }
                }
            }
            Optimizer::Adagrad { lr, eps } => {
                let acc = state.get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
                for (i, &r) in rows.iter().enumerate() {
                    let r = r as usize;
                    // Fused single pass over the row: accumulator and
                    // parameter update per element, with no temporary row
                    // copies. Byte-identical to the former two-pass form —
                    // the second pass already read the freshly updated
                    // accumulator element.
                    for ((p, &g), a) in param
                        .row_mut(r)
                        .iter_mut()
                        .zip(grads.row(i))
                        .zip(acc.row_mut(r))
                    {
                        *a += g * g;
                        *p -= lr * g / (a.sqrt() + eps);
                    }
                }
            }
            Optimizer::RowWiseAdagrad { lr, eps } => {
                // State: one accumulator per table row (n x 1) — 1/d the
                // memory of full Adagrad, the production default for
                // embedding tables.
                let acc = state.get_or_insert_with(|| Matrix::zeros(param.rows(), 1));
                for (i, &r) in rows.iter().enumerate() {
                    let r = r as usize;
                    let g_row = grads.row(i);
                    let mean_sq = g_row.iter().map(|&g| g * g).sum::<f32>() / g_row.len() as f32;
                    let a = acc.get(r, 0) + mean_sq;
                    acc.set(r, 0, a);
                    let scale = lr / (a.sqrt() + eps);
                    for (p, &g) in param.row_mut(r).iter_mut().zip(g_row) {
                        *p -= scale * g;
                    }
                }
            }
        }
    }

    /// Reference sparse row update: the pre-optimization two-pass kernel
    /// with temporary row copies. Retained off the hot path as the proptest
    /// baseline the fused [`Optimizer::update_rows`] must match
    /// byte-for-byte (`crates/model/tests/kernel_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if widths disagree, `grads.rows() != rows.len()`, or a row is
    /// out of bounds.
    pub fn update_rows_reference(
        &mut self,
        param: &mut Matrix,
        rows: &[u32],
        grads: &Matrix,
        state: &mut Option<Matrix>,
    ) {
        assert_eq!(grads.rows(), rows.len(), "row count mismatch");
        assert_eq!(grads.cols(), param.cols(), "row width mismatch");
        match *self {
            Optimizer::Sgd { lr } => {
                for (i, &r) in rows.iter().enumerate() {
                    let dst = param.row_mut(r as usize);
                    for (p, &g) in dst.iter_mut().zip(grads.row(i)) {
                        *p -= lr * g;
                    }
                }
            }
            Optimizer::Adagrad { lr, eps } => {
                let acc = state.get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
                for (i, &r) in rows.iter().enumerate() {
                    let r = r as usize;
                    let g_row = grads.row(i).to_vec();
                    let a_row = acc.row_mut(r);
                    for (a, &g) in a_row.iter_mut().zip(&g_row) {
                        *a += g * g;
                    }
                    let a_row: Vec<f32> = acc.row(r).to_vec();
                    let dst = param.row_mut(r);
                    for ((p, &g), &a) in dst.iter_mut().zip(&g_row).zip(&a_row) {
                        *p -= lr * g / (a.sqrt() + eps);
                    }
                }
            }
            Optimizer::RowWiseAdagrad { lr, eps } => {
                let acc = state.get_or_insert_with(|| Matrix::zeros(param.rows(), 1));
                for (i, &r) in rows.iter().enumerate() {
                    let r = r as usize;
                    let g_row = grads.row(i);
                    let mean_sq = g_row.iter().map(|&g| g * g).sum::<f32>() / g_row.len() as f32;
                    let a = acc.get(r, 0) + mean_sq;
                    acc.set(r, 0, a);
                    let scale = lr / (a.sqrt() + eps);
                    let g_row = grads.row(i).to_vec();
                    let dst = param.row_mut(r);
                    for (p, &g) in dst.iter_mut().zip(&g_row) {
                        *p -= scale * g;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Optimizer::sgd(0.5);
        let mut p = vec![1.0f32, -1.0];
        opt.update_vector(&mut p, &[2.0, -2.0], &mut None);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn adagrad_step_shrinks_with_history() {
        let mut opt = Optimizer::adagrad(1.0);
        let mut p = vec![0.0f32];
        let mut state = None;
        opt.update_vector(&mut p, &[1.0], &mut state);
        let first = -p[0];
        let before = p[0];
        opt.update_vector(&mut p, &[1.0], &mut state);
        let second = before - p[0];
        assert!(second < first, "steps shrink: {first} then {second}");
    }

    #[test]
    fn adagrad_adapts_per_coordinate() {
        let mut opt = Optimizer::adagrad(1.0);
        let mut p = vec![0.0f32, 0.0];
        let mut state = None;
        // Coordinate 0 gets big gradients, coordinate 1 small ones.
        for _ in 0..10 {
            opt.update_vector(&mut p, &[10.0, 0.1], &mut state);
        }
        // Adagrad normalizes: both should have moved a similar distance.
        let ratio = p[0].abs() / p[1].abs();
        assert!(ratio < 2.0, "per-coordinate adaptation, ratio {ratio}");
    }

    #[test]
    fn sparse_rows_update_only_touched_rows() {
        let mut opt = Optimizer::sgd(1.0);
        let mut table = Matrix::zeros(4, 2);
        let grads = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        opt.update_rows(&mut table, &[1, 3], &grads, &mut None);
        assert_eq!(table.row(0), &[0.0, 0.0]);
        assert_eq!(table.row(1), &[-1.0, -1.0]);
        assert_eq!(table.row(2), &[0.0, 0.0]);
        assert_eq!(table.row(3), &[-2.0, -2.0]);
    }

    #[test]
    fn sparse_adagrad_state_is_rowwise() {
        let mut opt = Optimizer::adagrad(1.0);
        let mut table = Matrix::zeros(3, 1);
        let mut state = None;
        let g = Matrix::from_rows(&[&[1.0]]);
        opt.update_rows(&mut table, &[0], &g, &mut state);
        opt.update_rows(&mut table, &[0], &g, &mut state);
        opt.update_rows(&mut table, &[2], &g, &mut state);
        // Row 0 has seen two gradients (smaller second step) while row 2's
        // first step is full-size.
        assert!(table.get(2, 0).abs() > table.get(0, 0).abs() / 2.0);
        let acc = state.expect("allocated");
        assert_eq!(acc.get(1, 0), 0.0, "untouched rows keep zero state");
    }

    #[test]
    fn row_wise_adagrad_state_is_one_float_per_row() {
        let mut opt = Optimizer::row_wise_adagrad(1.0);
        let mut table = Matrix::zeros(8, 4);
        let mut state = None;
        let g = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        opt.update_rows(&mut table, &[3], &g, &mut state);
        let acc = state.as_ref().expect("allocated");
        assert_eq!((acc.rows(), acc.cols()), (8, 1), "one accumulator per row");
        assert!(acc.get(3, 0) > 0.0);
        assert_eq!(acc.get(0, 0), 0.0);
    }

    #[test]
    fn row_wise_adagrad_steps_shrink() {
        let mut opt = Optimizer::row_wise_adagrad(1.0);
        let mut table = Matrix::zeros(2, 2);
        let mut state = None;
        let g = Matrix::from_rows(&[&[1.0, 1.0]]);
        opt.update_rows(&mut table, &[0], &g, &mut state);
        let first = -table.get(0, 0);
        let before = table.get(0, 0);
        opt.update_rows(&mut table, &[0], &g, &mut state);
        let second = before - table.get(0, 0);
        assert!(second < first, "steps shrink: {first} then {second}");
    }

    #[test]
    fn row_wise_adagrad_scales_whole_row_uniformly() {
        let mut opt = Optimizer::row_wise_adagrad(1.0);
        let mut table = Matrix::zeros(1, 2);
        let mut state = None;
        // Mixed-magnitude gradient within one row: both coordinates share
        // the row's accumulator, so the ratio of the updates equals the
        // ratio of the gradients (unlike full Adagrad).
        let g = Matrix::from_rows(&[&[4.0, 1.0]]);
        opt.update_rows(&mut table, &[0], &g, &mut state);
        let ratio = table.get(0, 0) / table.get(0, 1);
        assert!(
            (ratio - 4.0).abs() < 1e-5,
            "uniform row scaling, ratio {ratio}"
        );
    }

    #[test]
    fn row_wise_dense_matrix_update_works() {
        let mut opt = Optimizer::row_wise_adagrad(0.5);
        let mut w = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let g = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        let mut state = None;
        opt.update_matrix(&mut w, &g, &mut state);
        assert!(w.get(0, 0) < 1.0);
        assert_eq!(w.get(1, 0), 1.0, "zero-gradient row untouched");
    }

    #[test]
    fn lr_override() {
        let opt = Optimizer::adagrad(0.1).with_learning_rate(0.2);
        assert_eq!(opt.learning_rate(), 0.2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_rejected() {
        Optimizer::sgd(0.0);
    }
}
