//! Feature interactions: concatenation and pairwise dot product.
//!
//! Section III.A.3 of the paper: concatenation appends the pooled embeddings
//! to the dense MLP output; the dot-product combiner projects the dense
//! output to the embedding dimension and computes dot products between all
//! pairs of {projected dense, sparse embeddings}, concatenating the products
//! with the original dense output.

use crate::linear::{Linear, LinearGradients};
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use recsim_prof::{self as prof, Counters, Op};
use serde::{Deserialize, Serialize};

/// The interaction layer of a DLRM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InteractionLayer {
    /// `top_in = [z0 | e_1 | … | e_S]`.
    Concat,
    /// `top_in = [z0 | {v_i · v_j}_{i<j}]` with `v_0 = proj(z0)`,
    /// `v_f = e_f`.
    Dot {
        /// The dense-to-embedding-dimension projection.
        projection: Linear,
    },
}

/// Cache of the interaction forward pass.
#[derive(Debug, Clone)]
pub struct InteractionCache {
    z0: Matrix,
    /// `v_0 = proj(z0)` followed by the pooled embeddings (dot only).
    vectors: Vec<Matrix>,
}

/// Gradients flowing out of the interaction backward pass.
#[derive(Debug, Clone)]
pub struct InteractionGradients {
    /// Projection-layer gradients (dot interaction only).
    pub projection: Option<LinearGradients>,
    /// Gradient w.r.t. the bottom-MLP output.
    pub d_bottom: Matrix,
    /// Gradient w.r.t. each pooled embedding, in feature order.
    pub d_embeddings: Vec<Matrix>,
}

impl InteractionGradients {
    /// Adds another shard's parameter (projection) gradients in place.
    ///
    /// Only the projection gradients accumulate: `d_bottom` and
    /// `d_embeddings` are activation-side gradients whose rows belong to a
    /// single shard's examples, so the accumulator keeps its own blocks and
    /// callers must not read them after folding. `apply` only consumes the
    /// projection gradients, so this is sufficient for training.
    ///
    /// # Panics
    ///
    /// Panics if one side has projection gradients and the other does not.
    pub fn accumulate(&mut self, other: &InteractionGradients) {
        assert_eq!(
            self.projection.is_some(),
            other.projection.is_some(),
            "interaction gradient variant mismatch"
        );
        if let (Some(a), Some(b)) = (&mut self.projection, &other.projection) {
            a.accumulate(b);
        }
    }
}

impl InteractionLayer {
    /// Creates a concat interaction.
    pub fn concat() -> Self {
        InteractionLayer::Concat
    }

    /// Creates a dot-product interaction with a fresh projection from
    /// `bottom_out` to `embedding_dim`.
    pub fn dot(bottom_out: usize, embedding_dim: usize, seed: u64) -> Self {
        InteractionLayer::Dot {
            projection: Linear::new(bottom_out, embedding_dim, seed),
        }
    }

    /// Output width for `num_sparse` features given the bottom output and
    /// embedding dimension.
    pub fn output_dim(&self, bottom_out: usize, embedding_dim: usize, num_sparse: usize) -> usize {
        match self {
            InteractionLayer::Concat => bottom_out + num_sparse * embedding_dim,
            InteractionLayer::Dot { .. } => {
                let n = num_sparse + 1;
                bottom_out + n * (n - 1) / 2
            }
        }
    }

    /// Forward pass: combines the bottom output `z0: B×n0` with the pooled
    /// embeddings (each `B×d`).
    ///
    /// # Panics
    ///
    /// Panics on batch-size or dimension mismatches.
    pub fn forward(&self, z0: &Matrix, embeddings: &[Matrix]) -> (Matrix, InteractionCache) {
        for e in embeddings {
            assert_eq!(e.rows(), z0.rows(), "embedding batch mismatch");
        }
        match self {
            InteractionLayer::Concat => {
                let width = z0.cols() + embeddings.iter().map(Matrix::cols).sum::<usize>();
                let _prof =
                    prof::scope(Op::InteractionFwd, Counters::concat_copy(z0.rows() * width));
                let mut out = z0.clone();
                for e in embeddings {
                    out = out.hcat(e);
                }
                (
                    out,
                    InteractionCache {
                        z0: z0.clone(),
                        vectors: Vec::new(),
                    },
                )
            }
            InteractionLayer::Dot { projection } => {
                let b = z0.rows();
                let p = projection.forward(z0);
                let d = p.cols();
                for e in embeddings {
                    assert_eq!(e.cols(), d, "embedding dim mismatch");
                }
                // The projection GEMM above records as `LinearFwd`; the
                // interaction scope covers only the pairwise dots.
                let _prof = prof::scope(
                    Op::InteractionFwd,
                    Counters::interaction_dot_forward(b, embeddings.len() + 1, d),
                );
                let mut vectors = Vec::with_capacity(embeddings.len() + 1);
                vectors.push(p);
                vectors.extend(embeddings.iter().cloned());
                let n = vectors.len();
                let pairs = n * (n - 1) / 2;
                let mut dots = Matrix::zeros(b, pairs.max(1));
                let mut k = 0usize;
                for i in 0..n {
                    for j in (i + 1)..n {
                        for row in 0..b {
                            let vi = vectors[i].row(row);
                            let vj = vectors[j].row(row);
                            dots.set(row, k, crate::tensor::dot(vi, vj));
                        }
                        k += 1;
                    }
                }
                let out = if pairs == 0 {
                    z0.clone()
                } else {
                    z0.hcat(&dots)
                };
                (
                    out,
                    InteractionCache {
                        z0: z0.clone(),
                        vectors,
                    },
                )
            }
        }
    }

    /// Backward pass from the gradient of the interaction output.
    ///
    /// # Panics
    ///
    /// Panics if the cache or gradient shape is inconsistent.
    pub fn backward(
        &self,
        cache: &InteractionCache,
        d_out: &Matrix,
        num_sparse: usize,
        embedding_dim: usize,
    ) -> InteractionGradients {
        let n0 = cache.z0.cols();
        match self {
            InteractionLayer::Concat => {
                assert_eq!(
                    d_out.cols(),
                    n0 + num_sparse * embedding_dim,
                    "gradient width mismatch"
                );
                let _prof = prof::scope(
                    Op::InteractionBwd,
                    Counters::concat_copy(d_out.rows() * d_out.cols()),
                );
                let (d_bottom, mut rest) = if num_sparse == 0 {
                    (d_out.clone(), Matrix::zeros(d_out.rows(), 1))
                } else {
                    d_out.hsplit(n0)
                };
                let mut d_embeddings = Vec::with_capacity(num_sparse);
                for f in 0..num_sparse {
                    if f + 1 == num_sparse {
                        d_embeddings.push(rest.clone());
                    } else {
                        let (head, tail) = rest.hsplit(embedding_dim);
                        d_embeddings.push(head);
                        rest = tail;
                    }
                }
                InteractionGradients {
                    projection: None,
                    d_bottom,
                    d_embeddings,
                }
            }
            InteractionLayer::Dot { projection } => {
                let n = cache.vectors.len();
                assert_eq!(n, num_sparse + 1, "stale cache");
                let pairs = n * (n - 1) / 2;
                let b = d_out.rows();
                // Scoped so the projection backward below records under its
                // own `LinearBwd`, not double-counted here.
                let _prof = prof::scope(
                    Op::InteractionBwd,
                    Counters::interaction_dot_backward(b, n, embedding_dim),
                );
                let (mut d_bottom, d_dots) = if pairs == 0 {
                    (d_out.clone(), Matrix::zeros(b, 1))
                } else {
                    d_out.hsplit(n0)
                };
                // Gradient into each interaction vector.
                let mut d_vectors: Vec<Matrix> =
                    (0..n).map(|_| Matrix::zeros(b, embedding_dim)).collect();
                let mut k = 0usize;
                // Branch-free axpy pairs straight from the cached vectors:
                // no per-row copies and no data-dependent zero-skip, so the
                // inner loops vectorize.
                for i in 0..n {
                    for j in (i + 1)..n {
                        for row in 0..b {
                            let g = d_dots.get(row, k);
                            let vj = cache.vectors[j].row(row);
                            for (d, &v) in d_vectors[i].row_mut(row).iter_mut().zip(vj) {
                                *d += g * v;
                            }
                            let vi = cache.vectors[i].row(row);
                            for (d, &v) in d_vectors[j].row_mut(row).iter_mut().zip(vi) {
                                *d += g * v;
                            }
                        }
                        k += 1;
                    }
                }
                // v_0 backpropagates through the projection into z0; close
                // the interaction scope first — the projection records its
                // own `LinearBwd`.
                drop(_prof);
                let (proj_grads, d_z0_from_proj) = projection.backward(&cache.z0, &d_vectors[0]);
                d_bottom.add_scaled(&d_z0_from_proj, 1.0);
                InteractionGradients {
                    projection: Some(proj_grads),
                    d_bottom,
                    d_embeddings: d_vectors.split_off(1),
                }
            }
        }
    }

    /// Applies projection gradients (no-op for concat).
    pub fn apply(&mut self, grads: &InteractionGradients, optimizer: &mut Optimizer) {
        if let (InteractionLayer::Dot { projection }, Some(g)) = (self, &grads.projection) {
            projection.apply(g, optimizer);
        }
    }

    /// Elastic-averaging pull toward another replica's interaction layer.
    ///
    /// # Panics
    ///
    /// Panics if variants differ.
    pub fn pull_toward(&mut self, other: &InteractionLayer, alpha: f32) {
        match (self, other) {
            (InteractionLayer::Concat, InteractionLayer::Concat) => {}
            (InteractionLayer::Dot { projection }, InteractionLayer::Dot { projection: o }) => {
                projection.pull_toward(o, alpha);
            }
            _ => panic!("interaction variant mismatch"),
        }
    }

    /// Parameter count (projection only).
    pub fn parameter_count(&self) -> usize {
        match self {
            InteractionLayer::Concat => 0,
            InteractionLayer::Dot { projection } => projection.parameter_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embeddings(b: usize, d: usize, n: usize, seed: u64) -> Vec<Matrix> {
        (0..n)
            .map(|i| Matrix::xavier(b, d, seed + i as u64))
            .collect()
    }

    #[test]
    fn concat_output_width() {
        let layer = InteractionLayer::concat();
        let z0 = Matrix::xavier(3, 8, 1);
        let embs = embeddings(3, 4, 2, 10);
        let (out, _) = layer.forward(&z0, &embs);
        assert_eq!(out.cols(), 8 + 2 * 4);
        assert_eq!(out.cols(), layer.output_dim(8, 4, 2));
    }

    #[test]
    fn dot_output_width() {
        let layer = InteractionLayer::dot(8, 4, 2);
        let z0 = Matrix::xavier(3, 8, 1);
        let embs = embeddings(3, 4, 3, 10);
        let (out, _) = layer.forward(&z0, &embs);
        // 8 + C(4,2) = 8 + 6
        assert_eq!(out.cols(), 14);
        assert_eq!(out.cols(), layer.output_dim(8, 4, 3));
    }

    #[test]
    fn concat_backward_splits_exactly() {
        let layer = InteractionLayer::concat();
        let z0 = Matrix::xavier(2, 3, 2);
        let embs = embeddings(2, 2, 2, 20);
        let (out, cache) = layer.forward(&z0, &embs);
        let d_out = Matrix::from_vec(
            2,
            out.cols(),
            (0..2 * out.cols()).map(|i| i as f32).collect(),
        );
        let g = layer.backward(&cache, &d_out, 2, 2);
        assert!(g.projection.is_none());
        assert_eq!(g.d_bottom.cols(), 3);
        assert_eq!(g.d_embeddings.len(), 2);
        // First embedding takes cols 3..5 of the upstream gradient.
        assert_eq!(g.d_embeddings[0].row(0), &d_out.row(0)[3..5]);
        assert_eq!(g.d_embeddings[1].row(1), &d_out.row(1)[5..7]);
    }

    #[test]
    fn dot_gradient_check_embeddings() {
        let layer = InteractionLayer::dot(3, 2, 30);
        let z0 = Matrix::from_rows(&[&[0.4, -0.3, 0.8]]);
        let embs = vec![
            Matrix::from_rows(&[&[0.5, -0.1]]),
            Matrix::from_rows(&[&[0.2, 0.7]]),
        ];
        let (out, cache) = layer.forward(&z0, &embs);
        let d_out = Matrix::from_vec(1, out.cols(), vec![1.0; out.cols()]);
        let g = layer.backward(&cache, &d_out, 2, 2);
        let loss = |embs: &[Matrix]| -> f32 { layer.forward(&z0, embs).0.as_slice().iter().sum() };
        let eps = 1e-3f32;
        for f in 0..2 {
            for j in 0..2 {
                let mut up = embs.clone();
                up[f].set(0, j, embs[f].get(0, j) + eps);
                let mut down = embs.clone();
                down[f].set(0, j, embs[f].get(0, j) - eps);
                let fd = (loss(&up) - loss(&down)) / (2.0 * eps);
                let analytic = g.d_embeddings[f].get(0, j);
                assert!(
                    (fd - analytic).abs() < 1e-2,
                    "emb {f} coord {j}: fd {fd} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn dot_gradient_check_bottom() {
        let layer = InteractionLayer::dot(3, 2, 31);
        let z0 = Matrix::from_rows(&[&[0.4, -0.3, 0.8]]);
        let embs = vec![Matrix::from_rows(&[&[0.5, -0.1]])];
        let (out, cache) = layer.forward(&z0, &embs);
        let d_out = Matrix::from_vec(1, out.cols(), vec![1.0; out.cols()]);
        let g = layer.backward(&cache, &d_out, 1, 2);
        assert!(g.projection.is_some());
        let loss = |z: &Matrix| -> f32 { layer.forward(z, &embs).0.as_slice().iter().sum() };
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut zp = z0.clone();
            zp.set(0, j, z0.get(0, j) + eps);
            let mut zm = z0.clone();
            zm.set(0, j, z0.get(0, j) - eps);
            let fd = (loss(&zp) - loss(&zm)) / (2.0 * eps);
            let analytic = g.d_bottom.get(0, j);
            assert!(
                (fd - analytic).abs() < 1e-2,
                "z0 coord {j}: fd {fd} vs {analytic}"
            );
        }
    }

    #[test]
    fn dot_with_zero_sparse_features_passes_through() {
        let layer = InteractionLayer::dot(4, 2, 32);
        let z0 = Matrix::xavier(2, 4, 3);
        let (out, _) = layer.forward(&z0, &[]);
        assert_eq!(out.cols(), 4);
    }
}
