//! Embedding tables with sum-pooling bags and sparse gradients.
//!
//! Each sparse feature maps hashed categorical indices into a learned
//! `hash_size × d` table (paper Section III.A). A forward "bag" gathers the
//! rows a batch activates and sum-pools them per example; backward produces
//! a *sparse* gradient touching only the gathered rows — the property that
//! makes embedding training memory-bandwidth-bound rather than
//! compute-bound.

use crate::optim::Optimizer;
use crate::tensor::Matrix;
use recsim_data::SparseBatch;
use recsim_prof::{self as prof, Counters, Op};
use serde::{Deserialize, Serialize};

/// A learned embedding table with sum-pooling lookup.
///
/// # Example
///
/// ```
/// use recsim_model::EmbeddingTable;
/// use recsim_data::SparseBatch;
///
/// let table = EmbeddingTable::new(100, 8, 1);
/// let batch = SparseBatch::new(vec![0, 2, 3], vec![5, 9, 40]);
/// let pooled = table.forward(&batch);
/// assert_eq!((pooled.rows(), pooled.cols()), (2, 8));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingTable {
    weights: Matrix, // hash_size x d
    state: Option<Matrix>,
}

/// A sparse gradient for an [`EmbeddingTable`]: `rows[i]` receives
/// `grads.row(i)`. Rows are unique and sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGradient {
    rows: Vec<u32>,
    grads: Matrix,
}

impl SparseGradient {
    /// The (unique, sorted) touched row indices.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// The per-row gradients, aligned with [`SparseGradient::rows`].
    pub fn grads(&self) -> &Matrix {
        &self.grads
    }

    /// Number of distinct rows touched.
    pub fn touched(&self) -> usize {
        self.rows.len()
    }

    /// K-way merge of per-shard coalesced gradients: the union of the
    /// sorted row sets, each output row summing its contributions in
    /// shard-index order. One pass, one allocation — a pairwise merge tree
    /// would copy every untouched row once per level. The shard split is a
    /// pure function of the batch size, so the result never depends on
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or gradient widths disagree.
    pub fn merge_many(parts: &[&SparseGradient]) -> SparseGradient {
        assert!(!parts.is_empty(), "need at least one shard gradient");
        let live: Vec<&SparseGradient> = parts
            .iter()
            .copied()
            .filter(|p| !p.rows.is_empty())
            .collect();
        match live.len() {
            0 => return parts[0].clone(),
            1 => return live[0].clone(),
            _ => {}
        }
        let dim = live[0].grads.cols();
        for p in &live {
            assert_eq!(p.grads.cols(), dim, "gradient width mismatch");
        }
        let upper: usize = live.iter().map(|p| p.rows.len()).sum();
        let mut rows = Vec::with_capacity(upper);
        let mut data: Vec<f32> = Vec::with_capacity(upper * dim);
        let mut cursors = vec![0usize; live.len()];
        loop {
            let mut head: Option<u32> = None;
            for (p, &c) in live.iter().zip(&cursors) {
                if let Some(&r) = p.rows.get(c) {
                    head = Some(head.map_or(r, |m| m.min(r)));
                }
            }
            let Some(r) = head else { break };
            rows.push(r);
            let start = data.len();
            data.resize(start + dim, 0.0);
            // detsan: reduction-order — contributing shards summed in
            // shard-index order, fixed by the batch-size-only shard split
            for (p, c) in live.iter().zip(cursors.iter_mut()) {
                if p.rows.get(*c) == Some(&r) {
                    for (d, &v) in data[start..].iter_mut().zip(p.grads.row(*c)) {
                        *d += v;
                    }
                    *c += 1;
                }
            }
        }
        let touched = rows.len();
        SparseGradient {
            rows,
            grads: Matrix::from_vec(touched, dim, data),
        }
    }
}

impl EmbeddingTable {
    /// Creates a table with `hash_size` rows of dimension `dim`, initialized
    /// with small uniform values (scaled down so that pooled sums stay
    /// `O(1)`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(hash_size: usize, dim: usize, seed: u64) -> Self {
        assert!(
            hash_size > 0 && dim > 0,
            "table dimensions must be positive"
        );
        let mut weights = Matrix::xavier(hash_size, dim, seed);
        // Xavier's fan-in here is the huge hash_size; rescale to a magnitude
        // appropriate for sum pooling of a handful of rows.
        let scale = (hash_size as f32 / dim as f32).sqrt() * 0.1;
        for w in weights.as_mut_slice() {
            *w *= scale;
        }
        Self {
            weights,
            state: None,
        }
    }

    /// Number of rows (the hash size).
    pub fn hash_size(&self) -> usize {
        self.weights.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weights.cols()
    }

    /// The raw weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Parameter count.
    pub fn parameter_count(&self) -> usize {
        self.weights.rows() * self.weights.cols()
    }

    /// Sum-pools the rows activated by each example: output is
    /// `batch_size × dim`. Examples with no activations pool to zero.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn forward(&self, batch: &SparseBatch) -> Matrix {
        let _prof = prof::scope(
            Op::EmbGather,
            Counters::embedding_forward(batch.indices().len(), batch.batch_size(), self.dim()),
        );
        let mut out = Matrix::zeros(batch.batch_size(), self.dim());
        for (i, idxs) in batch.iter().enumerate() {
            let row = out.row_mut(i);
            // Fused gather+pool: two table rows combine into the bag per
            // pass, halving loads/stores of the output row versus one
            // row-at-a-time accumulation.
            // detsan: reduction-order — index pairs in bag order, fixed by
            // the batch contents alone
            let mut pairs = idxs.chunks_exact(2);
            for p in &mut pairs {
                let s0 = self.weights.row(p[0] as usize);
                let s1 = self.weights.row(p[1] as usize);
                for (o, (&v0, &v1)) in row.iter_mut().zip(s0.iter().zip(s1)) {
                    *o += v0 + v1;
                }
            }
            if let [idx] = pairs.remainder() {
                let src = self.weights.row(*idx as usize);
                for (o, &v) in row.iter_mut().zip(src) {
                    *o += v;
                }
            }
        }
        out
    }

    /// Reference sum-pool gather: one table row accumulated at a time in
    /// strict bag order. Retained off the hot path as the proptest baseline
    /// for the fused [`EmbeddingTable::forward`]
    /// (`crates/model/tests/kernel_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn forward_reference(&self, batch: &SparseBatch) -> Matrix {
        let mut out = Matrix::zeros(batch.batch_size(), self.dim());
        for (i, idxs) in batch.iter().enumerate() {
            let row = out.row_mut(i);
            for &idx in idxs {
                let src = self.weights.row(idx as usize);
                for (o, &v) in row.iter_mut().zip(src) {
                    *o += v;
                }
            }
        }
        out
    }

    /// Backward: scatter the upstream pooled gradient `dy: batch_size × dim`
    /// back to the activated rows, coalescing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `dy`'s shape does not match the batch and dimension.
    pub fn backward(&self, batch: &SparseBatch, dy: &Matrix) -> SparseGradient {
        assert_eq!(dy.rows(), batch.batch_size(), "batch size mismatch");
        assert_eq!(dy.cols(), self.dim(), "gradient width mismatch");
        let mut _prof = prof::scope(Op::EmbScatter, Counters::none());
        let mut rows: Vec<u32> = batch.indices().to_vec();
        rows.sort_unstable();
        rows.dedup();
        // The coalesced-row count is only known after dedup.
        _prof.set_counters(Counters::embedding_backward(
            batch.indices().len(),
            rows.len(),
            self.dim(),
        ));
        // Coalesced scatter: every lookup's destination slot is resolved
        // once up front (one binary search per lookup, in stream order),
        // then the accumulation loop runs branch-free over contiguous rows
        // with no per-example copies of the upstream gradient. (A stable
        // counting-sort bucketing by destination row was measured slower
        // here: at embedding dims this small the extra index traffic costs
        // more than the destination-row locality it buys.)
        let positions: Vec<u32> = batch
            .indices()
            .iter()
            .map(|idx| match rows.binary_search(idx) {
                Ok(p) => p as u32,
                // `rows` holds every batch index by construction.
                Err(_) => unreachable!("index missing from coalesced rows"),
            })
            .collect();
        let mut grads = Matrix::zeros(rows.len().max(1), self.dim());
        let mut cursor = 0usize;
        // detsan: reduction-order — lookups scattered in stream order,
        // identical to the reference scatter (byte-for-byte)
        for (i, idxs) in batch.iter().enumerate() {
            let dy_row = dy.row(i);
            for &p in &positions[cursor..cursor + idxs.len()] {
                let dst = grads.row_mut(p as usize);
                for (d, &v) in dst.iter_mut().zip(dy_row) {
                    *d += v;
                }
            }
            cursor += idxs.len();
        }
        if rows.is_empty() {
            // Degenerate batch with no activations: empty gradient.
            return SparseGradient {
                rows,
                grads: Matrix::zeros(1, self.dim()),
            };
        }
        SparseGradient { rows, grads }
    }

    /// Reference scatter: per-lookup binary search with a copied upstream
    /// row, exactly the pre-optimization kernel. The coalesced
    /// [`EmbeddingTable::backward`] is property-tested byte-identical to
    /// this (`crates/model/tests/kernel_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `dy`'s shape does not match the batch and dimension.
    pub fn backward_reference(&self, batch: &SparseBatch, dy: &Matrix) -> SparseGradient {
        assert_eq!(dy.rows(), batch.batch_size(), "batch size mismatch");
        assert_eq!(dy.cols(), self.dim(), "gradient width mismatch");
        let mut rows: Vec<u32> = batch.indices().to_vec();
        rows.sort_unstable();
        rows.dedup();
        let pos = |idx: u32| rows.binary_search(&idx).expect("present by construction");
        let mut grads = Matrix::zeros(rows.len().max(1), self.dim());
        for (i, idxs) in batch.iter().enumerate() {
            let g = dy.row(i).to_vec();
            for &idx in idxs {
                let dst = grads.row_mut(pos(idx));
                for (d, &v) in dst.iter_mut().zip(&g) {
                    *d += v;
                }
            }
        }
        if rows.is_empty() {
            return SparseGradient {
                rows,
                grads: Matrix::zeros(1, self.dim()),
            };
        }
        SparseGradient { rows, grads }
    }

    /// Applies a sparse gradient.
    pub fn apply(&mut self, grad: &SparseGradient, optimizer: &mut Optimizer) {
        if grad.rows.is_empty() {
            return;
        }
        let _prof = prof::scope(
            Op::OptSparse,
            optimizer.step_counters(grad.rows.len(), self.dim()),
        );
        optimizer.update_rows(&mut self.weights, &grad.rows, &grad.grads, &mut self.state);
    }

    /// Elastic-averaging pull toward another replica, restricted to `rows`
    /// (pulling 20M-row tables densely would defeat sparse training).
    ///
    /// # Panics
    ///
    /// Panics if the tables' shapes differ or a row is out of range.
    pub fn pull_rows_toward(&mut self, other: &EmbeddingTable, rows: &[u32], alpha: f32) {
        assert_eq!(self.weights.rows(), other.weights.rows(), "shape mismatch");
        assert_eq!(self.weights.cols(), other.weights.cols(), "shape mismatch");
        for &r in rows {
            let o = other.weights.row(r as usize).to_vec();
            let dst = self.weights.row_mut(r as usize);
            for (d, &ov) in dst.iter_mut().zip(&o) {
                *d += alpha * (ov - *d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_pools_by_sum() {
        let table = EmbeddingTable::new(10, 4, 3);
        let batch = SparseBatch::new(vec![0, 2], vec![1, 1]); // row 1 twice
        let pooled = table.forward(&batch);
        let row1 = table.weights().row(1);
        for (p, &w) in pooled.row(0).iter().zip(row1) {
            assert!((p - 2.0 * w).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_example_pools_to_zero() {
        let table = EmbeddingTable::new(10, 4, 3);
        let batch = SparseBatch::new(vec![0, 0, 1], vec![2]);
        let pooled = table.forward(&batch);
        assert!(pooled.row(0).iter().all(|&v| v == 0.0));
        assert!(pooled.row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn backward_coalesces_duplicates() {
        let table = EmbeddingTable::new(10, 2, 1);
        // Examples 0 and 1 both touch row 5; example 0 also touches 3.
        let batch = SparseBatch::new(vec![0, 2, 3], vec![5, 3, 5]);
        let dy = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let g = table.backward(&batch, &dy);
        assert_eq!(g.rows(), &[3, 5]);
        assert_eq!(g.grads().row(0), &[1.0, 0.0]); // row 3 from example 0
        assert_eq!(g.grads().row(1), &[1.0, 1.0]); // row 5 from both
    }

    #[test]
    fn gradient_check() {
        let table = EmbeddingTable::new(6, 3, 7);
        let batch = SparseBatch::new(vec![0, 2, 3], vec![0, 4, 2]);
        let dy = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]]);
        let g = table.backward(&batch, &dy);
        // L = sum(forward); dL/dW[r] = (times row r appears) * 1.
        for (i, &r) in g.rows().iter().enumerate() {
            let count = batch.indices().iter().filter(|&&x| x == r).count() as f32;
            for &v in g.grads().row(i) {
                assert!((v - count).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn apply_moves_only_touched_rows() {
        let mut table = EmbeddingTable::new(8, 2, 9);
        let before = table.weights().clone();
        let batch = SparseBatch::new(vec![0, 1], vec![6]);
        let dy = Matrix::from_rows(&[&[1.0, 1.0]]);
        let g = table.backward(&batch, &dy);
        let mut opt = Optimizer::sgd(0.5);
        table.apply(&g, &mut opt);
        for r in 0..8 {
            if r == 6 {
                assert_ne!(table.weights().row(r), before.row(r));
            } else {
                assert_eq!(table.weights().row(r), before.row(r));
            }
        }
    }

    #[test]
    fn pull_rows_toward_is_partial() {
        let mut a = EmbeddingTable::new(5, 2, 1);
        let b = EmbeddingTable::new(5, 2, 2);
        let a0 = a.weights().row(0).to_vec();
        a.pull_rows_toward(&b, &[1], 1.0);
        assert_eq!(a.weights().row(0), a0.as_slice(), "row 0 untouched");
        assert_eq!(a.weights().row(1), b.weights().row(1), "row 1 snapped");
    }

    #[test]
    fn init_magnitude_is_moderate() {
        let table = EmbeddingTable::new(100_000, 16, 5);
        let max = table
            .weights()
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max < 0.5, "init values stay small: {max}");
        assert!(max > 1e-4, "but not degenerate: {max}");
    }
}
