//! A minimal row-major `f32` matrix with the GEMM variants backpropagation
//! needs.
//!
//! This is deliberately not a general tensor library: DLRM training needs
//! exactly `C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`, elementwise maps, and row
//! reductions. Keeping the surface small keeps every kernel obviously
//! correct and testable against finite differences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Rows of the shared dimension consumed per pass by the unrolled GEMM
/// microkernels. Four rank-1 updates share one load/store of the output
/// row, and the combined inner loop is branch-free so the autovectorizer
/// turns it into packed FMAs.
const K_UNROLL: usize = 4;

/// Independent accumulators in the vectorized dot product. Eight running
/// sums break the loop-carried dependence of a sequential reduction, which
/// is what lets the compiler keep a full SIMD register of partial sums.
const DOT_LANES: usize = 8;

/// Vectorized dot product: [`DOT_LANES`] independent accumulators folded in
/// a fixed pairwise tree, with the sub-lane remainder summed sequentially
/// and added last. The summation order is a pure function of the slice
/// length — never of thread count — so results are deterministic at any
/// pool width (the order differs from a strict sequential sum, which is the
/// documented tolerance in the kernel-equivalence proptests).
///
/// # Panics
///
/// Panics if the slices have different lengths.
// detsan: reduction-order — fixed 8-lane pairwise fold + sequential tail
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut lanes = [0.0f32; DOT_LANES];
    let mut ac = a.chunks_exact(DOT_LANES);
    let mut bc = b.chunks_exact(DOT_LANES);
    for (av, bv) in (&mut ac).zip(&mut bc) {
        for l in 0..DOT_LANES {
            lanes[l] += av[l] * bv[l];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    let s01 = lanes[0] + lanes[1];
    let s23 = lanes[2] + lanes[3];
    let s45 = lanes[4] + lanes[5];
    let s67 = lanes[6] + lanes[7];
    ((s01 + s23) + (s45 + s67)) + tail
}

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use recsim_model::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(0, 0), 19.0);
/// assert_eq!(c.get(1, 1), 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Xavier/Glorot-uniform initialization for a layer with the given
    /// fan-in/fan-out, seeded deterministically.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other`.
    ///
    /// i-k-j loop order with the `k` dimension unrolled by [`K_UNROLL`]:
    /// four rows of `B` are combined into the output row per pass through a
    /// branch-free inner loop (no data-dependent zero-skip), which the
    /// autovectorizer turns into packed multiply-adds. Per output element
    /// the `k` terms accumulate in groups of four left-to-right — an order
    /// fixed by the shapes alone, so results are identical at any thread
    /// count (see [`Matrix::matmul_naive`] for the sequential reference).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut k = 0;
            // detsan: reduction-order — k-groups of 4 combined left-to-right,
            // fixed by shape, never thread-count-dependent
            while k + K_UNROLL <= self.cols {
                let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
                let b0 = &other.data[k * n..(k + 1) * n];
                let b1 = &other.data[(k + 1) * n..(k + 2) * n];
                let b2 = &other.data[(k + 2) * n..(k + 3) * n];
                let b3 = &other.data[(k + 3) * n..(k + 4) * n];
                let bs = b0.iter().zip(b1.iter().zip(b2.iter().zip(b3)));
                for (o, (&v0, (&v1, (&v2, &v3)))) in out_row.iter_mut().zip(bs) {
                    *o += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
                }
                k += K_UNROLL;
            }
            while k < self.cols {
                let a = a_row[k];
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
                k += 1;
            }
        }
        out
    }

    /// Reference `self · other`: the textbook triple loop with strictly
    /// sequential accumulation over `k`. Retained off the hot path as the
    /// semantic baseline the unrolled [`Matrix::matmul`] is property-tested
    /// against (`crates/model/tests/kernel_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.get(i, k) * other.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// `self · otherᵀ`.
    ///
    /// Each output element is an inner product of two contiguous rows,
    /// computed by the multi-accumulator [`dot`] kernel (fixed pairwise
    /// lane fold; order depends only on the row length).
    ///
    /// # Panics
    ///
    /// Panics if column counts disagree.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed dimension mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, other.row(j));
            }
        }
        out
    }

    /// Reference `self · otherᵀ` with strictly sequential dot products,
    /// retained as the proptest baseline for [`Matrix::matmul_transposed`].
    ///
    /// # Panics
    ///
    /// Panics if column counts disagree.
    pub fn matmul_transposed_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed dimension mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// `selfᵀ · other`.
    ///
    /// The shared (batch) dimension is unrolled by [`K_UNROLL`]: four rows
    /// of `other` are scattered into each output row per pass through a
    /// branch-free combined inner loop. Like [`Matrix::matmul`], the
    /// accumulation order is fixed by the shapes alone.
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul dimension mismatch"
        );
        let m = self.cols;
        let n = other.cols;
        let mut out = Matrix::zeros(m, n);
        let mut k = 0;
        // detsan: reduction-order — k-groups of 4 combined left-to-right,
        // fixed by shape, never thread-count-dependent
        while k + K_UNROLL <= self.rows {
            let (a0, a1, a2, a3) = (
                self.row(k),
                self.row(k + 1),
                self.row(k + 2),
                self.row(k + 3),
            );
            let (b0, b1, b2, b3) = (
                other.row(k),
                other.row(k + 1),
                other.row(k + 2),
                other.row(k + 3),
            );
            for i in 0..m {
                let (c0, c1, c2, c3) = (a0[i], a1[i], a2[i], a3[i]);
                let out_row = &mut out.data[i * n..(i + 1) * n];
                let bs = b0.iter().zip(b1.iter().zip(b2.iter().zip(b3)));
                for (o, (&v0, (&v1, (&v2, &v3)))) in out_row.iter_mut().zip(bs) {
                    *o += c0 * v0 + c1 * v1 + c2 * v2 + c3 * v3;
                }
            }
            k += K_UNROLL;
        }
        while k < self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
            k += 1;
        }
        out
    }

    /// Reference `selfᵀ · other` accumulating strictly sequentially over
    /// the shared dimension, retained as the proptest baseline for
    /// [`Matrix::transposed_matmul`].
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    pub fn transposed_matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul dimension mismatch"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise product (Hadamard) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Sum over rows, producing a length-`cols` vector (bias gradients).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Splits off the first `left_cols` columns, returning `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `left_cols` is zero or >= `cols`.
    pub fn hsplit(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(
            left_cols > 0 && left_cols < self.cols,
            "split point must be interior"
        );
        let right_cols = self.cols - left_cols;
        let mut left = Vec::with_capacity(self.rows * left_cols);
        let mut right = Vec::with_capacity(self.rows * right_cols);
        for r in 0..self.rows {
            let row = self.row(r);
            left.extend_from_slice(&row[..left_cols]);
            right.extend_from_slice(&row[left_cols..]);
        }
        (
            Matrix::from_vec(self.rows, left_cols, left),
            Matrix::from_vec(self.rows, right_cols, right),
        )
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Fills with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(&x, &y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(approx(&a.matmul(&i), &a, 0.0));
        assert!(approx(&i.matmul(&a), &a, 0.0));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]); // 1x3
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]); // 3x1
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (1, 1));
        assert_eq!(c.get(0, 0), 14.0);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Matrix::xavier(4, 3, 1);
        let b = Matrix::xavier(5, 3, 2);
        assert!(approx(
            &a.matmul_transposed(&b),
            &a.matmul(&b.transposed()),
            1e-6
        ));
        let c = Matrix::xavier(4, 6, 3);
        assert!(approx(
            &a.transposed_matmul(&c),
            &a.transposed().matmul(&c),
            1e-6
        ));
    }

    #[test]
    fn unrolled_kernels_match_naive_references() {
        // Shapes straddle the unroll/lane boundaries (K_UNROLL=4, DOT_LANES=8)
        // including ragged remainders; the proptests in
        // tests/kernel_equivalence.rs cover random shapes.
        for (r, k, c) in [(1, 1, 1), (3, 5, 7), (4, 8, 2), (6, 17, 9), (2, 32, 3)] {
            let a = Matrix::xavier(r, k, 11);
            let b = Matrix::xavier(k, c, 12);
            assert!(approx(&a.matmul(&b), &a.matmul_naive(&b), 1e-5));
            let bt = Matrix::xavier(c, k, 13);
            assert!(approx(
                &a.matmul_transposed(&bt),
                &a.matmul_transposed_naive(&bt),
                1e-5
            ));
            let o = Matrix::xavier(r, c, 14);
            assert!(approx(
                &a.transposed_matmul(&o),
                &a.transposed_matmul_naive(&o),
                1e-5
            ));
        }
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::xavier(3, 7, 9);
        assert!(approx(&a.transposed().transposed(), &a, 0.0));
    }

    #[test]
    fn hcat_hsplit_roundtrip() {
        let a = Matrix::xavier(2, 3, 4);
        let b = Matrix::xavier(2, 5, 5);
        let joined = a.hcat(&b);
        assert_eq!(joined.cols(), 8);
        let (l, r) = joined.hsplit(3);
        assert!(approx(&l, &a, 0.0));
        assert!(approx(&r, &b, 0.0));
    }

    #[test]
    fn column_sums_match_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.column_sums(), vec![9.0, 12.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.add_scaled(&b, 0.5);
        a.add_scaled(&b, 0.5);
        assert!(approx(&a, &b, 1e-6));
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let a = Matrix::xavier(10, 10, 42);
        let b = Matrix::xavier(10, 10, 42);
        assert_eq!(a, b);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= limit));
        assert!(a.norm() > 0.0);
    }

    #[test]
    fn map_and_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(|x| x.max(0.0)).as_slice(), &[1.0, 0.0]);
        assert_eq!(a.hadamard(&a).as_slice(), &[1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_checked() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        Matrix::zeros(0, 1);
    }
}
