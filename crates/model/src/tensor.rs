//! A minimal row-major `f32` matrix with the GEMM variants backpropagation
//! needs.
//!
//! This is deliberately not a general tensor library: DLRM training needs
//! exactly `C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`, elementwise maps, and row
//! reductions. Keeping the surface small keeps every kernel obviously
//! correct and testable against finite differences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use recsim_model::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(0, 0), 19.0);
/// assert_eq!(c.get(1, 1), 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Xavier/Glorot-uniform initialization for a layer with the given
    /// fan-in/fan-out, seeded deterministically.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streaming access on both inputs and the output.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if column counts disagree.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed dimension mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
                out.set(i, j, dot);
            }
        }
        out
    }

    /// `selfᵀ · other`.
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul dimension mismatch"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise product (Hadamard) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Sum over rows, producing a length-`cols` vector (bias gradients).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Splits off the first `left_cols` columns, returning `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `left_cols` is zero or >= `cols`.
    pub fn hsplit(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(
            left_cols > 0 && left_cols < self.cols,
            "split point must be interior"
        );
        let right_cols = self.cols - left_cols;
        let mut left = Vec::with_capacity(self.rows * left_cols);
        let mut right = Vec::with_capacity(self.rows * right_cols);
        for r in 0..self.rows {
            let row = self.row(r);
            left.extend_from_slice(&row[..left_cols]);
            right.extend_from_slice(&row[left_cols..]);
        }
        (
            Matrix::from_vec(self.rows, left_cols, left),
            Matrix::from_vec(self.rows, right_cols, right),
        )
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Fills with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(&x, &y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(approx(&a.matmul(&i), &a, 0.0));
        assert!(approx(&i.matmul(&a), &a, 0.0));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]); // 1x3
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]); // 3x1
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (1, 1));
        assert_eq!(c.get(0, 0), 14.0);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Matrix::xavier(4, 3, 1);
        let b = Matrix::xavier(5, 3, 2);
        assert!(approx(
            &a.matmul_transposed(&b),
            &a.matmul(&b.transposed()),
            1e-6
        ));
        let c = Matrix::xavier(4, 6, 3);
        assert!(approx(
            &a.transposed_matmul(&c),
            &a.transposed().matmul(&c),
            1e-6
        ));
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::xavier(3, 7, 9);
        assert!(approx(&a.transposed().transposed(), &a, 0.0));
    }

    #[test]
    fn hcat_hsplit_roundtrip() {
        let a = Matrix::xavier(2, 3, 4);
        let b = Matrix::xavier(2, 5, 5);
        let joined = a.hcat(&b);
        assert_eq!(joined.cols(), 8);
        let (l, r) = joined.hsplit(3);
        assert!(approx(&l, &a, 0.0));
        assert!(approx(&r, &b, 0.0));
    }

    #[test]
    fn column_sums_match_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.column_sums(), vec![9.0, 12.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.add_scaled(&b, 0.5);
        a.add_scaled(&b, 0.5);
        assert!(approx(&a, &b, 1e-6));
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let a = Matrix::xavier(10, 10, 42);
        let b = Matrix::xavier(10, 10, 42);
        assert_eq!(a, b);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= limit));
        assert!(a.norm() > 0.0);
    }

    #[test]
    fn map_and_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(|x| x.max(0.0)).as_slice(), &[1.0, 0.0]);
        assert_eq!(a.hadamard(&a).as_slice(), &[1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_checked() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        Matrix::zeros(0, 1);
    }
}
