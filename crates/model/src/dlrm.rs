//! The assembled DLRM: bottom MLP, embedding bags, interaction, top MLP.

use crate::embedding::{EmbeddingTable, SparseGradient};
use crate::interaction::{InteractionCache, InteractionGradients, InteractionLayer};
use crate::loss::{bce_with_logits, bce_with_logits_scaled};
use crate::mlp::{Mlp, MlpCache, MlpGradients};
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use recsim_data::schema::{Interaction, ModelConfig};
use recsim_data::MiniBatch;
use serde::{Deserialize, Serialize};

/// A full deep learning recommendation model (paper Figure 3).
///
/// Construction follows a [`ModelConfig`]; the final top-MLP layer produces
/// one logit per example. See the crate-level example for end-to-end
/// training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlrmModel {
    config: ModelConfig,
    bottom: Mlp,
    tables: Vec<EmbeddingTable>,
    interaction: InteractionLayer,
    top: Mlp,
}

/// The forward cache of one batch.
#[derive(Debug, Clone)]
pub struct DlrmCache {
    bottom: MlpCache,
    interaction: InteractionCache,
    top: MlpCache,
}

/// All gradients of one backward pass.
#[derive(Debug, Clone)]
pub struct DlrmGradients {
    /// Bottom-MLP gradients.
    pub bottom: MlpGradients,
    /// Per-table sparse gradients, in feature order.
    pub tables: Vec<SparseGradient>,
    /// Interaction gradients (projection, when dot).
    pub interaction: InteractionGradients,
    /// Top-MLP gradients.
    pub top: MlpGradients,
}

impl DlrmGradients {
    /// Folds per-shard gradients into the whole-batch gradient: dense
    /// layers accumulate elementwise into shard 0's set in shard-index
    /// order, and each table's sparse gradients go through one k-way
    /// row-union merge ([`SparseGradient::merge_many`]). The shard split is
    /// a pure function of the batch size, so the folded gradient is
    /// bit-reproducible at any thread count.
    ///
    /// The activation-side interaction blocks (`d_bottom`/`d_embeddings`)
    /// belong to disjoint example ranges and are already consumed inside
    /// [`DlrmModel::backward`]; the fold keeps shard 0's blocks and callers
    /// must not read them afterwards ([`DlrmModel::apply`] only uses the
    /// projection gradients).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the gradient sets disagree in shape.
    pub fn fold(mut parts: Vec<DlrmGradients>) -> DlrmGradients {
        assert!(!parts.is_empty(), "need at least one shard gradient");
        if parts.len() == 1 {
            return parts.remove(0);
        }
        let features = parts[0].tables.len();
        for p in &parts {
            assert_eq!(p.tables.len(), features, "feature count mismatch");
        }
        let tables: Vec<SparseGradient> = (0..features)
            .map(|f| {
                let shards: Vec<&SparseGradient> = parts.iter().map(|p| &p.tables[f]).collect();
                SparseGradient::merge_many(&shards)
            })
            .collect();
        let mut acc = parts.remove(0);
        for p in parts {
            acc.bottom.accumulate(&p.bottom);
            acc.interaction.accumulate(&p.interaction);
            acc.top.accumulate(&p.top);
        }
        acc.tables = tables;
        acc
    }
}

impl DlrmModel {
    /// Builds a model for `config` with deterministic initialization.
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        let bottom = Mlp::new(config.num_dense(), config.bottom_mlp(), true, seed);
        let bottom_out = *config.bottom_mlp().last().expect("non-empty");
        // One table per *distinct* table id: features configured to share a
        // table get the same EmbeddingTable.
        let tables = (0..config.num_tables())
            .map(|t| {
                EmbeddingTable::new(
                    config.table_hash_size(t) as usize,
                    config.embedding_dim(),
                    seed.wrapping_add(1000 + t as u64),
                )
            })
            .collect();
        let interaction = match config.interaction() {
            Interaction::Concat => InteractionLayer::concat(),
            Interaction::DotProduct => {
                InteractionLayer::dot(bottom_out, config.embedding_dim(), seed.wrapping_add(500))
            }
        };
        // Top stack: configured widths, then the final logit layer.
        let mut top_widths = config.top_mlp().to_vec();
        top_widths.push(1);
        let top = Mlp::new(
            config.top_input_dim(),
            &top_widths,
            false,
            seed.wrapping_add(2000),
        );
        Self {
            config: config.clone(),
            bottom,
            tables,
            interaction,
            top,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The distinct embedding tables (shared tables appear once); feature
    /// `f` uses `tables()[config.table_of(f)]`.
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.tables
    }

    /// Total trainable parameter count (MLPs + projection + tables).
    pub fn parameter_count(&self) -> usize {
        self.bottom.parameter_count()
            + self.top.parameter_count()
            + self.interaction.parameter_count()
            + self
                .tables
                .iter()
                .map(EmbeddingTable::parameter_count)
                .sum::<usize>()
    }

    /// Forward pass: returns per-example logits (`B×1`) and the cache.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not match the configuration.
    pub fn forward(&self, batch: &MiniBatch) -> (Matrix, DlrmCache) {
        assert_eq!(
            batch.num_dense(),
            self.config.num_dense(),
            "dense feature count mismatch"
        );
        assert_eq!(
            batch.sparse().len(),
            self.config.num_sparse(),
            "sparse feature count mismatch"
        );
        let dense = Matrix::from_vec(
            batch.batch_size(),
            batch.num_dense(),
            batch.dense().to_vec(),
        );
        let (z0, bottom_cache) = self.bottom.forward(&dense);
        let pooled: Vec<Matrix> = batch
            .sparse()
            .iter()
            .enumerate()
            .map(|(f, sb)| self.tables[self.config.table_of(f)].forward(sb))
            .collect();
        let (top_in, interaction_cache) = self.interaction.forward(&z0, &pooled);
        let (logits, top_cache) = self.top.forward(&top_in);
        (
            logits,
            DlrmCache {
                bottom: bottom_cache,
                interaction: interaction_cache,
                top: top_cache,
            },
        )
    }

    /// Backward pass from the logit gradient.
    pub fn backward(
        &self,
        batch: &MiniBatch,
        cache: &DlrmCache,
        d_logits: &Matrix,
    ) -> DlrmGradients {
        let (top_grads, d_top_in) = self.top.backward(&cache.top, d_logits);
        let interaction_grads = self.interaction.backward(
            &cache.interaction,
            &d_top_in,
            self.config.num_sparse(),
            self.config.embedding_dim(),
        );
        // One gradient per *feature*; shared tables receive several.
        let table_grads: Vec<SparseGradient> = batch
            .sparse()
            .iter()
            .enumerate()
            .zip(&interaction_grads.d_embeddings)
            .map(|((f, sb), d_emb)| self.tables[self.config.table_of(f)].backward(sb, d_emb))
            .collect();
        let (bottom_grads, _d_dense) = self
            .bottom
            .backward(&cache.bottom, &interaction_grads.d_bottom);
        DlrmGradients {
            bottom: bottom_grads,
            tables: table_grads,
            interaction: interaction_grads,
            top: top_grads,
        }
    }

    /// Applies a full gradient set.
    pub fn apply(&mut self, grads: &DlrmGradients, optimizer: &mut Optimizer) {
        self.bottom.apply(&grads.bottom, optimizer);
        for (f, g) in grads.tables.iter().enumerate() {
            self.tables[self.config.table_of(f)].apply(g, optimizer);
        }
        self.interaction.apply(&grads.interaction, optimizer);
        self.top.apply(&grads.top, optimizer);
    }

    /// One training step: forward, BCE loss, backward, apply. Returns the
    /// batch's mean loss.
    pub fn train_step(&mut self, batch: &MiniBatch, optimizer: &mut Optimizer) -> f64 {
        let (logits, cache) = self.forward(batch);
        let (loss, d_logits) = bce_with_logits(&logits, batch.labels());
        let grads = self.backward(batch, &cache, &d_logits);
        self.apply(&grads, optimizer);
        loss
    }

    /// Forward, loss and backward over a batch *shard* without applying:
    /// returns the shard's **summed** BCE loss and gradients whose
    /// per-example term is divided by `normalizer` (the full batch size).
    /// Folding shard gradients via [`DlrmGradients::fold`] then yields the
    /// full-batch mean-loss gradient up to the documented, shape-fixed
    /// summation orders.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not match the configuration or
    /// `normalizer` is zero.
    pub fn forward_backward_scaled(
        &self,
        batch: &MiniBatch,
        normalizer: usize,
    ) -> (f64, DlrmGradients) {
        let (logits, cache) = self.forward(batch);
        let (loss_sum, d_logits) = bce_with_logits_scaled(&logits, batch.labels(), normalizer);
        (loss_sum, self.backward(batch, &cache, &d_logits))
    }

    /// Evaluates mean BCE loss on a batch without updating parameters.
    pub fn evaluate(&self, batch: &MiniBatch) -> f64 {
        let (logits, _) = self.forward(batch);
        bce_with_logits(&logits, batch.labels()).0
    }

    /// Evaluates the **summed** BCE loss of a batch shard (no averaging),
    /// for shard-parallel evaluation: shard sums divide by the total
    /// example count after a fixed serial fold.
    pub fn evaluate_sum(&self, batch: &MiniBatch) -> f64 {
        let (logits, _) = self.forward(batch);
        bce_with_logits_scaled(&logits, batch.labels(), batch.batch_size()).0
    }

    /// Elastic-averaging pull toward a center replica: dense parameters move
    /// fully; embedding tables move only on `touched_rows` per *distinct*
    /// table (pass the rows the worker updated since the last sync).
    ///
    /// # Panics
    ///
    /// Panics if architectures differ or `touched_rows` has the wrong
    /// length.
    pub fn pull_toward(&mut self, center: &DlrmModel, alpha: f32, touched_rows: &[Vec<u32>]) {
        assert_eq!(
            touched_rows.len(),
            self.tables.len(),
            "row set count mismatch"
        );
        self.bottom.pull_toward(&center.bottom, alpha);
        self.top.pull_toward(&center.top, alpha);
        self.interaction.pull_toward(&center.interaction, alpha);
        for ((t, c), rows) in self.tables.iter_mut().zip(&center.tables).zip(touched_rows) {
            t.pull_rows_toward(c, rows, alpha);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_data::CtrGenerator;

    fn config() -> ModelConfig {
        ModelConfig::test_suite(8, 3, 50, &[16, 8])
    }

    #[test]
    fn forward_produces_one_logit_per_example() {
        let cfg = config();
        let model = DlrmModel::new(&cfg, 1);
        let mut gen = CtrGenerator::new(&cfg, 2);
        let batch = gen.next_batch(17);
        let (logits, _) = model.forward(&batch);
        assert_eq!((logits.rows(), logits.cols()), (17, 1));
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn construction_is_deterministic() {
        let cfg = config();
        assert_eq!(DlrmModel::new(&cfg, 5), DlrmModel::new(&cfg, 5));
    }

    #[test]
    fn training_reduces_loss_sgd() {
        let cfg = config();
        let mut model = DlrmModel::new(&cfg, 1);
        let mut gen = CtrGenerator::new(&cfg, 3);
        let mut opt = Optimizer::sgd(0.1);
        let eval = gen.next_batch(256);
        let before = model.evaluate(&eval);
        for _ in 0..100 {
            let b = gen.next_batch(64);
            model.train_step(&b, &mut opt);
        }
        let after = model.evaluate(&eval);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn training_reduces_loss_adagrad() {
        let cfg = config();
        let mut model = DlrmModel::new(&cfg, 1);
        let mut gen = CtrGenerator::new(&cfg, 4);
        let mut opt = Optimizer::adagrad(0.05);
        let eval = gen.next_batch(256);
        let before = model.evaluate(&eval);
        for _ in 0..100 {
            let b = gen.next_batch(64);
            model.train_step(&b, &mut opt);
        }
        let after = model.evaluate(&eval);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn concat_interaction_also_trains() {
        let cfg = ModelConfig::new(
            "concat-test",
            8,
            vec![recsim_data::SparseFeatureSpec::new("f", 50, 3.0); 2],
            8,
            vec![16],
            vec![8],
            Interaction::Concat,
            8,
        );
        let mut model = DlrmModel::new(&cfg, 1);
        let mut gen = CtrGenerator::new(&cfg, 5);
        let mut opt = Optimizer::sgd(0.1);
        let eval = gen.next_batch(256);
        let before = model.evaluate(&eval);
        for _ in 0..100 {
            let b = gen.next_batch(64);
            model.train_step(&b, &mut opt);
        }
        assert!(model.evaluate(&eval) < before);
    }

    #[test]
    fn full_model_gradient_check_on_logit_loss() {
        // End-to-end finite-difference check through every component: poke
        // one bottom weight, one table row, and verify the analytic
        // gradients match d(sum logits)/d(param).
        let cfg = ModelConfig::test_suite(4, 2, 10, &[6]);
        let model = DlrmModel::new(&cfg, 7);
        let mut gen = CtrGenerator::new(&cfg, 8);
        let batch = gen.next_batch(3);
        let (logits, cache) = model.forward(&batch);
        let ones = Matrix::from_vec(logits.rows(), 1, vec![1.0 / 3.0; logits.rows()]);
        // Use the BCE gradient path shape: just take d_logits = ones/3.
        let grads = model.backward(&batch, &cache, &ones);

        // Finite difference on a table row that the batch actually touched.
        let touched = grads.tables[0].rows().first().copied();
        if let Some(row) = touched {
            // Small eps: hot rows recur ~20x per bag here (Zipf skew into a
            // tiny hash space), so a large poke moves the pooled embedding
            // far enough to cross ReLU kinks and invalidate the FD.
            let eps = 1e-3f32;
            let poke = |delta: f32| -> f64 {
                let mut m = model.clone();
                let mut g = Matrix::zeros(1, cfg.embedding_dim());
                g.set(0, 0, -delta); // SGD with lr 1: w -= g => w += delta
                let sg =
                    m.tables[0].backward(&recsim_data::SparseBatch::new(vec![0, 1], vec![row]), &g);
                let mut opt = Optimizer::sgd(1.0);
                m.tables[0].apply(&sg, &mut opt);
                let (l, _) = m.forward(&batch);
                l.as_slice().iter().map(|&v| v as f64).sum::<f64>() / 3.0
            };
            let fd = (poke(eps) - poke(-eps)) / (2.0 * eps as f64);
            let analytic = grads.tables[0].grads().get(
                grads.tables[0]
                    .rows()
                    .iter()
                    .position(|&r| r == row)
                    .unwrap(),
                0,
            ) as f64;
            assert!(
                (fd - analytic).abs() < 0.05 * analytic.abs().max(0.1),
                "table grad: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn shared_tables_are_built_once_and_trained_by_all_features() {
        let base = ModelConfig::test_suite(8, 4, 50, &[16]);
        let shared = base.with_shared_tables(&[vec![0, 1]]);
        assert_eq!(shared.num_tables(), 3);
        let model = DlrmModel::new(&shared, 1);
        assert_eq!(model.tables().len(), 3);
        // Parameter count shrinks by one 50x32 table versus the unshared
        // model.
        let unshared = DlrmModel::new(&base, 1);
        assert_eq!(
            unshared.parameter_count() - model.parameter_count(),
            50 * 32
        );
        // Training still works and reduces loss.
        let mut model = model;
        let mut gen = CtrGenerator::new(&shared, 2);
        let mut opt = Optimizer::sgd(0.1);
        let eval = gen.next_batch(256);
        let before = model.evaluate(&eval);
        for _ in 0..60 {
            let b = gen.next_batch(64);
            model.train_step(&b, &mut opt);
        }
        assert!(model.evaluate(&eval) < before);
    }

    #[test]
    fn row_wise_adagrad_trains_the_model() {
        let cfg = config();
        let mut model = DlrmModel::new(&cfg, 1);
        let mut gen = CtrGenerator::new(&cfg, 9);
        let mut opt = Optimizer::row_wise_adagrad(0.05);
        let eval = gen.next_batch(256);
        let before = model.evaluate(&eval);
        for _ in 0..100 {
            let b = gen.next_batch(64);
            model.train_step(&b, &mut opt);
        }
        let after = model.evaluate(&eval);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn parameter_count_matches_config_arithmetic() {
        let cfg = config();
        let model = DlrmModel::new(&cfg, 1);
        let table_params: usize = cfg
            .sparse_features()
            .iter()
            .map(|f| f.hash_size() as usize * cfg.embedding_dim())
            .sum();
        assert!(model.parameter_count() > table_params);
        // MLP bytes from the config helper agree with the built model's
        // dense parameter count (weights + biases).
        let dense_params =
            model.parameter_count() - table_params - model.interaction.parameter_count();
        assert_eq!(dense_params as u64 * 4, cfg.mlp_parameter_bytes(),);
    }

    #[test]
    fn pull_toward_moves_dense_params() {
        let cfg = config();
        let mut a = DlrmModel::new(&cfg, 1);
        let b = DlrmModel::new(&cfg, 2);
        let rows = vec![Vec::new(); cfg.num_sparse()];
        for _ in 0..100 {
            a.pull_toward(&b, 0.2, &rows);
        }
        let wa = a.bottom.layers()[0].weight();
        let wb = b.bottom.layers()[0].weight();
        let diff: f32 = wa
            .as_slice()
            .iter()
            .zip(wb.as_slice())
            .map(|(&x, &y)| (x - y).abs())
            .sum();
        assert!(diff < 1e-3);
    }
}
