//! ReLU multi-layer perceptron stacks.

use crate::linear::{Linear, LinearGradients};
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// An MLP: a chain of [`Linear`] layers with ReLU after every layer except,
/// optionally, the last (the top stack ends in a raw logit).
///
/// # Example
///
/// ```
/// use recsim_model::mlp::Mlp;
/// use recsim_model::Matrix;
///
/// let mlp = Mlp::new(8, &[16, 4], true, 3);
/// let x = Matrix::zeros(2, 8);
/// let (y, _cache) = mlp.forward(&x);
/// assert_eq!((y.rows(), y.cols()), (2, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    relu_last: bool,
}

/// Forward activations retained for the backward pass: `values[i]` is the
/// input to layer `i` and `values[i + 1]` its post-activation output, so
/// one chain of `layers + 1` matrices serves both roles without the
/// duplicate clones a separate inputs/activations split would keep.
#[derive(Debug, Clone)]
pub struct MlpCache {
    values: Vec<Matrix>,
}

/// Gradients for every layer of an [`Mlp`], outermost first.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGradients {
    /// Per-layer parameter gradients, in layer order.
    pub layers: Vec<LinearGradients>,
}

impl MlpGradients {
    /// Adds another shard's gradients in place, layer by layer.
    ///
    /// # Panics
    ///
    /// Panics if layer counts or shapes disagree.
    pub fn accumulate(&mut self, other: &MlpGradients) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "layer count mismatch"
        );
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.accumulate(b);
        }
    }
}

impl Mlp {
    /// Creates an MLP mapping `input_dim` through the given `widths`.
    ///
    /// `relu_last` controls whether the final layer is followed by a ReLU
    /// (true for the bottom stack, false when the stack ends in a logit).
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or contains zero.
    pub fn new(input_dim: usize, widths: &[usize], relu_last: bool, seed: u64) -> Self {
        assert!(!widths.is_empty(), "MLP needs at least one layer");
        let mut layers = Vec::with_capacity(widths.len());
        let mut prev = input_dim;
        for (i, &w) in widths.iter().enumerate() {
            layers.push(Linear::new(prev, w, seed.wrapping_add(i as u64 * 7919)));
            prev = w;
        }
        Self { layers, relu_last }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    /// The layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Total parameter count.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Linear::parameter_count).sum()
    }

    /// Forward pass; returns the output and the cache for backprop.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let mut values = Vec::with_capacity(self.layers.len() + 1);
        values.push(x.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            // `values[i]` is layer `i`'s input, pushed by the previous turn.
            let mut y = layer.forward(&values[i]);
            let is_last = i + 1 == self.layers.len();
            if !is_last || self.relu_last {
                // In-place branch-free ReLU on the freshly produced matrix.
                for v in y.as_mut_slice() {
                    *v = v.max(0.0);
                }
            }
            values.push(y);
        }
        let out = values[self.layers.len()].clone();
        (out, MlpCache { values })
    }

    /// Backward pass from upstream gradient `dy`; returns per-layer
    /// gradients and `dx`.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not match this MLP.
    pub fn backward(&self, cache: &MlpCache, dy: &Matrix) -> (MlpGradients, Matrix) {
        assert_eq!(cache.values.len(), self.layers.len() + 1, "stale cache");
        // Collected outermost-last while walking the stack in reverse, then
        // flipped into layer order once.
        let mut grads = Vec::with_capacity(self.layers.len());
        let mut upstream = dy.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let is_last = i + 1 == self.layers.len();
            if !is_last || self.relu_last {
                // Gate by this layer's ReLU mask, fused in place: one pass
                // multiplying by {0, 1} instead of materializing a mask
                // matrix and a Hadamard product.
                for (u, &a) in upstream
                    .as_mut_slice()
                    .iter_mut()
                    .zip(cache.values[i + 1].as_slice())
                {
                    *u *= if a > 0.0 { 1.0 } else { 0.0 };
                }
            }
            let (g, dx) = layer.backward(&cache.values[i], &upstream);
            grads.push(g);
            upstream = dx;
        }
        grads.reverse();
        (MlpGradients { layers: grads }, upstream)
    }

    /// Applies per-layer gradients.
    ///
    /// # Panics
    ///
    /// Panics if the gradient count does not match the layer count.
    pub fn apply(&mut self, grads: &MlpGradients, optimizer: &mut Optimizer) {
        assert_eq!(grads.layers.len(), self.layers.len(), "gradient mismatch");
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            layer.apply(g, optimizer);
        }
    }

    /// Elastic-averaging pull toward another replica (see
    /// [`Linear::pull_toward`]).
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn pull_toward(&mut self, other: &Mlp, alpha: f32) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.pull_toward(b, alpha);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_chain() {
        let mlp = Mlp::new(4, &[8, 8, 2], false, 1);
        let x = Matrix::xavier(3, 4, 2);
        let (y, cache) = mlp.forward(&x);
        assert_eq!((y.rows(), y.cols()), (3, 2));
        assert_eq!(cache.values.len(), 4);
    }

    #[test]
    fn relu_last_controls_nonnegativity() {
        let x = Matrix::xavier(16, 4, 3);
        let (y_relu, _) = Mlp::new(4, &[8], true, 9).forward(&x);
        assert!(y_relu.as_slice().iter().all(|&v| v >= 0.0));
        let (y_raw, _) = Mlp::new(4, &[8], false, 9).forward(&x);
        assert!(y_raw.as_slice().iter().any(|&v| v < 0.0));
    }

    #[test]
    fn gradient_check_through_two_layers() {
        let mut mlp = Mlp::new(3, &[4, 1], false, 11);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.8], &[-0.1, 0.5, 0.3]]);
        let (y, cache) = mlp.forward(&x);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let (grads, dx) = mlp.backward(&cache, &dy);
        let loss = |m: &Mlp| -> f32 { m.forward(&x).0.as_slice().iter().sum() };
        let eps = 1e-3f32;

        // Check a few weight coordinates in each layer.
        for li in 0..2 {
            for (i, j) in [(0, 0), (1, 0), (2, 0)] {
                if j >= mlp.layers[li].output_dim() || i >= mlp.layers[li].input_dim() {
                    continue;
                }
                let orig = mlp.layers[li].weight().get(i, j);
                set_weight(&mut mlp, li, i, j, orig + eps);
                let up = loss(&mlp);
                set_weight(&mut mlp, li, i, j, orig - eps);
                let down = loss(&mlp);
                set_weight(&mut mlp, li, i, j, orig);
                let fd = (up - down) / (2.0 * eps);
                let analytic = grads.layers[li].weight.get(i, j);
                assert!(
                    (fd - analytic).abs() < 2e-2,
                    "layer {li} dW[{i}{j}]: fd {fd} vs {analytic}"
                );
            }
        }

        // And input gradients.
        for j in 0..3 {
            let mut xp = x.clone();
            xp.set(0, j, x.get(0, j) + eps);
            let mut xm = x.clone();
            xm.set(0, j, x.get(0, j) - eps);
            let fd = (mlp.forward(&xp).0.as_slice().iter().sum::<f32>()
                - mlp.forward(&xm).0.as_slice().iter().sum::<f32>())
                / (2.0 * eps);
            assert!((fd - dx.get(0, j)).abs() < 2e-2);
        }
    }

    fn set_weight(mlp: &mut Mlp, layer: usize, i: usize, j: usize, v: f32) {
        // Test-only access through a rebuild: Linear has no public setter,
        // so poke through a gradient-sized SGD step.
        let cur = mlp.layers[layer].weight().get(i, j);
        let mut g = Matrix::zeros(
            mlp.layers[layer].input_dim(),
            mlp.layers[layer].output_dim(),
        );
        g.set(i, j, cur - v); // p -= lr*g with lr=1 => p = v
        let grads = LinearGradients {
            weight: g,
            bias: vec![0.0; mlp.layers[layer].output_dim()],
        };
        let mut sgd = Optimizer::sgd(1.0);
        mlp.layers[layer].apply(&grads, &mut sgd);
    }

    #[test]
    fn apply_reduces_simple_loss() {
        let mut mlp = Mlp::new(2, &[4, 1], false, 21);
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        let mut opt = Optimizer::sgd(0.1);
        let mut losses = Vec::new();
        for _ in 0..50 {
            let (y, cache) = mlp.forward(&x);
            // L = 0.5 * (y - 3)^2
            let err = y.get(0, 0) - 3.0;
            losses.push(0.5 * err * err);
            let dy = Matrix::from_vec(1, 1, vec![err]);
            let (grads, _) = mlp.backward(&cache, &dy);
            mlp.apply(&grads, &mut opt);
        }
        assert!(
            losses[49] < losses[0] * 0.01,
            "{} -> {}",
            losses[0],
            losses[49]
        );
    }

    #[test]
    fn parameter_count_sums_layers() {
        let mlp = Mlp::new(3, &[4, 2], false, 1);
        assert_eq!(mlp.parameter_count(), (3 * 4 + 4) + (4 * 2 + 2));
    }
}
