//! Fully connected layers with explicit forward caches.

use crate::optim::Optimizer;
use crate::tensor::Matrix;
use recsim_prof::{self as prof, Counters, Op};
use serde::{Deserialize, Serialize};

/// A fully connected layer `y = x·W + b` with `W: in×out`, `b: out`.
///
/// Backward is explicit: [`Linear::backward`] consumes the cached input and
/// the upstream gradient and produces parameter gradients plus the gradient
/// with respect to the input.
///
/// # Example
///
/// ```
/// use recsim_model::linear::Linear;
/// use recsim_model::Matrix;
///
/// let layer = Linear::new(3, 2, 7);
/// let x = Matrix::zeros(4, 3);
/// let y = layer.forward(&x);
/// assert_eq!((y.rows(), y.cols()), (4, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix, // in x out
    bias: Vec<f32>, // out
    weight_state: Option<Matrix>,
    bias_state: Option<Vec<f32>>,
}

/// Gradients of one [`Linear`] layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGradients {
    /// ∂L/∂W, shaped like the weight.
    pub weight: Matrix,
    /// ∂L/∂b.
    pub bias: Vec<f32>,
}

impl LinearGradients {
    /// Adds another shard's gradients in place, elementwise. The shard fold
    /// accumulates shards in shard-index order, so the sum never depends on
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn accumulate(&mut self, other: &LinearGradients) {
        assert_eq!(self.bias.len(), other.bias.len(), "bias length mismatch");
        // detsan: reduction-order — shards accumulate in shard-index order,
        // elementwise
        self.weight.add_scaled(&other.weight, 1.0);
        for (a, &b) in self.bias.iter_mut().zip(&other.bias) {
            *a += b;
        }
    }
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "dimensions must be positive"
        );
        Self {
            weight: Matrix::xavier(input_dim, output_dim, seed),
            bias: vec![0.0; output_dim],
            weight_state: None,
            bias_state: None,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Number of parameters.
    pub fn parameter_count(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.len()
    }

    /// `y = x·W + b` for a batch `x: B×in`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let _prof = prof::scope(
            Op::LinearFwd,
            Counters::linear_forward(x.rows(), self.input_dim(), self.output_dim()),
        );
        let mut y = x.matmul(&self.weight);
        for r in 0..y.rows() {
            for (v, &b) in y.row_mut(r).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        y
    }

    /// Backward pass: given the forward input `x` and upstream gradient
    /// `dy: B×out`, returns the parameter gradients and `dx: B×in`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> (LinearGradients, Matrix) {
        assert_eq!(x.rows(), dy.rows(), "batch size mismatch");
        assert_eq!(dy.cols(), self.output_dim(), "upstream gradient width");
        let _prof = prof::scope(
            Op::LinearBwd,
            Counters::linear_backward(x.rows(), self.input_dim(), self.output_dim()),
        );
        let grads = LinearGradients {
            weight: x.transposed_matmul(dy),
            bias: dy.column_sums(),
        };
        let dx = dy.matmul_transposed(&self.weight);
        (grads, dx)
    }

    /// Applies gradients with the optimizer (allocating Adagrad state
    /// lazily).
    pub fn apply(&mut self, grads: &LinearGradients, optimizer: &mut Optimizer) {
        let _prof = prof::scope(
            Op::OptDense,
            optimizer
                .step_counters(self.weight.rows(), self.weight.cols())
                .merge(optimizer.step_counters(1, self.bias.len())),
        );
        optimizer.update_matrix(&mut self.weight, &grads.weight, &mut self.weight_state);
        optimizer.update_vector(&mut self.bias, &grads.bias, &mut self.bias_state);
    }

    /// Moves the parameters toward `other` by `alpha` (elastic averaging:
    /// `w += alpha * (other - w)`); used by the EASGD trainer.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn pull_toward(&mut self, other: &Linear, alpha: f32) {
        assert_eq!(self.weight.rows(), other.weight.rows(), "shape mismatch");
        assert_eq!(self.weight.cols(), other.weight.cols(), "shape mismatch");
        for (w, &o) in self
            .weight
            .as_mut_slice()
            .iter_mut()
            .zip(other.weight.as_slice())
        {
            *w += alpha * (o - *w);
        }
        for (b, &o) in self.bias.iter_mut().zip(&other.bias) {
            *b += alpha * (o - *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_bias() {
        let mut layer = Linear::new(2, 2, 1);
        // Overwrite with known values via apply of a crafted "gradient".
        let mut sgd = Optimizer::sgd(1.0);
        let zero_out = LinearGradients {
            weight: layer.weight().clone(),
            bias: vec![-1.0, -2.0],
        };
        layer.apply(&zero_out, &mut sgd); // W -= W => 0; b -= (-1,-2) => (1,2)
        let x = Matrix::from_rows(&[&[5.0, 6.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn backward_shapes() {
        let layer = Linear::new(3, 4, 2);
        let x = Matrix::xavier(5, 3, 3);
        let dy = Matrix::xavier(5, 4, 4);
        let (g, dx) = layer.backward(&x, &dy);
        assert_eq!((g.weight.rows(), g.weight.cols()), (3, 4));
        assert_eq!(g.bias.len(), 4);
        assert_eq!((dx.rows(), dx.cols()), (5, 3));
    }

    #[test]
    fn gradient_check_weight() {
        // Finite-difference check of dL/dW where L = sum(forward(x)).
        let mut layer = Linear::new(2, 2, 5);
        let x = Matrix::from_rows(&[&[0.3, -0.7], &[1.1, 0.4]]);
        let dy = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let (g, _) = layer.backward(&x, &dy);
        let eps = 1e-3f32;
        let loss = |l: &Linear| -> f32 { l.forward(&x).as_slice().iter().sum() };
        for i in 0..2 {
            for j in 0..2 {
                let orig = layer.weight.get(i, j);
                layer.weight.set(i, j, orig + eps);
                let up = loss(&layer);
                layer.weight.set(i, j, orig - eps);
                let down = loss(&layer);
                layer.weight.set(i, j, orig);
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - g.weight.get(i, j)).abs() < 1e-2,
                    "dW[{i}{j}]: fd {fd} vs analytic {}",
                    g.weight.get(i, j)
                );
            }
        }
    }

    #[test]
    fn gradient_check_input() {
        let layer = Linear::new(3, 2, 6);
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.9]]);
        let dy = Matrix::from_rows(&[&[1.0, 1.0]]);
        let (_, dx) = layer.backward(&x, &dy);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut xp = x.clone();
            xp.set(0, j, x.get(0, j) + eps);
            let mut xm = x.clone();
            xm.set(0, j, x.get(0, j) - eps);
            let fd: f32 = (layer.forward(&xp).as_slice().iter().sum::<f32>()
                - layer.forward(&xm).as_slice().iter().sum::<f32>())
                / (2.0 * eps);
            assert!((fd - dx.get(0, j)).abs() < 1e-2);
        }
    }

    #[test]
    fn pull_toward_converges() {
        let mut a = Linear::new(2, 2, 7);
        let b = Linear::new(2, 2, 8);
        for _ in 0..200 {
            a.pull_toward(&b, 0.1);
        }
        let diff: f32 = a
            .weight()
            .as_slice()
            .iter()
            .zip(b.weight().as_slice())
            .map(|(&x, &y)| (x - y).abs())
            .sum();
        assert!(diff < 1e-4);
    }

    #[test]
    fn parameter_count() {
        assert_eq!(Linear::new(3, 4, 0).parameter_count(), 16);
    }
}
