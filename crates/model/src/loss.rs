//! Binary cross-entropy with logits and the normalized-entropy metric.
//!
//! The paper measures model quality as "the convergence of traditional model
//! loss metrics, such as normalized entropy" (Section VI.C). Normalized
//! entropy is the average log loss divided by the entropy of the empirical
//! CTR — 1.0 means the model is no better than predicting the base rate.

use crate::tensor::Matrix;
use recsim_prof::{self as prof, Counters, Op};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerically stable binary cross-entropy with logits.
///
/// Returns `(mean_loss, d_loss/d_logits)` where the gradient is already
/// divided by the batch size.
///
/// # Panics
///
/// Panics if `logits` is not a column (`B×1`) or label count disagrees.
///
/// # Example
///
/// ```
/// use recsim_model::{bce_with_logits, Matrix};
///
/// let logits = Matrix::from_vec(2, 1, vec![10.0, -10.0]);
/// let (loss, _grad) = bce_with_logits(&logits, &[1.0, 0.0]);
/// assert!(loss < 1e-3, "confident correct predictions, loss {loss}");
/// ```
pub fn bce_with_logits(logits: &Matrix, labels: &[f32]) -> (f64, Matrix) {
    let b = labels.len();
    let (total, grad) = bce_with_logits_scaled(logits, labels, b);
    (total / b as f64, grad)
}

/// Binary cross-entropy over a batch *shard* with an explicit gradient
/// normalizer: returns the **summed** (not averaged) loss and per-example
/// gradients divided by `normalizer` rather than the shard length.
///
/// The batch-shard-parallel training step evaluates each shard with
/// `normalizer` set to the full batch size, so summing shard gradients
/// reproduces full-batch mean-loss gradients exactly (up to the documented,
/// shape-fixed summation order). [`bce_with_logits`] is this with
/// `normalizer == labels.len()`.
///
/// # Panics
///
/// Panics if `logits` is not a column (`B×1`), label count disagrees, or
/// `normalizer` is zero.
pub fn bce_with_logits_scaled(logits: &Matrix, labels: &[f32], normalizer: usize) -> (f64, Matrix) {
    assert_eq!(logits.cols(), 1, "logits must be a column vector");
    assert_eq!(logits.rows(), labels.len(), "label count mismatch");
    assert!(normalizer > 0, "normalizer must be positive");
    let _prof = prof::scope(Op::LossBce, Counters::bce_loss(labels.len()));
    let b = labels.len();
    let inv_n = 1.0 / normalizer as f32;
    let mut grad = Matrix::zeros(b, 1);
    let mut total = 0.0f64;
    // Branch-free slice loop (column matrices are contiguous, so the
    // gradient writes stream straight through the buffer).
    // detsan: reduction-order — sequential example-order loss sum
    for ((g, &x), &y) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(logits.as_slice())
        .zip(labels)
    {
        // log(1+exp(-|x|)) + max(x,0) - x*y  (stable form)
        let loss = (-x.abs()).exp().ln_1p() + x.max(0.0) - x * y;
        total += loss as f64;
        *g = (sigmoid(x) - y) * inv_n;
    }
    (total, grad)
}

/// Mean binary log loss of probability predictions (no gradient).
///
/// # Panics
///
/// Panics if lengths disagree or `predictions` is empty.
pub fn log_loss(predictions: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!predictions.is_empty(), "need at least one prediction");
    let mut total = 0.0f64;
    for (&p, &y) in predictions.iter().zip(labels) {
        let p = (p as f64).clamp(1e-7, 1.0 - 1e-7);
        let y = y as f64;
        total += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
    }
    total / predictions.len() as f64
}

/// Normalized entropy: `log_loss / H(base_ctr)`.
///
/// Values below 1.0 mean the model beats base-rate prediction; the paper's
/// accuracy regressions are quoted as relative NE changes of ~0.1–0.2%.
///
/// # Panics
///
/// Panics if `base_ctr` is not strictly inside `(0, 1)`.
pub fn normalized_entropy(log_loss: f64, base_ctr: f64) -> f64 {
    assert!(
        base_ctr > 0.0 && base_ctr < 1.0,
        "base CTR must be in (0, 1)"
    );
    let h = -(base_ctr * base_ctr.ln() + (1.0 - base_ctr) * (1.0 - base_ctr).ln());
    log_loss / h
}

/// Applies the logistic function to a column of logits, producing
/// probabilities.
///
/// # Panics
///
/// Panics if `logits` is not a column vector.
pub fn predict_probabilities(logits: &Matrix) -> Vec<f32> {
    assert_eq!(logits.cols(), 1, "logits must be a column vector");
    (0..logits.rows())
        .map(|i| sigmoid(logits.get(i, 0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_matches_manual_computation() {
        let logits = Matrix::from_vec(1, 1, vec![0.0]);
        let (loss, grad) = bce_with_logits(&logits, &[1.0]);
        // -ln(sigmoid(0)) = ln 2
        assert!((loss - std::f64::consts::LN_2).abs() < 1e-6);
        assert!((grad.get(0, 0) - (0.5 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn bce_gradient_is_finite_difference() {
        let labels = [1.0f32, 0.0, 1.0];
        let logits = Matrix::from_vec(3, 1, vec![0.3, -0.8, 2.0]);
        let (_, grad) = bce_with_logits(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut up = logits.clone();
            up.set(i, 0, logits.get(i, 0) + eps);
            let mut down = logits.clone();
            down.set(i, 0, logits.get(i, 0) - eps);
            let fd = (bce_with_logits(&up, &labels).0 - bce_with_logits(&down, &labels).0)
                / (2.0 * eps as f64);
            assert!((fd - grad.get(i, 0) as f64).abs() < 1e-4);
        }
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let logits = Matrix::from_vec(2, 1, vec![100.0, -100.0]);
        let (loss, grad) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn log_loss_of_perfect_predictions_near_zero() {
        assert!(log_loss(&[1.0, 0.0], &[1.0, 0.0]) < 1e-5);
        assert!(log_loss(&[0.5, 0.5], &[1.0, 0.0]) > 0.69);
    }

    #[test]
    fn normalized_entropy_baseline_is_one() {
        // Predicting the base rate for every example gives NE = 1.
        let ctr = 0.3;
        let n = 10_000;
        let positives = (n as f64 * ctr) as usize;
        let labels: Vec<f32> = (0..n)
            .map(|i| if i < positives { 1.0 } else { 0.0 })
            .collect();
        let preds = vec![ctr as f32; n];
        let ll = log_loss(&preds, &labels);
        let ne = normalized_entropy(ll, positives as f64 / n as f64);
        assert!((ne - 1.0).abs() < 1e-3, "ne = {ne}");
    }

    #[test]
    fn better_model_has_lower_ne() {
        let labels = [1.0f32, 1.0, 0.0, 0.0];
        let good = log_loss(&[0.9, 0.8, 0.1, 0.2], &labels);
        let bad = log_loss(&[0.5, 0.5, 0.5, 0.5], &labels);
        assert!(normalized_entropy(good, 0.5) < normalized_entropy(bad, 0.5));
    }

    #[test]
    fn predict_probabilities_in_unit_interval() {
        let logits = Matrix::from_vec(3, 1, vec![-5.0, 0.0, 5.0]);
        let p = predict_probabilities(&logits);
        assert!(p[0] < 0.01 && (p[1] - 0.5).abs() < 1e-6 && p[2] > 0.99);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn ne_validates_base_ctr() {
        normalized_entropy(0.5, 1.0);
    }
}
