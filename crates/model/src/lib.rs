//! From-scratch DLRM numerics for `recsim`.
//!
//! The paper's models are Caffe2 DLRMs: a bottom MLP over dense features,
//! embedding-bag lookups over sparse features, a feature interaction, and a
//! top MLP ending in a click-probability logit (its Figure 3). This crate
//! implements that model with real arithmetic — no autograd framework, no
//! BLAS — so the accuracy experiments (paper Figure 15 and the AutoML study
//! of Section VI.C) run actual gradient descent:
//!
//! * [`tensor`] — a minimal row-major `f32` matrix with the GEMM variants
//!   backpropagation needs,
//! * [`linear`] — fully connected layers with explicit forward caches,
//! * [`mlp`] — ReLU MLP stacks,
//! * [`embedding`] — embedding tables with sum-pooling bags and sparse
//!   gradients,
//! * [`interaction`] — concat and pairwise-dot feature interactions,
//! * [`loss`] — binary cross-entropy with logits and the *normalized
//!   entropy* metric the paper reports model quality in,
//! * [`optim`] — SGD and row-wise Adagrad,
//! * [`dlrm`] — the assembled model with `forward` / `backward` /
//!   `train_step`.
//!
//! # Example
//!
//! ```
//! use recsim_data::{schema::ModelConfig, CtrGenerator};
//! use recsim_model::{DlrmModel, optim::Optimizer};
//!
//! let config = ModelConfig::test_suite(8, 2, 100, &[16]);
//! let mut model = DlrmModel::new(&config, 1);
//! let mut gen = CtrGenerator::new(&config, 2);
//! let mut opt = Optimizer::sgd(0.05);
//! let batch = gen.next_batch(32);
//! let first = model.train_step(&batch, &mut opt);
//! for _ in 0..30 {
//!     let b = gen.next_batch(32);
//!     model.train_step(&b, &mut opt);
//! }
//! let last = model.train_step(&gen.next_batch(32), &mut opt);
//! assert!(last < first, "loss should fall: {first} -> {last}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dlrm;
pub mod embedding;
pub mod interaction;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod tensor;

pub use dlrm::{DlrmGradients, DlrmModel};
pub use embedding::EmbeddingTable;
pub use loss::{bce_with_logits, normalized_entropy};
pub use tensor::Matrix;
