//! Fault configurations and the deterministic schedules drawn from them.
//!
//! A [`FaultConfig`] describes a fault environment statistically (MTBFs,
//! slowdown factors, event durations); [`FaultSchedule::generate`] expands
//! it into a concrete, sorted list of [`FaultEvent`]s for one machine over
//! one horizon. Generation is a pure function of `(config, gpu_count)` —
//! every draw is counter-keyed on `(seed, resource stream, event index)`
//! (see [`crate::prng`]), so the same inputs yield a byte-identical
//! schedule at any thread count, in any sweep order, on any host.

use crate::prng::{exponential, stream_id, unit_f64};
use recsim_verify::{Code, Diagnostic, Validate, ValidationError};
use serde::{Deserialize, Serialize};

/// What a fault event does to its resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device is lost for the rest of the horizon; a
    /// [`crate::RecoveryPolicy`] decides what the job does about it.
    DeviceFailure,
    /// The resource runs at `factor` of nominal speed for `duration_secs`
    /// (thermal throttling, a flaky lane, a congested switch).
    LinkDegradation {
        /// Fraction of nominal bandwidth while degraded, in `(0, 1]`.
        factor: f64,
        /// How long the degradation lasts.
        duration_secs: f64,
    },
    /// The device computes at `factor` of nominal speed for
    /// `duration_secs` — the paper's "hardware level variability".
    Straggler {
        /// Fraction of nominal throughput while straggling, in `(0, 1]`.
        factor: f64,
        /// How long the slowdown lasts.
        duration_secs: f64,
    },
}

/// One injected fault: when, where, what.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Seconds since the start of the horizon.
    pub at_secs: f64,
    /// The DES resource the fault targets (`gpu3`, `nvlink`, `nic`, …).
    pub resource: String,
    /// What happens to it.
    pub kind: FaultKind,
}

/// Statistical description of a fault environment. Expanded into concrete
/// events by [`FaultSchedule::generate`]; validated by [`Validate`] with
/// RV032 ([`Code::InvalidFaultConfig`]) diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every counter-keyed draw.
    pub seed: u64,
    /// Simulated wall-clock window, seconds.
    pub horizon_secs: f64,
    /// Mean time between device (GPU) failures across the whole machine.
    pub device_mtbf_secs: f64,
    /// Mean time between straggler episodes *per GPU*; `0` disables them.
    pub straggler_mtbf_secs: f64,
    /// Straggling GPU speed as a fraction of nominal, in `(0, 1]`.
    pub straggler_factor: f64,
    /// Length of one straggler episode, seconds.
    pub straggler_duration_secs: f64,
    /// Mean time between link-degradation episodes per shared link
    /// (`nvlink`, `nic`); `0` disables them.
    pub link_mtbf_secs: f64,
    /// Degraded link bandwidth as a fraction of nominal, in `(0, 1]`.
    pub link_factor: f64,
    /// Length of one link-degradation episode, seconds.
    pub link_duration_secs: f64,
    /// Fixed job-restart cost (scheduling, process spawn, data reload)
    /// added on top of checkpoint-restore IO.
    pub restart_overhead_secs: f64,
    /// Fixed cost of re-running the sharder and materializing the new
    /// placement after an elastic shrink.
    pub rebalance_overhead_secs: f64,
}

impl Default for FaultConfig {
    /// A day-long window on flaky-but-plausible hardware: device failures
    /// every ~6 h, occasional hour-scale stragglers and link brownouts.
    fn default() -> Self {
        FaultConfig {
            seed: 42,
            horizon_secs: 86_400.0,
            device_mtbf_secs: 21_600.0,
            straggler_mtbf_secs: 14_400.0,
            straggler_factor: 0.6,
            straggler_duration_secs: 1_800.0,
            link_mtbf_secs: 28_800.0,
            link_factor: 0.5,
            link_duration_secs: 900.0,
            restart_overhead_secs: 120.0,
            rebalance_overhead_secs: 300.0,
        }
    }
}

impl FaultConfig {
    /// Copy with a different device MTBF — the knob the `faults`
    /// experiment sweeps.
    pub fn with_device_mtbf(&self, mtbf_secs: f64) -> FaultConfig {
        FaultConfig {
            device_mtbf_secs: mtbf_secs,
            ..self.clone()
        }
    }
}

impl Validate for FaultConfig {
    fn validate(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut check_positive = |name: &str, value: f64| {
            if !value.is_finite() || value <= 0.0 {
                out.push(Diagnostic::error(
                    Code::InvalidFaultConfig,
                    format!("FaultConfig.{name}"),
                    format!("must be positive and finite, got {value}"),
                ));
            }
        };
        check_positive("horizon_secs", self.horizon_secs);
        check_positive("device_mtbf_secs", self.device_mtbf_secs);
        let mut check_non_negative = |name: &str, value: f64| {
            if !value.is_finite() || value < 0.0 {
                out.push(Diagnostic::error(
                    Code::InvalidFaultConfig,
                    format!("FaultConfig.{name}"),
                    format!("must be non-negative and finite, got {value}"),
                ));
            }
        };
        check_non_negative("straggler_mtbf_secs", self.straggler_mtbf_secs);
        check_non_negative("straggler_duration_secs", self.straggler_duration_secs);
        check_non_negative("link_mtbf_secs", self.link_mtbf_secs);
        check_non_negative("link_duration_secs", self.link_duration_secs);
        check_non_negative("restart_overhead_secs", self.restart_overhead_secs);
        check_non_negative("rebalance_overhead_secs", self.rebalance_overhead_secs);
        for (name, factor) in [
            ("straggler_factor", self.straggler_factor),
            ("link_factor", self.link_factor),
        ] {
            if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                out.push(Diagnostic::error(
                    Code::InvalidFaultConfig,
                    format!("FaultConfig.{name}"),
                    format!("slowdown factor must be in (0, 1], got {factor}"),
                ));
            }
        }
        out
    }
}

/// A concrete, sorted fault timeline for one machine over one horizon.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultSchedule {
    horizon_secs: f64,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Expands `config` into events for a machine with `gpu_count` GPUs.
    ///
    /// Device failures arrive machine-wide with exponential inter-arrivals
    /// at `device_mtbf_secs` and strike a counter-chosen GPU; straggler
    /// episodes arrive per GPU; link degradations arrive on `nvlink` and
    /// `nic`. Events are sorted by `(time, resource)`.
    ///
    /// # Errors
    ///
    /// [`ValidationError`] with RV032 diagnostics when `config` is out of
    /// range, or when `gpu_count` is zero.
    pub fn generate(
        config: &FaultConfig,
        gpu_count: usize,
    ) -> Result<FaultSchedule, ValidationError> {
        config.check()?;
        if gpu_count == 0 {
            return Err(Diagnostic::error(
                Code::InvalidFaultConfig,
                "FaultSchedule.gpu_count",
                "fault schedules target at least one GPU",
            )
            .into());
        }
        let horizon = config.horizon_secs;
        let seed = config.seed;
        let mut events = Vec::new();

        // Machine-wide device failures. Arrival times are prefix sums of
        // exponential draws, so they scale linearly with the MTBF and the
        // in-horizon count is monotone in the failure rate.
        let failure_stream = stream_id("device-failure");
        let target_stream = stream_id("device-failure-target");
        let mut t = 0.0;
        let mut k = 0u64;
        loop {
            t += exponential(seed, failure_stream, k, config.device_mtbf_secs);
            if t >= horizon {
                break;
            }
            let g = (unit_f64(seed, target_stream, k) * gpu_count as f64) as usize;
            events.push(FaultEvent {
                at_secs: t,
                resource: format!("gpu{}", g.min(gpu_count - 1)),
                kind: FaultKind::DeviceFailure,
            });
            k += 1;
        }

        // Per-GPU straggler episodes.
        if config.straggler_mtbf_secs > 0.0 && config.straggler_duration_secs > 0.0 {
            for g in 0..gpu_count {
                let resource = format!("gpu{g}");
                let stream = stream_id(&format!("straggler:{resource}"));
                let mut t = 0.0;
                let mut k = 0u64;
                loop {
                    t += exponential(seed, stream, k, config.straggler_mtbf_secs);
                    if t >= horizon {
                        break;
                    }
                    events.push(FaultEvent {
                        at_secs: t,
                        resource: resource.clone(),
                        kind: FaultKind::Straggler {
                            factor: config.straggler_factor,
                            duration_secs: config.straggler_duration_secs,
                        },
                    });
                    k += 1;
                }
            }
        }

        // Shared-link degradation episodes.
        if config.link_mtbf_secs > 0.0 && config.link_duration_secs > 0.0 {
            for link in ["nvlink", "nic"] {
                let stream = stream_id(&format!("link:{link}"));
                let mut t = 0.0;
                let mut k = 0u64;
                loop {
                    t += exponential(seed, stream, k, config.link_mtbf_secs);
                    if t >= horizon {
                        break;
                    }
                    events.push(FaultEvent {
                        at_secs: t,
                        resource: link.to_string(),
                        kind: FaultKind::LinkDegradation {
                            factor: config.link_factor,
                            duration_secs: config.link_duration_secs,
                        },
                    });
                    k += 1;
                }
            }
        }

        events.sort_by(|a, b| {
            a.at_secs
                .total_cmp(&b.at_secs)
                .then_with(|| a.resource.cmp(&b.resource))
        });
        Ok(FaultSchedule {
            horizon_secs: horizon,
            events,
        })
    }

    /// The horizon the schedule covers, seconds.
    pub fn horizon_secs(&self) -> f64 {
        self.horizon_secs
    }

    /// All events, sorted by `(time, resource)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of device failures within the horizon — the count every
    /// [`crate::RecoveryPolicy`] pays for.
    pub fn device_failures(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::DeviceFailure)
            .count()
    }

    /// Time-averaged effective speed per degraded resource, as
    /// `(resource, rate)` pairs sorted by resource name. A resource
    /// straggling at factor `f` for a fraction `p` of the horizon runs at
    /// `1 - p + p·f` on average; resources that never degrade are omitted
    /// (their rate is 1). Device failures do not appear here — they are
    /// priced by recovery policies, not by slowdown.
    pub fn slowdown_factors(&self) -> Vec<(String, f64)> {
        // (resource, degraded seconds, worst factor) — overlapping episodes
        // approximate to summed durations at the worst factor.
        let mut degraded: Vec<(String, f64, f64)> = Vec::new();
        for event in &self.events {
            let (factor, duration) = match event.kind {
                FaultKind::Straggler {
                    factor,
                    duration_secs,
                } => (factor, duration_secs),
                FaultKind::LinkDegradation {
                    factor,
                    duration_secs,
                } => (factor, duration_secs),
                FaultKind::DeviceFailure => continue,
            };
            // Episodes are truncated at the horizon.
            let duration = duration.min(self.horizon_secs - event.at_secs);
            match degraded.iter_mut().find(|(r, _, _)| *r == event.resource) {
                Some((_, total, f)) => {
                    *total += duration;
                    *f = f.min(factor);
                }
                None => degraded.push((event.resource.clone(), duration, factor)),
            }
        }
        let mut out: Vec<(String, f64)> = degraded
            .into_iter()
            .map(|(resource, total, factor)| {
                let fraction = (total / self.horizon_secs).min(1.0);
                (resource, 1.0 - fraction + fraction * factor)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = FaultConfig::default();
        let a = FaultSchedule::generate(&config, 8).expect("valid config");
        let b = FaultSchedule::generate(&config, 8).expect("valid config");
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_the_schedule() {
        let base = FaultConfig::default();
        let other = FaultConfig {
            seed: 43,
            ..base.clone()
        };
        let a = FaultSchedule::generate(&base, 8).expect("valid config");
        let b = FaultSchedule::generate(&other, 8).expect("valid config");
        assert_ne!(a, b);
    }

    #[test]
    fn shorter_mtbf_means_no_fewer_failures() {
        let base = FaultConfig::default();
        let mut last = usize::MAX;
        for mtbf in [3_600.0, 7_200.0, 14_400.0, 28_800.0, 57_600.0] {
            let schedule =
                FaultSchedule::generate(&base.with_device_mtbf(mtbf), 8).expect("valid config");
            assert!(
                schedule.device_failures() <= last,
                "mtbf {mtbf}: {} failures after {last}",
                schedule.device_failures()
            );
            last = schedule.device_failures();
        }
    }

    #[test]
    fn events_are_sorted_and_inside_the_horizon() {
        let schedule = FaultSchedule::generate(&FaultConfig::default(), 8).expect("valid config");
        let events = schedule.events();
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].at_secs <= pair[1].at_secs);
        }
        for e in events {
            assert!(e.at_secs >= 0.0 && e.at_secs < schedule.horizon_secs());
        }
    }

    #[test]
    fn slowdown_factors_are_partial_and_bounded() {
        let schedule = FaultSchedule::generate(&FaultConfig::default(), 8).expect("valid config");
        let factors = schedule.slowdown_factors();
        assert!(!factors.is_empty(), "default config degrades something");
        for (resource, rate) in &factors {
            assert!(
                *rate > 0.0 && *rate <= 1.0,
                "{resource} effective rate {rate}"
            );
        }
        // Sorted by resource name.
        for pair in factors.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn out_of_range_config_is_rv032() {
        let broken = FaultConfig {
            straggler_factor: 1.5,
            ..FaultConfig::default()
        };
        let err = FaultSchedule::generate(&broken, 8).expect_err("factor above 1 rejected");
        assert!(err.has_code(Code::InvalidFaultConfig));
        let zero_gpus = FaultSchedule::generate(&FaultConfig::default(), 0);
        assert!(zero_gpus.is_err());
    }

    #[test]
    fn disabled_classes_emit_no_events() {
        let quiet = FaultConfig {
            straggler_mtbf_secs: 0.0,
            link_mtbf_secs: 0.0,
            ..FaultConfig::default()
        };
        let schedule = FaultSchedule::generate(&quiet, 8).expect("valid config");
        assert!(schedule
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::DeviceFailure));
        assert!(schedule.slowdown_factors().is_empty());
    }
}
