//! Pricing a fault environment on concrete hardware: a [`FaultContext`]
//! bundles everything a [`crate::RecoveryPolicy`] needs to turn a failure
//! count into goodput — throughputs (healthy, degraded, and per shrink
//! level), checkpoint IO costs, restart and rebalance overheads.
//!
//! Contexts are built once per sweep point from the real models: the
//! degraded throughput comes from a perturbed DES run
//! ([`GpuTrainingSim::run_perturbed_in`]), the shrink ladder from re-running
//! the `recsim-shard` sharder on the surviving GPUs, and the checkpoint
//! costs from the platform's link model
//! ([`Platform::checkpoint_transfer_time`]). Policies then stay pure
//! functions of `(context, failure count)`, which is what makes their
//! monotonicity properties testable.

use crate::{FaultConfig, FaultSchedule, SlowdownField};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_shard::{GreedySharder, Sharder};
use recsim_sim::scaleout::{min_nodes, ScaleOutSim};
use recsim_sim::{GpuTrainingSim, SimScratch};
use recsim_verify::{Code, Diagnostic, Validate, ValidationError};

/// How deep the pre-computed shrink ladder goes; a fleet rarely loses more
/// devices than this before the horizon ends, and beyond the ladder the
/// last rung's throughput carries forward (still monotone).
const MAX_SHRINK_LEVELS: usize = 4;

/// Everything a recovery policy needs to price failures on one setup.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultContext {
    setup: String,
    horizon_secs: f64,
    baseline_samples_per_sec: f64,
    degraded_samples_per_sec: f64,
    checkpoint_write_secs: f64,
    restart_secs: f64,
    /// `shrink[k]` = degraded throughput after absorbing `k` device
    /// failures by shrinking; `shrink[0]` equals the degraded baseline.
    /// Non-increasing by construction.
    shrink_samples_per_sec: Vec<f64>,
    rebalance_secs: f64,
}

impl FaultContext {
    /// Builds a context from explicit numbers — the constructor property
    /// tests use to explore the policy algebra directly. The shrink ladder
    /// is clamped non-increasing and capped at the degraded baseline.
    ///
    /// # Errors
    ///
    /// [`ValidationError`] (RV032) when a rate or cost is negative,
    /// non-finite, or the horizon is not positive.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        setup: impl Into<String>,
        horizon_secs: f64,
        baseline_samples_per_sec: f64,
        degraded_samples_per_sec: f64,
        checkpoint_write_secs: f64,
        restart_secs: f64,
        shrink_samples_per_sec: Vec<f64>,
        rebalance_secs: f64,
    ) -> Result<FaultContext, ValidationError> {
        let mut diagnostics = Vec::new();
        let mut check = |name: &str, value: f64, strictly_positive: bool| {
            let bad = !value.is_finite() || value < 0.0 || (strictly_positive && value <= 0.0);
            if bad {
                diagnostics.push(Diagnostic::error(
                    Code::InvalidFaultConfig,
                    format!("FaultContext.{name}"),
                    format!("out of range: {value}"),
                ));
            }
        };
        check("horizon_secs", horizon_secs, true);
        check("baseline_samples_per_sec", baseline_samples_per_sec, true);
        check("degraded_samples_per_sec", degraded_samples_per_sec, false);
        check("checkpoint_write_secs", checkpoint_write_secs, false);
        check("restart_secs", restart_secs, false);
        check("rebalance_secs", rebalance_secs, false);
        for (i, thr) in shrink_samples_per_sec.iter().enumerate() {
            check(&format!("shrink[{i}]"), *thr, false);
        }
        if !diagnostics.is_empty() {
            return Err(ValidationError::new(diagnostics));
        }
        let mut shrink = Vec::with_capacity(shrink_samples_per_sec.len() + 1);
        shrink.push(degraded_samples_per_sec);
        for thr in shrink_samples_per_sec {
            let prev = shrink.last().copied().unwrap_or(degraded_samples_per_sec);
            shrink.push(thr.min(prev));
        }
        Ok(FaultContext {
            setup: setup.into(),
            horizon_secs,
            baseline_samples_per_sec,
            degraded_samples_per_sec,
            checkpoint_write_secs,
            restart_secs,
            shrink_samples_per_sec: shrink,
            rebalance_secs,
        })
    }

    /// Prices `fault_cfg`'s environment for single-server GPU training:
    /// healthy and slowdown-perturbed DES runs under the greedy sharder's
    /// placement, a shrink ladder from re-sharding onto fewer GPUs, and
    /// checkpoint IO from the platform's link model.
    ///
    /// # Errors
    ///
    /// [`crate::FaultError`] when the fault config is out of range (RV032),
    /// the sharder finds no feasible placement, or the simulator rejects
    /// the setup.
    pub fn for_gpu_training(
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
        fault_cfg: &FaultConfig,
        schedule: &FaultSchedule,
    ) -> Result<FaultContext, crate::FaultError> {
        fault_cfg.check()?;
        let gpu_count = platform.gpus().len();
        let plan = GreedySharder.shard(config, platform, batch)?;
        let baseline = plan.throughput();
        let mut scratch = SimScratch::new();
        let field = SlowdownField::from_schedule(schedule);
        let sim =
            GpuTrainingSim::with_placement(config, platform, plan.placement().clone(), batch)?;
        let degraded = sim
            .run_perturbed_in(&mut scratch, &field)
            .throughput()
            .min(baseline);

        // Shrink ladder: re-shard onto the survivors. A rung the sharder
        // cannot place (model no longer fits) ends the ladder; the last
        // rung carries forward, which keeps the sequence monotone.
        let ratio = if baseline > 0.0 {
            degraded / baseline
        } else {
            0.0
        };
        let mut shrink = Vec::new();
        let levels = MAX_SHRINK_LEVELS.min(gpu_count.saturating_sub(1));
        for lost in 1..=levels {
            let survivors = platform.with_gpu_count(gpu_count - lost);
            match GreedySharder.shard(config, &survivors, batch) {
                Ok(plan) => shrink.push(plan.throughput() * ratio),
                Err(_) => break,
            }
        }

        let state = checkpoint_state_bytes(config);
        let write = platform.checkpoint_transfer_time(state).as_secs();
        let restart = write + fault_cfg.restart_overhead_secs;
        let rebalance = write + fault_cfg.rebalance_overhead_secs;
        FaultContext::from_parts(
            format!("{} / batch {batch}", platform.name()),
            fault_cfg.horizon_secs,
            baseline,
            degraded,
            write,
            restart,
            shrink,
            rebalance,
        )
        .map_err(crate::FaultError::from)
    }

    /// Prices `fault_cfg`'s environment for multi-node scale-out training.
    /// Elastic shrink drops whole nodes (re-running [`ScaleOutSim`] on the
    /// survivors); slowdown degradation uses the mean-field pessimistic
    /// bound — data-parallel training paces at the slowest worker, so the
    /// fleet runs at the minimum per-GPU effective rate.
    ///
    /// # Errors
    ///
    /// [`crate::FaultError`] when the fault config is out of range (RV032)
    /// or the cluster cannot hold the model at all.
    pub fn for_scale_out(
        config: &ModelConfig,
        nodes: u32,
        batch_per_node: u64,
        fault_cfg: &FaultConfig,
        schedule: &FaultSchedule,
    ) -> Result<FaultContext, crate::FaultError> {
        fault_cfg.check()?;
        let baseline = ScaleOutSim::new(config, nodes, batch_per_node)?
            .run()
            .throughput();
        let min_rate = schedule
            .slowdown_factors()
            .iter()
            .filter(|(resource, _)| resource.starts_with("gpu"))
            .map(|(_, rate)| *rate)
            .fold(1.0_f64, f64::min);
        let degraded = baseline * min_rate;

        let floor = min_nodes(config);
        let mut shrink = Vec::new();
        let levels = MAX_SHRINK_LEVELS.min(nodes.saturating_sub(floor) as usize);
        for lost in 1..=levels {
            match ScaleOutSim::new(config, nodes - lost as u32, batch_per_node) {
                Ok(sim) => shrink.push(sim.run().throughput() * min_rate),
                Err(_) => break,
            }
        }

        // Nodes checkpoint their table shards in parallel: each moves its
        // 1/nodes share of the state through its own NIC.
        let platform = Platform::big_basin(Bytes::from_gib(32));
        let state = checkpoint_state_bytes(config);
        let per_node = Bytes::new(state.as_u64() / u64::from(nodes).max(1));
        let write = platform.checkpoint_transfer_time(per_node).as_secs();
        let restart = write + fault_cfg.restart_overhead_secs;
        let rebalance = write + fault_cfg.rebalance_overhead_secs;
        FaultContext::from_parts(
            format!("{nodes}x Big Basin / batch {batch_per_node}/node"),
            fault_cfg.horizon_secs,
            baseline,
            degraded,
            write,
            restart,
            shrink,
            rebalance,
        )
        .map_err(crate::FaultError::from)
    }

    /// Human-readable setup label.
    pub fn setup(&self) -> &str {
        &self.setup
    }

    /// The horizon policies amortize over, seconds.
    pub fn horizon_secs(&self) -> f64 {
        self.horizon_secs
    }

    /// Healthy throughput, samples/s.
    pub fn baseline_samples_per_sec(&self) -> f64 {
        self.baseline_samples_per_sec
    }

    /// Throughput under the schedule's stragglers and degraded links (no
    /// device failures yet), samples/s.
    pub fn degraded_samples_per_sec(&self) -> f64 {
        self.degraded_samples_per_sec
    }

    /// Time to write one checkpoint, seconds.
    pub fn checkpoint_write_secs(&self) -> f64 {
        self.checkpoint_write_secs
    }

    /// Time to restart the job (checkpoint restore + fixed overhead),
    /// seconds.
    pub fn restart_secs(&self) -> f64 {
        self.restart_secs
    }

    /// Time to re-shard and rebalance after an elastic shrink, seconds.
    pub fn rebalance_secs(&self) -> f64 {
        self.rebalance_secs
    }

    /// Degraded throughput after absorbing `failures` device losses by
    /// shrinking. Non-increasing in `failures`; beyond the pre-computed
    /// ladder the last rung carries forward.
    pub fn shrink_throughput(&self, failures: usize) -> f64 {
        let last = self.shrink_samples_per_sec.len().saturating_sub(1);
        self.shrink_samples_per_sec[failures.min(last)]
    }

    /// Number of pre-computed shrink rungs (including rung 0, the
    /// no-failure degraded baseline).
    pub fn shrink_levels(&self) -> usize {
        self.shrink_samples_per_sec.len()
    }
}

/// Bytes of training state a checkpoint must capture: embedding tables
/// with Adagrad accumulators plus the dense parameters with optimizer
/// state.
pub fn checkpoint_state_bytes(config: &ModelConfig) -> Bytes {
    let embeddings = (config.total_embedding_bytes() as f64
        * recsim_placement::plan::ADAGRAD_STATE_MULTIPLIER) as u64;
    let dense = config.mlp_parameter_bytes() * 2;
    Bytes::new(embeddings + dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> ModelConfig {
        ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512])
    }

    #[test]
    fn gpu_context_prices_the_default_environment() {
        let platform = Platform::big_basin(Bytes::from_gib(32));
        let fault_cfg = FaultConfig::default();
        let schedule = FaultSchedule::generate(&fault_cfg, platform.gpus().len()).expect("valid");
        let ctx =
            FaultContext::for_gpu_training(&test_config(), &platform, 1600, &fault_cfg, &schedule)
                .expect("context builds");
        assert!(ctx.baseline_samples_per_sec() > 0.0);
        assert!(ctx.degraded_samples_per_sec() > 0.0);
        assert!(ctx.degraded_samples_per_sec() <= ctx.baseline_samples_per_sec());
        assert!(ctx.checkpoint_write_secs() > 0.0);
        assert!(ctx.restart_secs() >= ctx.checkpoint_write_secs());
        assert!(
            ctx.shrink_levels() >= 2,
            "ladder has at least one real rung"
        );
        for k in 0..ctx.shrink_levels() + 2 {
            assert!(ctx.shrink_throughput(k + 1) <= ctx.shrink_throughput(k) + 1e-12);
        }
    }

    #[test]
    fn scale_out_context_builds_and_shrinks() {
        let cfg = test_config();
        let fault_cfg = FaultConfig::default();
        let nodes = min_nodes(&cfg) + 2;
        let schedule =
            FaultSchedule::generate(&fault_cfg, nodes as usize * 8).expect("valid config");
        let ctx = FaultContext::for_scale_out(&cfg, nodes, 800, &fault_cfg, &schedule)
            .expect("context builds");
        assert!(ctx.baseline_samples_per_sec() > 0.0);
        assert!(ctx.degraded_samples_per_sec() <= ctx.baseline_samples_per_sec());
        for k in 0..4 {
            assert!(ctx.shrink_throughput(k + 1) <= ctx.shrink_throughput(k) + 1e-12);
        }
    }

    #[test]
    fn from_parts_rejects_nonsense() {
        assert!(FaultContext::from_parts("x", -1.0, 1.0, 1.0, 0.0, 0.0, vec![], 0.0).is_err());
        assert!(FaultContext::from_parts("x", 1.0, 0.0, 0.0, 0.0, 0.0, vec![], 0.0).is_err());
        assert!(FaultContext::from_parts("x", 1.0, 1.0, 1.0, f64::NAN, 0.0, vec![], 0.0).is_err());
    }

    #[test]
    fn from_parts_clamps_the_ladder() {
        let ctx =
            FaultContext::from_parts("x", 100.0, 10.0, 8.0, 1.0, 2.0, vec![9.0, 5.0, 6.0], 3.0)
                .expect("valid parts");
        // Rung 0 is the degraded baseline; a rung above its predecessor is
        // clamped down.
        assert_eq!(ctx.shrink_throughput(0), 8.0);
        assert_eq!(ctx.shrink_throughput(1), 8.0);
        assert_eq!(ctx.shrink_throughput(2), 5.0);
        assert_eq!(ctx.shrink_throughput(3), 5.0);
        assert_eq!(ctx.shrink_throughput(99), 5.0);
    }

    #[test]
    fn checkpoint_state_scales_with_the_model() {
        let small = checkpoint_state_bytes(&test_config());
        let big = checkpoint_state_bytes(&ModelConfig::test_suite(
            256,
            16,
            1_000_000,
            &[512, 512, 512],
        ));
        assert!(big > small);
        assert!(small > Bytes::ZERO);
    }
}
