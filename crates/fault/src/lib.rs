//! Deterministic fault injection and elastic-recovery simulation.
//!
//! Production recommendation training at the paper's scale runs across
//! enough devices for long enough that failures are routine, not
//! exceptional: a week-long job on hundreds of GPUs *will* lose devices,
//! throttle links, and hit stragglers. This crate prices those events
//! against the rest of the `recsim` stack:
//!
//! * [`prng`] — counter-keyed randomness: every draw is a pure hash of
//!   `(seed, resource stream, event index)`, so schedules are byte-stable
//!   across thread counts, sweep orders, and hosts;
//! * [`schedule`] — [`FaultConfig`] (the statistical environment, RV032
//!   validated) and [`FaultSchedule`] (its concrete, sorted expansion into
//!   device failures, stragglers, and link degradations);
//! * [`perturb`] — [`SlowdownField`], the bridge into the DES: a
//!   schedule's time-averaged degradation becomes a
//!   [`recsim_sim::Perturbation`] that stretches task durations on the
//!   affected resources;
//! * [`context`] — [`FaultContext`], the priced environment: healthy,
//!   degraded, and per-shrink-level throughputs (via the `recsim-shard`
//!   sharder on the surviving GPUs), checkpoint IO from the platform's
//!   link model, restart and rebalance costs;
//! * [`recovery`] — the policies. [`CheckpointRestart`] pays periodic
//!   writes and loses half an interval per failure (Young's optimal
//!   interval trade-off), [`ElasticShrink`] re-shards onto survivors and
//!   keeps going, [`FailStop`] is the lose-everything baseline.
//!
//! # Example
//!
//! ```
//! use recsim_fault::{
//!     CheckpointRestart, FaultConfig, FaultContext, FaultSchedule, RecoveryPolicy,
//! };
//! use recsim_data::schema::ModelConfig;
//! use recsim_hw::{Platform, units::Bytes};
//!
//! let config = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
//! let platform = Platform::big_basin(Bytes::from_gib(32));
//! let fault_cfg = FaultConfig::default();
//! let schedule = FaultSchedule::generate(&fault_cfg, platform.gpus().len())?;
//! let ctx = FaultContext::for_gpu_training(&config, &platform, 1600, &fault_cfg, &schedule)?;
//! let policy = CheckpointRestart {
//!     interval_secs: CheckpointRestart::optimal_interval(&ctx, fault_cfg.device_mtbf_secs),
//! };
//! let goodput = policy.goodput(&ctx, schedule.device_failures());
//! assert!(goodput.goodput_samples_per_sec > 0.0);
//! # Ok::<(), recsim_fault::FaultError>(())
//! ```
//!
//! Everything here is deterministic end to end: the schedule by
//! construction, the degraded throughput because perturbed DES runs
//! pre-compute task durations before the event loop, and the policies
//! because they are pure arithmetic over the context.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod perturb;
pub mod prng;
pub mod recovery;
pub mod schedule;

pub use context::{checkpoint_state_bytes, FaultContext};
pub use perturb::SlowdownField;
pub use recovery::{
    policy_by_name, CheckpointRestart, ElasticShrink, FailStop, GoodputReport, RecoveryPolicy,
    POLICY_NAMES,
};
pub use schedule::{FaultConfig, FaultEvent, FaultKind, FaultSchedule};

use recsim_shard::ShardError;
use recsim_sim::scaleout::ScaleOutError;
use recsim_sim::SimError;
use recsim_verify::ValidationError;

/// Why a fault context could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault config or derived quantity failed validation (RV032
    /// diagnostics).
    Invalid(ValidationError),
    /// The sharder found no feasible placement for the (possibly shrunk)
    /// platform.
    Shard(ShardError),
    /// The simulator rejected the setup.
    Sim(SimError),
    /// The scale-out cluster cannot run the model at all.
    ScaleOut(ScaleOutError),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invalid(e) => write!(f, "invalid fault setup: {e}"),
            Self::Shard(e) => write!(f, "sharding failed: {e}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
            Self::ScaleOut(e) => write!(f, "scale-out setup failed: {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Invalid(e) => Some(e),
            Self::Shard(e) => Some(e),
            Self::Sim(e) => Some(e),
            Self::ScaleOut(e) => Some(e),
        }
    }
}

impl From<ValidationError> for FaultError {
    fn from(e: ValidationError) -> Self {
        Self::Invalid(e)
    }
}

impl From<ShardError> for FaultError {
    fn from(e: ShardError) -> Self {
        Self::Shard(e)
    }
}

impl From<SimError> for FaultError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<ScaleOutError> for FaultError {
    fn from(e: ScaleOutError) -> Self {
        Self::ScaleOut(e)
    }
}
