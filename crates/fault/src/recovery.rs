//! Recovery policies: turning a failure count into goodput.
//!
//! Each [`RecoveryPolicy`] is a pure function of a [`FaultContext`] and a
//! device-failure count — no hidden state, no randomness — which is what
//! lets the property tests pin down the algebra: every policy's goodput is
//! monotone non-increasing in the failure count, and checkpoint-restart's
//! goodput has an interior optimum in the checkpoint interval (Young's
//! classic `τ* ≈ √(2·c·MTBF)` trade-off between checkpoint overhead and
//! lost work).

use crate::FaultContext;

/// Goodput of one `(policy, context, failure count)` evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputReport {
    /// Policy that produced the number.
    pub policy: String,
    /// Device failures absorbed over the horizon.
    pub failures: usize,
    /// Useful training throughput averaged over the horizon, samples/s.
    pub goodput_samples_per_sec: f64,
    /// Goodput as a fraction of the degraded no-failure throughput, in
    /// `[0, 1]`.
    pub useful_fraction: f64,
    /// Horizon time lost to overheads and lost work, seconds.
    pub overhead_secs: f64,
}

/// A strategy for surviving device failures over a horizon.
pub trait RecoveryPolicy {
    /// Short machine-readable name (`fail-stop`, `checkpoint`, `elastic`).
    fn name(&self) -> &'static str;

    /// Goodput when `failures` devices are lost over the context's
    /// horizon. Implementations must be monotone non-increasing in
    /// `failures`.
    fn goodput(&self, ctx: &FaultContext, failures: usize) -> GoodputReport;
}

fn report(
    policy: &dyn RecoveryPolicy,
    ctx: &FaultContext,
    failures: usize,
    samples: f64,
) -> GoodputReport {
    let horizon = ctx.horizon_secs();
    let reference = ctx.degraded_samples_per_sec();
    let useful_fraction = if reference > 0.0 {
        (samples / (reference * horizon)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    GoodputReport {
        policy: policy.name().to_string(),
        failures,
        goodput_samples_per_sec: samples / horizon,
        useful_fraction,
        overhead_secs: horizon * (1.0 - useful_fraction),
    }
}

/// No checkpoints, no elasticity: every failure restarts the job from
/// scratch, discarding everything since the previous failure. The baseline
/// the paper-scale fleets cannot afford.
#[derive(Debug, Clone, Copy, Default)]
pub struct FailStop;

impl RecoveryPolicy for FailStop {
    fn name(&self) -> &'static str {
        "fail-stop"
    }

    fn goodput(&self, ctx: &FaultContext, failures: usize) -> GoodputReport {
        let horizon = ctx.horizon_secs();
        // Only the final segment's work survives; each earlier segment is
        // wiped by the failure that ends it. Restarting also costs R.
        let segment = horizon / (failures as f64 + 1.0);
        let useful = if failures == 0 {
            horizon
        } else {
            (segment - ctx.restart_secs()).max(0.0)
        };
        report(self, ctx, failures, ctx.degraded_samples_per_sec() * useful)
    }
}

/// Periodic checkpointing at a fixed interval: a failure loses half an
/// interval of work on average plus the restart cost, and every interval
/// pays the checkpoint-write cost.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointRestart {
    /// Seconds between checkpoint writes.
    pub interval_secs: f64,
}

impl CheckpointRestart {
    /// Young's first-order optimal interval for a context and MTBF:
    /// `√(2 · checkpoint cost · MTBF)`.
    pub fn optimal_interval(ctx: &FaultContext, mtbf_secs: f64) -> f64 {
        (2.0 * ctx.checkpoint_write_secs() * mtbf_secs.max(0.0)).sqrt()
    }
}

impl RecoveryPolicy for CheckpointRestart {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn goodput(&self, ctx: &FaultContext, failures: usize) -> GoodputReport {
        let horizon = ctx.horizon_secs();
        // A degenerate interval behaves like "checkpoint constantly":
        // clamp to at least the write cost so the overhead stays finite.
        let interval = self
            .interval_secs
            .max(ctx.checkpoint_write_secs())
            .max(1e-9);
        let checkpoint_cost = (horizon / interval).floor() * ctx.checkpoint_write_secs();
        let failure_cost = failures as f64 * (interval / 2.0 + ctx.restart_secs());
        let useful = (horizon - checkpoint_cost - failure_cost).max(0.0);
        report(self, ctx, failures, ctx.degraded_samples_per_sec() * useful)
    }
}

/// Elastic shrink-and-rebalance: after a failure the survivors re-shard
/// the model (the `recsim-shard` ladder pre-computed in the context) and
/// continue at reduced throughput instead of waiting for a replacement.
/// No work is lost; each shrink pays the rebalance cost once.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElasticShrink;

impl RecoveryPolicy for ElasticShrink {
    fn name(&self) -> &'static str {
        "elastic"
    }

    fn goodput(&self, ctx: &FaultContext, failures: usize) -> GoodputReport {
        let horizon = ctx.horizon_secs();
        let segment = horizon / (failures as f64 + 1.0);
        // Segment i runs on the fleet that has absorbed i failures; every
        // segment after the first starts with a rebalance.
        let mut samples = ctx.shrink_throughput(0) * segment;
        for i in 1..=failures {
            let productive = (segment - ctx.rebalance_secs()).max(0.0);
            samples += ctx.shrink_throughput(i) * productive;
        }
        report(self, ctx, failures, samples)
    }
}

/// Looks up a policy by its [`RecoveryPolicy::name`]; `checkpoint` takes
/// the interval to run at.
pub fn policy_by_name(
    name: &str,
    checkpoint_interval_secs: f64,
) -> Option<Box<dyn RecoveryPolicy>> {
    match name {
        "fail-stop" => Some(Box::new(FailStop)),
        "checkpoint" => Some(Box::new(CheckpointRestart {
            interval_secs: checkpoint_interval_secs,
        })),
        "elastic" => Some(Box::new(ElasticShrink)),
        _ => None,
    }
}

/// All policy names, in presentation order.
pub const POLICY_NAMES: [&str; 3] = ["checkpoint", "elastic", "fail-stop"];

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FaultContext {
        FaultContext::from_parts(
            "test",
            86_400.0,
            1000.0,
            900.0,
            30.0,
            150.0,
            vec![780.0, 660.0, 540.0],
            330.0,
        )
        .expect("valid parts")
    }

    #[test]
    fn zero_failures_cost_only_checkpoints() {
        let ctx = ctx();
        let fs = FailStop.goodput(&ctx, 0);
        let el = ElasticShrink.goodput(&ctx, 0);
        let cp = CheckpointRestart {
            interval_secs: 3_600.0,
        }
        .goodput(&ctx, 0);
        // Fail-stop and elastic run clean; checkpointing pays its writes.
        assert!((fs.useful_fraction - 1.0).abs() < 1e-12);
        assert!((el.useful_fraction - 1.0).abs() < 1e-12);
        assert!(cp.useful_fraction < 1.0);
        assert!(cp.useful_fraction > 0.98, "24 writes of 30 s in a day");
    }

    #[test]
    fn every_policy_is_monotone_in_failures() {
        let ctx = ctx();
        let policies: Vec<Box<dyn RecoveryPolicy>> = vec![
            Box::new(FailStop),
            Box::new(CheckpointRestart {
                interval_secs: 1_800.0,
            }),
            Box::new(ElasticShrink),
        ];
        for policy in &policies {
            let mut last = f64::INFINITY;
            for n in 0..40 {
                let g = policy.goodput(&ctx, n).goodput_samples_per_sec;
                assert!(
                    g <= last + 1e-9,
                    "{} rose at n={n}: {g} after {last}",
                    policy.name()
                );
                last = g;
            }
        }
    }

    #[test]
    fn checkpoint_interval_has_an_interior_optimum() {
        let ctx = ctx();
        // 4 failures in a day ≈ 6 h MTBF. Sweep intervals across two
        // orders of magnitude; the best must be strictly interior.
        let intervals: Vec<f64> = (0..40).map(|i| 120.0 * 1.2_f64.powi(i)).collect();
        let goodputs: Vec<f64> = intervals
            .iter()
            .map(|&tau| {
                CheckpointRestart { interval_secs: tau }
                    .goodput(&ctx, 4)
                    .goodput_samples_per_sec
            })
            .collect();
        let best = goodputs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty sweep");
        assert!(
            best > 0 && best < intervals.len() - 1,
            "optimum at edge: {best}"
        );
        // And Young's formula lands near it.
        let tau_star = CheckpointRestart::optimal_interval(&ctx, 21_600.0);
        assert!(tau_star > intervals[best] / 3.0 && tau_star < intervals[best] * 3.0);
    }

    #[test]
    fn elastic_beats_fail_stop_under_frequent_failures() {
        let ctx = ctx();
        for n in 2..20 {
            let el = ElasticShrink.goodput(&ctx, n).goodput_samples_per_sec;
            let fs = FailStop.goodput(&ctx, n).goodput_samples_per_sec;
            assert!(el > fs, "n={n}: elastic {el} vs fail-stop {fs}");
        }
    }

    #[test]
    fn policy_lookup_round_trips() {
        for name in POLICY_NAMES {
            let policy = policy_by_name(name, 3_600.0).expect("known name");
            assert_eq!(policy.name(), name);
        }
        assert!(policy_by_name("wishful-thinking", 3_600.0).is_none());
    }
}
