//! Bridging fault schedules into the DES: a [`SlowdownField`] turns the
//! time-averaged degradation of a [`FaultSchedule`](crate::FaultSchedule)
//! into a [`Perturbation`] the engine applies per task.
//!
//! The DES simulates one steady-state iteration (milliseconds); the fault
//! horizon spans hours. Rather than replaying episodes inside the
//! iteration, the field stretches every task on a degraded resource by the
//! reciprocal of that resource's time-averaged effective rate — the
//! mean-field view of "this GPU spent 20% of the day at 60% speed".
//! Stretch factors are fixed per resource name before simulation, so a
//! perturbed run is exactly as deterministic as an unperturbed one.

use crate::FaultSchedule;
use recsim_hw::units::Duration;
use recsim_sim::{Perturbation, TaskCategory};

/// A per-resource duration stretch derived from a fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownField {
    /// `(resource name, effective rate in (0, 1])`, sorted by name.
    rates: Vec<(String, f64)>,
}

impl SlowdownField {
    /// Builds the field from a schedule's time-averaged slowdowns.
    pub fn from_schedule(schedule: &FaultSchedule) -> SlowdownField {
        SlowdownField {
            rates: schedule.slowdown_factors(),
        }
    }

    /// A field that perturbs nothing (the healthy baseline).
    pub fn healthy() -> SlowdownField {
        SlowdownField { rates: Vec::new() }
    }

    /// The effective rate of a resource: `1.0` unless degraded.
    pub fn rate_of(&self, resource: &str) -> f64 {
        self.rates
            .iter()
            .find(|(name, _)| name == resource)
            .map_or(1.0, |(_, rate)| *rate)
    }

    /// Whether the field perturbs anything at all.
    pub fn is_healthy(&self) -> bool {
        self.rates.is_empty()
    }
}

impl Perturbation for SlowdownField {
    fn perturbed_duration(
        &self,
        resource: Option<&str>,
        _category: TaskCategory,
        base: Duration,
    ) -> Duration {
        match resource {
            Some(name) => {
                let rate = self.rate_of(name);
                if rate >= 1.0 {
                    base
                } else {
                    // rate is validated > 0 upstream (RV032 factor range).
                    base * (1.0 / rate)
                }
            }
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultConfig;

    #[test]
    fn healthy_field_is_the_identity() {
        let field = SlowdownField::healthy();
        let base = Duration::from_millis(3.0);
        assert_eq!(
            field.perturbed_duration(Some("gpu0"), TaskCategory::MlpCompute, base),
            base
        );
        assert_eq!(
            field.perturbed_duration(None, TaskCategory::Framework, base),
            base
        );
        assert!(field.is_healthy());
    }

    #[test]
    fn degraded_resources_stretch_and_others_do_not() {
        let schedule = FaultSchedule::generate(&FaultConfig::default(), 8).expect("valid");
        let field = SlowdownField::from_schedule(&schedule);
        assert!(!field.is_healthy(), "default config degrades something");
        let base = Duration::from_millis(2.0);
        let mut stretched_any = false;
        for (resource, rate) in schedule.slowdown_factors() {
            let out = field.perturbed_duration(Some(&resource), TaskCategory::MlpCompute, base);
            assert!(
                (out.as_secs() - base.as_secs() / rate).abs() < 1e-12,
                "{resource}: {} vs {}",
                out.as_secs(),
                base.as_secs() / rate
            );
            stretched_any |= out > base;
        }
        assert!(stretched_any);
        // A resource no fault ever touched keeps its nominal duration.
        assert_eq!(
            field.perturbed_duration(Some("host_cpu"), TaskCategory::HostStaging, base),
            base
        );
    }
}
