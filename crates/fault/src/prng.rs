//! Counter-based pseudo-randomness for fault schedules.
//!
//! Fault injection must be reproducible to the byte: the same
//! `(seed, resource, event index)` triple yields the same draw on every
//! machine, at every thread count, in every sweep order. A stateful RNG
//! cannot promise that — its output depends on how many draws other code
//! made before yours — so this module uses a *counter* construction
//! instead: every draw is a pure hash of its coordinates, in the style of
//! splitmix64. There is no wall clock and no global state anywhere.

/// The splitmix64 finalizer: a bijective avalanche over `u64`.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream id for a resource name — FNV-1a over its bytes,
/// so `"gpu3"` draws from a different stream than `"nvlink"` regardless of
/// registration order.
pub fn stream_id(resource: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in resource.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A uniform draw in `[0, 1)` keyed on `(seed, stream, index)`.
pub fn unit_f64(seed: u64, stream: u64, index: u64) -> f64 {
    let mixed = splitmix64(
        seed.wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(splitmix64(stream))
            .wrapping_add(index.wrapping_mul(0xE703_7ED1_A0B4_28DB)),
    );
    // 53 high bits → the full double-precision lattice in [0, 1).
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// An exponential inter-arrival draw with the given mean, keyed on
/// `(seed, stream, index)`. Inverse-CDF sampling keeps the draw a pure
/// function of its coordinates, and the arrival *times* it builds scale
/// linearly with `mean` — which is what makes the in-horizon failure count
/// monotone in the failure rate.
pub fn exponential(seed: u64, stream: u64, index: u64, mean: f64) -> f64 {
    let u = unit_f64(seed, stream, index);
    // u < 1 always, so ln(1 - u) is finite and non-positive.
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_coordinates() {
        assert_eq!(unit_f64(7, 3, 0), unit_f64(7, 3, 0));
        assert_ne!(unit_f64(7, 3, 0), unit_f64(7, 3, 1));
        assert_ne!(unit_f64(7, 3, 0), unit_f64(8, 3, 0));
        assert_ne!(unit_f64(7, 3, 0), unit_f64(7, 4, 0));
    }

    #[test]
    fn unit_draws_live_in_the_half_open_interval() {
        for i in 0..10_000 {
            let u = unit_f64(42, 1, i);
            assert!((0.0..1.0).contains(&u), "draw {i} out of range: {u}");
        }
    }

    #[test]
    fn unit_draws_are_roughly_uniform() {
        let n = 20_000;
        let mean = (0..n).map(|i| unit_f64(9, 2, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_scales_linearly_with_its_mean() {
        for i in 0..100 {
            let short = exponential(5, 11, i, 10.0);
            let long = exponential(5, 11, i, 1000.0);
            assert!(short >= 0.0);
            assert!((long / short - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stream_ids_separate_resource_names() {
        assert_ne!(stream_id("gpu0"), stream_id("gpu1"));
        assert_ne!(stream_id("nvlink"), stream_id("nic"));
        assert_eq!(stream_id("pcie3"), stream_id("pcie3"));
    }
}
