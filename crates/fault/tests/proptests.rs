//! Property tests for the fault layer (ISSUE 5 satellite): (i) every
//! recovery policy's goodput is monotone non-increasing in the failure
//! rate, both through the policy algebra directly and end to end through
//! MTBF → schedule → failure count; (ii) a fixed `(seed, mtbf)` fault
//! schedule is byte-identical no matter how many threads generate it.

use proptest::prelude::*;
use recsim_fault::{
    CheckpointRestart, ElasticShrink, FailStop, FaultConfig, FaultContext, FaultSchedule,
    RecoveryPolicy,
};

fn policies(interval_secs: f64) -> Vec<Box<dyn RecoveryPolicy>> {
    vec![
        Box::new(FailStop),
        Box::new(CheckpointRestart { interval_secs }),
        Box::new(ElasticShrink),
    ]
}

/// A context from arbitrary-but-sane parts; the ladder is whatever the
/// strategy produced (from_parts clamps it non-increasing).
fn context_strategy() -> impl Strategy<Value = FaultContext> {
    (
        1_000.0..200_000.0_f64,                            // horizon
        10.0..5_000.0_f64,                                 // baseline throughput
        0.1..1.0_f64,                                      // degraded fraction of baseline
        0.0..600.0_f64,                                    // checkpoint write
        0.0..1_000.0_f64,                                  // restart
        proptest::collection::vec(1.0..5_000.0_f64, 0..5), // shrink ladder
        0.0..1_500.0_f64,                                  // rebalance
    )
        .prop_map(|(h, base, frac, c, r, shrink, b)| {
            FaultContext::from_parts("prop", h, base, base * frac, c, r, shrink, b)
                .expect("parts in range")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (i-a) Policy algebra: goodput never rises with the failure count.
    #[test]
    fn goodput_is_monotone_in_failure_count(
        ctx in context_strategy(),
        interval in 60.0..20_000.0_f64,
    ) {
        for policy in policies(interval) {
            let mut last = f64::INFINITY;
            for n in 0..30 {
                let g = policy.goodput(&ctx, n).goodput_samples_per_sec;
                prop_assert!(
                    g <= last + 1e-9,
                    "{} rose at n={n}: {g} after {last}",
                    policy.name()
                );
                last = g;
            }
        }
    }

    /// (i-b) End to end: a shorter MTBF (higher failure rate) never yields
    /// more goodput, because arrival times scale linearly with the MTBF so
    /// the in-horizon failure count is monotone.
    #[test]
    fn goodput_is_monotone_in_failure_rate(
        ctx in context_strategy(),
        seed in 0..u64::MAX / 2,
        interval in 60.0..20_000.0_f64,
    ) {
        let base = FaultConfig {
            seed,
            horizon_secs: 86_400.0,
            ..FaultConfig::default()
        };
        for policy in policies(interval) {
            // Longer MTBF ⇒ fewer failures ⇒ goodput must not drop, so walk
            // the MTBFs ascending and require a non-decreasing sequence.
            let mut last = f64::NEG_INFINITY;
            for mtbf in [1_800.0, 3_600.0, 7_200.0, 14_400.0, 28_800.0, 57_600.0] {
                let schedule = FaultSchedule::generate(&base.with_device_mtbf(mtbf), 8)
                    .expect("valid config");
                let g = policy
                    .goodput(&ctx, schedule.device_failures())
                    .goodput_samples_per_sec;
                prop_assert!(
                    g >= last - 1e-9,
                    "{} dropped at mtbf {mtbf}: {g} after {last}",
                    policy.name()
                );
                last = g;
            }
        }
    }

    /// (ii) Schedule generation is thread-count invariant: generating a
    /// sweep of schedules on 1, 2, and 4 workers yields byte-identical
    /// JSON in the same order.
    #[test]
    fn schedules_are_thread_count_invariant(
        seed in 0..u64::MAX / 2,
        gpus in 1_usize..16,
    ) {
        let mtbfs: Vec<f64> = (1..9).map(|i| 1_800.0 * i as f64).collect();
        let base = FaultConfig { seed, ..FaultConfig::default() };
        let generate = |mtbf: &f64| {
            let schedule = FaultSchedule::generate(&base.with_device_mtbf(*mtbf), gpus)
                .expect("valid config");
            serde_json::to_string(&schedule).expect("schedules serialize")
        };
        let serial: Vec<String> = mtbfs.iter().map(generate).collect();
        for threads in [1, 2, 4] {
            let parallel = recsim_pool::par_map_with(&mtbfs, threads, generate);
            prop_assert_eq!(&serial, &parallel, "threads={}", threads);
        }
    }
}

/// Deterministic (non-proptest) spot check: same seed, same bytes, run to
/// run — the anchor the CI determinism job relies on.
#[test]
fn fixed_seed_schedule_is_stable() {
    let config = FaultConfig::default();
    let a = serde_json::to_string(&FaultSchedule::generate(&config, 8).expect("valid config"))
        .expect("serializes");
    let b = serde_json::to_string(&FaultSchedule::generate(&config, 8).expect("valid config"))
        .expect("serializes");
    assert_eq!(a, b);
    assert!(
        FaultSchedule::generate(&config, 8)
            .expect("valid config")
            .device_failures()
            > 0,
        "the default environment fails at least one device per day"
    );
}
