//! Canonical state digests: FNV-1a 64 over little-endian bytes, finished
//! through a splitmix64 mixer.
//!
//! The digest is *not* cryptographic — it is a cheap, dependency-free,
//! portable fingerprint whose only job is to be byte-order-canonical: two
//! runs that produced the same values in the same order produce the same
//! digest on any platform, and a single flipped bit (e.g. one float rounded
//! differently because a parallel reduction reassociated) flips roughly half
//! the output bits, so divergences never cancel out silently.
//!
//! Canonical form: every value is serialized to little-endian bytes before
//! hashing; floats go through their IEEE-754 bit patterns (`to_bits`), so
//! `-0.0` and `+0.0` digest differently and NaN payloads are observable —
//! exactly what a determinism check wants. Variable-length values (strings,
//! slices) are length-prefixed so concatenation ambiguities cannot collide.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The splitmix64 finalizer: a full-avalanche bijective mixer, so digests
/// of short inputs (a single `u64`) still differ in ~half their bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An incremental state digest. Feed values in pipeline order, then
/// [`finish`](StateDigest::finish).
#[derive(Debug, Clone)]
pub struct StateDigest {
    state: u64,
}

impl Default for StateDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl StateDigest {
    /// A fresh digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Hashes raw bytes (FNV-1a per byte).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Hashes a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes an `i64` as little-endian two's-complement bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hashes an `f32` via its IEEE-754 bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Hashes an `f64` via its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Hashes a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Hashes a string, length-prefixed.
    pub fn write_str(&mut self, v: &str) {
        self.write_usize(v.len());
        self.write_bytes(v.as_bytes());
    }

    /// The finalized digest (splitmix64 over the FNV state). Does not
    /// consume the digest, so intermediate checkpoints are possible.
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

/// Values that know how to feed themselves to a [`StateDigest`] in
/// canonical form.
pub trait Digestible {
    /// Appends this value's canonical bytes to the digest.
    fn digest_into(&self, d: &mut StateDigest);

    /// One-shot digest of this value alone.
    fn digest(&self) -> u64 {
        let mut d = StateDigest::new();
        self.digest_into(&mut d);
        d.finish()
    }
}

macro_rules! digest_via {
    ($($t:ty => $m:ident),* $(,)?) => {
        $(impl Digestible for $t {
            fn digest_into(&self, d: &mut StateDigest) {
                d.$m(*self);
            }
        })*
    };
}

digest_via! {
    u8 => write_u8,
    u32 => write_u32,
    u64 => write_u64,
    i64 => write_i64,
    usize => write_usize,
    f32 => write_f32,
    f64 => write_f64,
    bool => write_bool,
}

impl Digestible for u16 {
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_u32(u32::from(*self));
    }
}

impl Digestible for i32 {
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_i64(i64::from(*self));
    }
}

impl Digestible for str {
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_str(self);
    }
}

impl Digestible for String {
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_str(self);
    }
}

impl<T: Digestible + ?Sized> Digestible for &T {
    fn digest_into(&self, d: &mut StateDigest) {
        (*self).digest_into(d);
    }
}

impl<T: Digestible> Digestible for [T] {
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_usize(self.len());
        for v in self {
            v.digest_into(d);
        }
    }
}

impl<T: Digestible> Digestible for Vec<T> {
    fn digest_into(&self, d: &mut StateDigest) {
        self.as_slice().digest_into(d);
    }
}

impl<T: Digestible> Digestible for Option<T> {
    fn digest_into(&self, d: &mut StateDigest) {
        match self {
            None => d.write_u8(0),
            Some(v) => {
                d.write_u8(1);
                v.digest_into(d);
            }
        }
    }
}

impl<A: Digestible, B: Digestible> Digestible for (A, B) {
    fn digest_into(&self, d: &mut StateDigest) {
        self.0.digest_into(d);
        self.1.digest_into(d);
    }
}

impl<A: Digestible, B: Digestible, C: Digestible> Digestible for (A, B, C) {
    fn digest_into(&self, d: &mut StateDigest) {
        self.0.digest_into(d);
        self.1.digest_into(d);
        self.2.digest_into(d);
    }
}

/// Digest of an `f32` slice (bit patterns, length-prefixed). The common
/// case — dense activations, losses, partial sums — gets a named helper.
pub fn digest_f32_slice(values: &[f32]) -> u64 {
    values.digest()
}

/// Digest of an `f64` slice (bit patterns, length-prefixed).
pub fn digest_f64_slice(values: &[f64]) -> u64 {
    values.digest()
}

/// Digest of a simulation report's result-bearing fields, kept here (below
/// the sim crate) so every simulator digests reports identically: setup
/// label, iteration time, examples per iteration, and per-resource
/// utilizations in schedule order.
pub fn digest_report(
    setup: &str,
    iteration_time_secs: f64,
    examples_per_iteration: f64,
    utilizations: &[(String, f64)],
) -> u64 {
    let mut d = StateDigest::new();
    d.write_str(setup);
    d.write_f64(iteration_time_secs);
    d.write_f64(examples_per_iteration);
    d.write_usize(utilizations.len());
    for (name, frac) in utilizations {
        d.write_str(name);
        d.write_f64(*frac);
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_equal_digests() {
        let a = digest_f32_slice(&[1.0, 2.5, -3.25]);
        let b = digest_f32_slice(&[1.0, 2.5, -3.25]);
        assert_eq!(a, b);
    }

    #[test]
    fn order_matters() {
        assert_ne!(digest_f32_slice(&[1.0, 2.0]), digest_f32_slice(&[2.0, 1.0]));
        assert_ne!("ab".digest(), "ba".digest());
    }

    #[test]
    fn single_bit_flips_are_visible() {
        let base = 1.0f32;
        let tweaked = f32::from_bits(base.to_bits() ^ 1);
        assert_ne!(digest_f32_slice(&[base]), digest_f32_slice(&[tweaked]));
        assert_ne!(digest_f32_slice(&[0.0]), digest_f32_slice(&[-0.0]));
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let one = vec![vec![1u32, 2], vec![3u32]];
        let two = vec![vec![1u32], vec![2u32, 3]];
        assert_ne!(one.digest(), two.digest());
        assert_ne!(digest_f32_slice(&[]), digest_f32_slice(&[0.0]));
    }

    #[test]
    fn composite_values_digest() {
        let report = digest_report("gpu/big-basin", 0.125, 512.0, &[("gpu0".to_string(), 0.9)]);
        let other = digest_report("gpu/big-basin", 0.125, 512.0, &[("gpu0".to_string(), 0.91)]);
        assert_ne!(report, other);
        assert_ne!(Some(1u64).digest(), None::<u64>.digest());
        assert_ne!((1u32, 2u32).digest(), (2u32, 1u32).digest());
    }
}
