//! The stage recorder: an ordered stream of `(stage, point, digest)`
//! entries plus the divergence comparator.
//!
//! Ordering is the whole game. Entries recorded on the caller thread go
//! straight to a global stream; entries recorded inside a parallel sweep
//! closure are captured in a thread-local *point scope* (see
//! [`with_point_scope`]) and re-emitted serially in submission order by the
//! pool once all points finished ([`emit_point`]). That makes the stream a
//! pure function of the work submitted — never of worker interleaving — so
//! two runs of the same driver at different `RECSIM_THREADS` produce
//! entry-for-entry comparable streams, and the first index where they
//! disagree localizes the divergence to a stage and sweep point.
//!
//! Recording is off by default and costs one relaxed atomic load per call
//! site when disabled; `recsim verify --detsan` flips it on around each
//! instrumented run.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::digest::StateDigest;

/// One recorded pipeline-stage checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageEntry {
    /// Stage label, e.g. `data/batch`, `sim/taskgraph`, `train/run`.
    pub stage: String,
    /// The sweep point (submission index) this entry was recorded under,
    /// if it happened inside a parallel sweep closure.
    pub point: Option<u64>,
    /// The canonical state digest at this checkpoint.
    pub digest: u64,
}

impl fmt::Display for StageEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.point {
            Some(p) => write!(f, "{} [point {p}] {:#018x}", self.stage, self.digest),
            None => write!(f, "{} {:#018x}", self.stage, self.digest),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STREAM: Mutex<Vec<StageEntry>> = Mutex::new(Vec::new());

thread_local! {
    /// Stack of open point scopes on this thread (a stack because sweeps
    /// nest: `run --all` sweeps drivers, each driver sweeps its grid).
    static SCOPES: RefCell<Vec<Vec<StageEntry>>> = const { RefCell::new(Vec::new()) };
}

/// Turns recording on or off process-wide. Callers should drain between
/// runs; disabling does not clear the stream.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is on. Instrumentation sites check this before doing
/// any digest work, so the disabled cost is one relaxed load.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn push(entry: StageEntry) {
    let routed_local = SCOPES.with(|s| {
        let mut scopes = s.borrow_mut();
        match scopes.last_mut() {
            Some(scope) => {
                scope.push(entry.clone());
                true
            }
            None => false,
        }
    });
    if !routed_local {
        STREAM
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(entry);
    }
}

/// Records a stage checkpoint. No-op while recording is disabled.
pub fn record(stage: &str, digest: u64) {
    if !enabled() {
        return;
    }
    push(StageEntry {
        stage: stage.to_string(),
        point: None,
        digest,
    });
}

struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        // Unwind path only: discard the half-built scope so a panicking
        // closure does not leave the stack misaligned.
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with a fresh point scope on this thread: every [`record`] made
/// inside lands in the returned buffer instead of the global stream. The
/// pool wraps each parallel work item in one of these and re-emits the
/// buffers serially in submission order via [`emit_point`].
pub fn with_point_scope<R>(f: impl FnOnce() -> R) -> (R, Vec<StageEntry>) {
    SCOPES.with(|s| s.borrow_mut().push(Vec::new()));
    let guard = ScopeGuard;
    let out = f();
    std::mem::forget(guard);
    let entries = SCOPES.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    (out, entries)
}

/// Re-emits a completed point's captured entries in submission order,
/// tagging them with the point index, then appends one `sweep/point`
/// summary entry combining them — so even an un-instrumented closure
/// leaves a positional skeleton in the stream. Nested entries that already
/// carry a point index (from an inner sweep) keep it.
pub fn emit_point(point: u64, entries: Vec<StageEntry>) {
    if !enabled() {
        return;
    }
    let mut combined = StateDigest::new();
    combined.write_usize(entries.len());
    for mut entry in entries {
        combined.write_str(&entry.stage);
        combined.write_u64(entry.digest);
        if entry.point.is_none() {
            entry.point = Some(point);
        }
        push(entry);
    }
    push(StageEntry {
        stage: "sweep/point".to_string(),
        point: Some(point),
        digest: combined.finish(),
    });
}

/// Takes the recorded stream, leaving it empty. Call before a run to clear
/// leftovers and after it to collect.
pub fn drain() -> Vec<StageEntry> {
    std::mem::take(&mut *STREAM.lock().unwrap_or_else(PoisonError::into_inner))
}

/// How two streams first disagree at [`Divergence::index`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Same stage and point, different digest — the stage computed
    /// different values.
    DigestMismatch {
        /// Digest in the left (reference) stream.
        left: u64,
        /// Digest in the right stream.
        right: u64,
    },
    /// The streams recorded different stages or points at this index —
    /// control flow itself diverged (e.g. a thread-count-dependent task
    /// decomposition).
    StageMismatch {
        /// Entry in the left (reference) stream.
        left: StageEntry,
        /// Entry in the right stream.
        right: StageEntry,
    },
    /// One stream ended early.
    LengthMismatch {
        /// Entries in the left (reference) stream.
        left: usize,
        /// Entries in the right stream.
        right: usize,
    },
}

/// The first index where two digest streams disagree, localized to a stage
/// and sweep point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index into both streams of the first disagreement.
    pub index: usize,
    /// Stage label at the divergence (the left stream's, when stages differ).
    pub stage: String,
    /// Sweep point at the divergence, if the entry was inside a sweep.
    pub point: Option<u64>,
    /// What kind of disagreement.
    pub kind: DivergenceKind,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at entry {}: stage `{}`",
            self.index, self.stage
        )?;
        if let Some(p) = self.point {
            write!(f, ", sweep point {p}")?;
        }
        match &self.kind {
            DivergenceKind::DigestMismatch { left, right } => {
                write!(f, ": digest {left:#018x} vs {right:#018x}")
            }
            DivergenceKind::StageMismatch { left, right } => {
                write!(f, ": stream shape differs — `{left}` vs `{right}`")
            }
            DivergenceKind::LengthMismatch { left, right } => {
                write!(f, ": stream ends — {left} vs {right} entries")
            }
        }
    }
}

/// Compares two stage streams entry by entry and reports the first
/// disagreement, or `None` when they match exactly.
pub fn first_divergence(left: &[StageEntry], right: &[StageEntry]) -> Option<Divergence> {
    for (i, (l, r)) in left.iter().zip(right.iter()).enumerate() {
        if l.stage != r.stage || l.point != r.point {
            return Some(Divergence {
                index: i,
                stage: l.stage.clone(),
                point: l.point,
                kind: DivergenceKind::StageMismatch {
                    left: l.clone(),
                    right: r.clone(),
                },
            });
        }
        if l.digest != r.digest {
            return Some(Divergence {
                index: i,
                stage: l.stage.clone(),
                point: l.point,
                kind: DivergenceKind::DigestMismatch {
                    left: l.digest,
                    right: r.digest,
                },
            });
        }
    }
    if left.len() != right.len() {
        let i = left.len().min(right.len());
        let tail = if left.len() > right.len() {
            &left[i]
        } else {
            &right[i]
        };
        return Some(Divergence {
            index: i,
            stage: tail.stage.clone(),
            point: tail.point,
            kind: DivergenceKind::LengthMismatch {
                left: left.len(),
                right: right.len(),
            },
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stage: &str, point: Option<u64>, digest: u64) -> StageEntry {
        StageEntry {
            stage: stage.to_string(),
            point,
            digest,
        }
    }

    #[test]
    fn first_divergence_localizes() {
        let base = vec![
            entry("data/batch", None, 1),
            entry("demo/reduce", Some(2), 42),
            entry("sweep/point", Some(2), 7),
        ];
        assert_eq!(first_divergence(&base, &base.clone()), None);

        let mut digest_flip = base.clone();
        digest_flip[1].digest = 43;
        let d = first_divergence(&base, &digest_flip).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.stage, "demo/reduce");
        assert_eq!(d.point, Some(2));
        assert!(matches!(
            d.kind,
            DivergenceKind::DigestMismatch {
                left: 42,
                right: 43
            }
        ));
        assert!(d.to_string().contains("sweep point 2"));

        let mut stage_flip = base.clone();
        stage_flip[0].stage = "sim/taskgraph".to_string();
        let d = first_divergence(&base, &stage_flip).expect("diverges");
        assert_eq!(d.index, 0);
        assert!(matches!(d.kind, DivergenceKind::StageMismatch { .. }));

        let longer = base.clone();
        let d = first_divergence(&base[..2].to_vec().as_slice(), &longer).expect("diverges");
        assert_eq!(d.index, 2);
        assert!(matches!(
            d.kind,
            DivergenceKind::LengthMismatch { left: 2, right: 3 }
        ));
    }

    // Global-state behavior (enable flag, stream, scopes) lives in one test
    // so parallel test threads cannot race the process-wide recorder.
    #[test]
    fn recorder_roundtrip_and_scoping() {
        set_enabled(false);
        record("ignored", 1);
        assert!(drain().is_empty(), "disabled recorder must not record");

        set_enabled(true);
        let _ = drain();
        record("outer/a", 10);
        let ((), captured) = with_point_scope(|| {
            record("inner/x", 20);
            record("inner/y", 21);
        });
        assert_eq!(captured.len(), 2);
        assert_eq!(captured[0].stage, "inner/x");
        assert!(captured[0].point.is_none());
        emit_point(3, captured);
        record("outer/b", 11);
        let stream = drain();
        set_enabled(false);

        let stages: Vec<(&str, Option<u64>)> =
            stream.iter().map(|e| (e.stage.as_str(), e.point)).collect();
        assert_eq!(
            stages,
            vec![
                ("outer/a", None),
                ("inner/x", Some(3)),
                ("inner/y", Some(3)),
                ("sweep/point", Some(3)),
                ("outer/b", None),
            ]
        );
        // The sweep/point summary digest is a function of the captured
        // entries, so an un-instrumented closure still yields a stable one.
        assert_ne!(stream[3].digest, 0);
    }
}
