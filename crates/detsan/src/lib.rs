//! `recsim-detsan` — the determinism sanitizer runtime.
//!
//! The workspace's core invariant is that every result-producing run is
//! byte-identical at any thread count (`RECSIM_THREADS=1` vs `N`). This
//! crate is the *runtime half* of the sanitizer that enforces it (the
//! static half is lints RV015–RV018 in `recsim-verify`):
//!
//! * [`StateDigest`] / [`Digestible`] — a canonical, dependency-free
//!   fingerprint (FNV-1a 64 over little-endian bytes, splitmix64-mixed) of
//!   any pipeline value: generated batches, task graphs, schedules, loss
//!   histories, reports.
//! * the **stage recorder** ([`record`], [`with_point_scope`],
//!   [`emit_point`], [`drain`]) — an ordered stream of
//!   `(stage, sweep point, digest)` checkpoints. Parallel sweep closures
//!   record into thread-local point scopes that the pool re-emits serially
//!   in submission order, so the stream is deterministic by construction
//!   whenever the computation is.
//! * [`first_divergence`] — entry-by-entry comparison of two streams,
//!   naming the first stage and sweep point where two runs disagreed
//!   instead of a bare artifact diff.
//!
//! `recsim verify --detsan <driver>` runs a driver twice (1 thread, then
//! `N`), drains both streams, and reports the localization. Everything here
//! is disabled by default and costs one relaxed atomic load per
//! instrumentation site when off, so the hooks stay in release builds.
//!
//! This crate sits at the very bottom of the workspace DAG (even
//! `recsim-pool` depends on it) and must stay dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod recorder;

pub use digest::{digest_f32_slice, digest_f64_slice, digest_report, Digestible, StateDigest};
pub use recorder::{
    drain, emit_point, enabled, first_divergence, record, set_enabled, with_point_scope,
    Divergence, DivergenceKind, StageEntry,
};
