//! Property tests for the pool's determinism contract: results come back in
//! submission order, nothing is lost or duplicated, and a panicking task is
//! surfaced to the caller rather than wedging the pool.

use proptest::prelude::*;
use recsim_pool::par_map_with;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_equals_serial_map(
        items in proptest::collection::vec(any::<u64>(), 0..300),
        threads in 1usize..12,
    ) {
        let work = |&x: &u64| x.rotate_left(11).wrapping_mul(2654435761) ^ 0x9e3779b97f4a7c15;
        let serial: Vec<u64> = items.iter().map(work).collect();
        let parallel = par_map_with(&items, threads, work);
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn every_item_runs_exactly_once_in_order(
        len in 0usize..400,
        threads in 1usize..12,
    ) {
        let items: Vec<usize> = (0..len).collect();
        let counts: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        let out = par_map_with(&items, threads, |&i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        prop_assert_eq!(out, items);
        for count in &counts {
            prop_assert_eq!(count.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn panic_in_one_task_propagates(
        len in 1usize..200,
        threads in 1usize..12,
        victim_seed in any::<usize>(),
    ) {
        let items: Vec<usize> = (0..len).collect();
        let victim = victim_seed % len;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(&items, threads, |&i| {
                assert!(i != victim, "deliberate test panic at {i}");
                i
            })
        }));
        prop_assert!(outcome.is_err());
    }
}
