//! Scoped, work-stealing thread pool for deterministic sweep parallelism.
//!
//! Every parallel code path in the workspace routes through this crate
//! (lint RV012 bans raw `std::thread` use elsewhere), which pins down the
//! two properties the experiment harness depends on:
//!
//! * **Determinism.** [`par_map`] returns results in submission order, so a
//!   sweep folded from its output is byte-identical to the serial fold no
//!   matter how many workers ran or how work was stolen between them.
//! * **No detached threads.** All workers are scoped (`std::thread::scope`),
//!   so a panic inside a task is surfaced to the caller instead of leaving
//!   the process wedged with a half-finished sweep.
//!
//! Thread count resolution order: explicit [`set_thread_override`] (used by
//! `recsim run --threads N`), then the `RECSIM_THREADS` environment
//! variable, then [`std::thread::available_parallelism`].
//!
//! The scheduler is intentionally simple: the index space is split into
//! contiguous chunks (about four per worker) seeded round-robin into
//! per-worker deques; a worker pops from the front of its own deque and
//! steals from the back of a victim's when empty. Chunks are only ever
//! redistributed, never created, so "every deque empty" is a correct
//! termination condition.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Process-wide thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment variable consulted by [`thread_count`] when no override is set.
pub const THREADS_ENV_VAR: &str = "RECSIM_THREADS";

/// Set (or clear, with `None`) the process-wide worker-count override.
///
/// Takes precedence over `RECSIM_THREADS` and the detected core count.
/// `Some(0)` is treated as `None`.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Number of workers [`par_map`] will use: override, then `RECSIM_THREADS`,
/// then the number of available cores (at least 1).
pub fn thread_count() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Map `f` over `items` on up to [`thread_count`] workers (capped at the
/// detected core count), preserving input order.
///
/// The output is element-for-element identical to
/// `items.iter().map(f).collect()`; with one worker (or one item) that exact
/// serial path is taken. A panic in `f` is re-raised on the calling thread
/// after all workers have drained.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // CPU-bound workers gain nothing past the physical core count —
    // oversubscription only adds scheduling overhead — so a requested count
    // above the detected parallelism is capped. Outputs are worker-count
    // invariant by construction, so the cap never changes a result.
    let hardware = std::thread::available_parallelism().map_or(usize::MAX, usize::from);
    par_map_with(items, thread_count().min(hardware), f)
}

/// [`par_map`] with an explicit worker count, bypassing the global override.
///
/// Exposed so determinism tests can compare thread counts side by side
/// without racing on process-global state.
pub fn par_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if recsim_detsan::enabled() {
        return par_map_traced(items, threads, &f);
    }
    par_map_plain(items, threads, f)
}

/// Sanitizer path for [`par_map_with`]: each item runs inside a detsan
/// point scope that captures the stage digests its closure records; the
/// captured streams are then re-emitted *serially in submission order*, so
/// the recorded digest stream is identical at any worker count and a
/// divergence in the digested state itself pins the first bad sweep point.
fn par_map_traced<T, R, F>(items: &[T], threads: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let traced = par_map_plain(items, threads, |item| {
        recsim_detsan::with_point_scope(|| f(item))
    });
    let mut out = Vec::with_capacity(traced.len());
    for (idx, (result, entries)) in traced.into_iter().enumerate() {
        recsim_detsan::emit_point(idx as u64, entries);
        out.push(result);
    }
    out
}

fn par_map_plain<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let queues = seed_queues(items.len(), workers);
    let queues_ref: &[Mutex<VecDeque<Range<usize>>>] = &queues;
    let f_ref = &f;

    let mut pairs: Vec<(usize, R)> = Vec::with_capacity(items.len());
    let joined = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while let Some(range) = next_range(queues_ref, me) {
                        for idx in range {
                            local.push((idx, f_ref(&items[idx])));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect::<Vec<_>>()
    });
    for worker_result in joined {
        match worker_result {
            Ok(local) => pairs.extend(local),
            // Surface the original payload on the caller; remaining workers
            // have already been joined by the scope above.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    if pairs.len() != items.len() {
        // Unreachable by construction (chunks partition the index space and
        // are processed exactly once), but recomputing serially is a
        // correctness-preserving way to keep this path panic-free.
        return items.iter().map(f).collect();
    }
    pairs.sort_unstable_by_key(|&(idx, _)| idx);
    pairs.into_iter().map(|(_, result)| result).collect()
}

/// Run `n` long-lived workers `f(0) .. f(n-1)` to completion.
///
/// For actor-style parallelism (e.g. asynchronous EASGD trainers) where each
/// worker owns an index rather than pulling from a shared queue. Worker 0
/// runs on the calling thread; the rest are scoped threads, so a worker
/// panic propagates to the caller once all workers have finished.
pub fn scoped_workers<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let n = n.max(1);
    if n == 1 {
        f(0);
        return;
    }
    let f_ref = &f;
    std::thread::scope(|scope| {
        for worker in 1..n {
            scope.spawn(move || f_ref(worker));
        }
        f_ref(0);
    });
}

/// Split `len` indices into ~4 chunks per worker, dealt round-robin.
fn seed_queues(len: usize, workers: usize) -> Vec<Mutex<VecDeque<Range<usize>>>> {
    let chunk = (len / (workers * 4)).max(1);
    let mut plain: Vec<VecDeque<Range<usize>>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut start = 0;
    let mut turn = 0;
    while start < len {
        let end = (start + chunk).min(len);
        plain[turn % workers].push_back(start..end);
        start = end;
        turn += 1;
    }
    plain.into_iter().map(Mutex::new).collect()
}

/// Pop from our own deque's front, else steal from a victim's back.
fn next_range(queues: &[Mutex<VecDeque<Range<usize>>>], me: usize) -> Option<Range<usize>> {
    if let Some(range) = lock_queue(&queues[me]).pop_front() {
        return Some(range);
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Some(range) = lock_queue(&queues[victim]).pop_back() {
            return Some(range);
        }
    }
    None
}

/// Lock a work queue, recovering from poisoning (a panicking worker only
/// ever leaves a structurally valid deque behind).
fn lock_queue<T>(queue: &Mutex<T>) -> MutexGuard<'_, T> {
    match queue.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;

    /// Tests that touch the process-global override serialize on this lock.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn lcg_items(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            })
            .collect()
    }

    fn busy_hash(x: u64) -> u64 {
        (0..50).fold(x, |acc, i| acc.rotate_left(7) ^ acc.wrapping_mul(i + 3))
    }

    #[test]
    fn matches_serial_map_across_thread_counts() {
        for len in [0, 1, 2, 3, 7, 64, 257, 1000] {
            let items = lcg_items(len as u64 + 5, len);
            let serial: Vec<u64> = items.iter().map(|&x| busy_hash(x)).collect();
            for threads in [1, 2, 3, 8, 17] {
                let parallel = par_map_with(&items, threads, |&x| busy_hash(x));
                assert_eq!(parallel, serial, "len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn results_are_in_submission_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_with(&items, 8, |&i| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn no_item_lost_or_duplicated() {
        let items: Vec<usize> = (0..513).collect();
        let counts: Vec<AtomicU64> = (0..items.len()).map(|_| AtomicU64::new(0)).collect();
        let out = par_map_with(&items, 6, |&i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out, items);
        for (i, count) in counts.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "item {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn panic_in_task_is_surfaced_not_hung() {
        let items: Vec<usize> = (0..200).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(&items, 4, |&i| {
                assert!(i != 137, "boom at {i}");
                i
            })
        }));
        assert!(
            result.is_err(),
            "panic in a worker must propagate to the caller"
        );
    }

    #[test]
    fn scoped_workers_runs_each_index_once() {
        let hits: Vec<AtomicU64> = (0..5).map(|_| AtomicU64::new(0)).collect();
        scoped_workers(5, |w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        for (w, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::SeqCst), 1, "worker {w}");
        }
    }

    #[test]
    fn scoped_workers_single_runs_inline() {
        let hits = AtomicU64::new(0);
        scoped_workers(0, |w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn override_takes_precedence() {
        let _guard = lock_queue(&OVERRIDE_LOCK);
        set_thread_override(Some(3));
        assert_eq!(thread_count(), 3);
        set_thread_override(Some(0));
        assert!(thread_count() >= 1);
        set_thread_override(None);
        assert!(thread_count() >= 1);
    }

    #[test]
    fn env_var_is_consulted_when_no_override() {
        let _guard = lock_queue(&OVERRIDE_LOCK);
        set_thread_override(None);
        std::env::set_var(THREADS_ENV_VAR, "5");
        assert_eq!(thread_count(), 5);
        std::env::set_var(THREADS_ENV_VAR, "not-a-number");
        assert!(thread_count() >= 1);
        std::env::remove_var(THREADS_ENV_VAR);
        set_thread_override(None);
    }

    #[test]
    fn zero_sized_and_unit_types_work() {
        let items: Vec<()> = vec![(); 100];
        let out: Vec<()> = par_map_with(&items, 4, |_| ());
        assert_eq!(out.len(), 100);
    }
}
