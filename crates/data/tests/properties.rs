//! Property-based tests for workload-generation invariants.

use proptest::prelude::*;
use recsim_data::dataset::{DatasetReader, DatasetWriter};
use recsim_data::dist::{PowerLawLengths, ZipfSampler};
use recsim_data::schema::{Interaction, ModelConfig, SparseFeatureSpec};
use recsim_data::{CtrGenerator, SparseBatch};

fn arb_config() -> impl Strategy<Value = ModelConfig> {
    (1usize..64, 1usize..16, 10u64..10_000, 1usize..4).prop_map(|(dense, sparse, hash, layers)| {
        let mlp: Vec<usize> = (0..layers).map(|i| 8 << (i % 3)).collect();
        ModelConfig::test_suite(dense, sparse, hash, &mlp)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batches_always_well_formed(config in arb_config(), bs in 1usize..64, seed in 0u64..1000) {
        let mut g = CtrGenerator::new(&config, seed);
        let b = g.next_batch(bs);
        prop_assert_eq!(b.batch_size(), bs);
        prop_assert_eq!(b.dense().len(), bs * config.num_dense());
        prop_assert_eq!(b.sparse().len(), config.num_sparse());
        prop_assert_eq!(b.labels().len(), bs);
        for (f, sb) in b.sparse().iter().enumerate() {
            prop_assert_eq!(sb.batch_size(), bs);
            if let Some(max) = sb.max_index() {
                prop_assert!(u64::from(max) < config.sparse_features()[f].hash_size());
            }
            for row in sb.iter() {
                prop_assert!(!row.is_empty());
                prop_assert!(row.len() <= config.truncation() as usize);
            }
        }
        for &l in b.labels() {
            prop_assert!(l == 0.0 || l == 1.0);
        }
    }

    #[test]
    fn flops_monotone_in_dense_features(
        d1 in 1usize..512, extra in 1usize..512,
        sparse in 1usize..16,
    ) {
        let a = ModelConfig::test_suite(d1, sparse, 100, &[64, 64]);
        let b = ModelConfig::test_suite(d1 + extra, sparse, 100, &[64, 64]);
        prop_assert!(b.forward_flops_per_example() > a.forward_flops_per_example());
    }

    #[test]
    fn embedding_bytes_monotone_in_sparse_features(
        dense in 1usize..64, s1 in 1usize..32, extra in 1usize..32,
    ) {
        let a = ModelConfig::test_suite(dense, s1, 1000, &[64]);
        let b = ModelConfig::test_suite(dense, s1 + extra, 1000, &[64]);
        prop_assert!(b.total_embedding_bytes() > a.total_embedding_bytes());
        prop_assert!(b.embedding_read_bytes_per_example() > a.embedding_read_bytes_per_example());
    }

    #[test]
    fn hash_scaling_scales_table_bytes_linearly(
        config in arb_config(), factor in 2u64..100,
    ) {
        let scaled = config.with_hash_scale(factor);
        prop_assert_eq!(
            scaled.total_embedding_bytes(),
            config.total_embedding_bytes() * factor
        );
        // FLOPs are unaffected by hash size.
        prop_assert_eq!(
            scaled.forward_flops_per_example(),
            config.forward_flops_per_example()
        );
    }

    #[test]
    fn zipf_within_support(n in 1u64..100_000, s in 0.5f64..3.0, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let z = ZipfSampler::new(n, s);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn power_law_within_bounds(alpha in 1.1f64..4.0, max in 1u32..1000, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PowerLawLengths::new(alpha, max);
        for _ in 0..50 {
            let l = p.sample(&mut rng);
            prop_assert!(l >= 1 && l <= max);
        }
    }

    #[test]
    fn sparse_batch_roundtrips_through_examples(
        rows in prop::collection::vec(prop::collection::vec(0u32..1000, 0..8), 1..20),
    ) {
        let mut offsets = vec![0usize];
        let mut indices = Vec::new();
        for row in &rows {
            indices.extend_from_slice(row);
            offsets.push(indices.len());
        }
        let sb = SparseBatch::new(offsets, indices);
        prop_assert_eq!(sb.batch_size(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(sb.example(i), row.as_slice());
        }
    }

    #[test]
    fn dataset_round_trips_arbitrary_streams(
        config in arb_config(),
        sizes in prop::collection::vec(1usize..32, 0..6),
        seed in 0u64..500,
    ) {
        let mut gen = CtrGenerator::new(&config, seed);
        let batches: Vec<_> = sizes.iter().map(|&b| gen.next_batch(b)).collect();
        let mut buf = Vec::new();
        let mut w = DatasetWriter::new(
            &mut buf,
            config.num_dense() as u32,
            config.num_sparse() as u32,
        )
        .expect("header");
        for b in &batches {
            w.write_batch(b).expect("write");
        }
        w.finish().expect("flush");
        let mut r = DatasetReader::new(buf.as_slice()).expect("header");
        let mut read_back = Vec::new();
        while let Some(b) = r.next_batch().expect("read") {
            read_back.push(b);
        }
        prop_assert_eq!(read_back, batches);
    }

    #[test]
    fn interaction_dims_consistent(dense in 1usize..64, sparse in 1usize..24) {
        let dot = ModelConfig::test_suite(dense, sparse, 100, &[32]);
        prop_assert_eq!(dot.top_input_dim(), 32 + (sparse + 1) * sparse / 2);
        let concat = ModelConfig::new(
            "c", dense,
            vec![SparseFeatureSpec::new("f", 100, 2.0); sparse],
            16, vec![32], vec![16], Interaction::Concat, 32,
        );
        prop_assert_eq!(concat.top_input_dim(), 32 + sparse * 16);
    }
}
