//! Property-based tests for the reuse-distance analysis: the exact stack
//! distances must agree with a brute-force LRU simulation on small streams.

use proptest::prelude::*;
use recsim_data::trace::ReuseProfile;

/// Brute-force LRU cache simulation: returns the hit count for a given
/// capacity.
fn brute_force_lru_hits(stream: &[u32], capacity: usize) -> u64 {
    let mut stack: Vec<u32> = Vec::new(); // front = most recent
    let mut hits = 0u64;
    for &row in stream {
        if let Some(pos) = stack.iter().position(|&r| r == row) {
            if pos < capacity {
                hits += 1;
            }
            stack.remove(pos);
        }
        stack.insert(0, row);
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn profile_matches_brute_force_lru(
        stream in prop::collection::vec(0u32..20, 0..200),
        capacity in 1usize..25,
    ) {
        let profile = ReuseProfile::from_stream(&stream);
        let expected = brute_force_lru_hits(&stream, capacity);
        let got = (profile.lru_hit_rate(capacity) * stream.len().max(1) as f64).round() as u64;
        prop_assert_eq!(got, expected, "capacity {}", capacity);
    }

    #[test]
    fn accounting_identities(stream in prop::collection::vec(0u32..50, 0..300)) {
        let p = ReuseProfile::from_stream(&stream);
        prop_assert_eq!(p.total_accesses(), stream.len() as u64);
        let distinct: std::collections::HashSet<u32> = stream.iter().copied().collect();
        prop_assert_eq!(p.unique_rows(), distinct.len() as u64);
        prop_assert_eq!(p.cold_misses(), distinct.len() as u64);
        // An infinite cache hits everything except cold misses.
        let full = p.lru_hit_rate(usize::MAX);
        if !stream.is_empty() {
            let expected = 1.0 - distinct.len() as f64 / stream.len() as f64;
            prop_assert!((full - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn hit_rate_monotone_in_capacity(
        stream in prop::collection::vec(0u32..30, 1..150),
        c1 in 1usize..30,
        c2 in 1usize..30,
    ) {
        let p = ReuseProfile::from_stream(&stream);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(p.lru_hit_rate(lo) <= p.lru_hit_rate(hi) + 1e-12);
    }

    #[test]
    fn top_k_coverage_monotone_and_bounded(
        stream in prop::collection::vec(0u32..30, 1..150),
        k1 in 0usize..35,
        k2 in 0usize..35,
    ) {
        let p = ReuseProfile::from_stream(&stream);
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(p.top_k_coverage(lo) <= p.top_k_coverage(hi) + 1e-12);
        prop_assert!(p.top_k_coverage(hi) <= 1.0 + 1e-12);
        prop_assert!((p.top_k_coverage(usize::MAX) - 1.0).abs() < 1e-12);
        // Static top-k can never beat LRU-with-k... actually it can, and
        // vice versa; just assert both are valid probabilities.
        prop_assert!((0.0..=1.0).contains(&p.lru_hit_rate(lo)));
    }
}
