//! Fleet-level workload population sampling.
//!
//! Three of the paper's characterization figures describe the *population*
//! of training workflows at the datacenter rather than a single run:
//!
//! * Figure 2 — training frequency vs duration per workload class,
//! * Figure 5 — run-to-run utilization variability of one ranking model at
//!   fixed scale (attributed to config variation plus system noise),
//! * Figure 9 — histograms of trainer and parameter-server counts, with
//!   "over 40% of the workflows using the same number of trainers" while
//!   "the number of parameter servers varies greatly".
//!
//! This module samples synthetic populations with those properties.

use crate::dist::SystemNoise;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use recsim_verify::{Code, Diagnostic, Validate};
use serde::{Deserialize, Serialize};

/// A class of training workload in the fleet (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// News Feed ranking — a deep learning recommendation model; the most
    /// frequently trained class.
    NewsFeed,
    /// Search ranking — also a recommendation model, trained very often.
    Search,
    /// Language translation — RNN variants, trained less often but long.
    LanguageTranslation,
    /// Facer (face detection) — CNN variants, trained least often.
    Facer,
}

impl WorkloadClass {
    /// All classes, in the figure's order.
    pub const ALL: [WorkloadClass; 4] = [
        WorkloadClass::NewsFeed,
        WorkloadClass::Search,
        WorkloadClass::LanguageTranslation,
        WorkloadClass::Facer,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::NewsFeed => "News Feed",
            WorkloadClass::Search => "Search",
            WorkloadClass::LanguageTranslation => "Language Translation",
            WorkloadClass::Facer => "Facer",
        }
    }

    /// Whether the class is a deep learning recommendation model.
    pub fn is_recommendation(self) -> bool {
        matches!(self, WorkloadClass::NewsFeed | WorkloadClass::Search)
    }

    /// Typical trainings per week (centre of the sampled range).
    pub fn typical_trainings_per_week(self) -> f64 {
        match self {
            WorkloadClass::NewsFeed => 70.0,
            WorkloadClass::Search => 50.0,
            WorkloadClass::LanguageTranslation => 4.0,
            WorkloadClass::Facer => 1.0,
        }
    }

    /// Typical duration of one training run in hours.
    pub fn typical_duration_hours(self) -> f64 {
        match self {
            WorkloadClass::NewsFeed => 18.0,
            WorkloadClass::Search => 14.0,
            WorkloadClass::LanguageTranslation => 60.0,
            WorkloadClass::Facer => 30.0,
        }
    }
}

/// One sampled training workflow: its class, cadence and duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSample {
    /// Workload class.
    pub class: WorkloadClass,
    /// Trainings per week for this workflow.
    pub trainings_per_week: f64,
    /// Duration of one training in hours.
    pub duration_hours: f64,
}

/// One sampled run-scale configuration: server counts for a training run
/// (paper Figure 9 and Section IV.B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServerCounts {
    /// Data-parallel trainer servers.
    pub trainers: u32,
    /// Parameter servers (dense + sparse combined).
    pub parameter_servers: u32,
    /// Reader servers feeding the trainers.
    pub readers: u32,
}

/// RV029: a sampled workflow must have a positive, finite cadence and
/// duration.
impl Validate for WorkflowSample {
    fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if !(self.trainings_per_week > 0.0 && self.trainings_per_week.is_finite()) {
            diags.push(Diagnostic::error(
                Code::InvalidClusterConfig,
                format!("WorkflowSample({})", self.class.name()),
                format!(
                    "trainings_per_week {} must be positive and finite",
                    self.trainings_per_week
                ),
            ));
        }
        if !(self.duration_hours > 0.0 && self.duration_hours.is_finite()) {
            diags.push(Diagnostic::error(
                Code::InvalidClusterConfig,
                format!("WorkflowSample({})", self.class.name()),
                format!(
                    "duration_hours {} must be positive and finite",
                    self.duration_hours
                ),
            ));
        }
        diags
    }
}

/// RV029: a training run needs at least one trainer; readers below the
/// trainer count risk starving the pipeline (paper §IV.B.2), which is
/// suspicious but not invalid.
impl Validate for ServerCounts {
    fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if self.trainers == 0 {
            diags.push(Diagnostic::error(
                Code::InvalidClusterConfig,
                "ServerCounts.trainers",
                "a training run needs at least one trainer",
            ));
        }
        if self.readers < self.trainers {
            diags.push(Diagnostic::warning(
                Code::InvalidClusterConfig,
                "ServerCounts.readers",
                format!(
                    "{} reader(s) for {} trainer(s) — readers usually scale with \
                     trainers to avoid starving them",
                    self.readers, self.trainers
                ),
            ));
        }
        diags
    }
}

/// The fleet sampler. Deterministic for a given seed.
///
/// # Example
///
/// ```
/// use recsim_data::fleet::FleetSampler;
///
/// let mut fleet = FleetSampler::new(7);
/// let counts = fleet.sample_server_counts();
/// assert!(counts.trainers >= 1);
/// assert!(counts.parameter_servers >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct FleetSampler {
    rng: StdRng,
    noise: SystemNoise,
}

/// The trainer count that the plurality of workflows share; the paper's
/// Figure 9 shows one dominant bucket holding >40% of runs.
pub const COMMON_TRAINER_COUNT: u32 = 12;

impl FleetSampler {
    /// Creates a sampler.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            noise: SystemNoise::new(0.12),
        }
    }

    /// Samples one workflow for Figure 2: class-dependent cadence and
    /// duration with log-normal jitter.
    pub fn sample_workflow(&mut self, class: WorkloadClass) -> WorkflowSample {
        let jitter = LogNormal::new(0.0, 0.5).expect("fixed parameters");
        WorkflowSample {
            class,
            trainings_per_week: class.typical_trainings_per_week() * jitter.sample(&mut self.rng),
            duration_hours: class.typical_duration_hours() * jitter.sample(&mut self.rng),
        }
    }

    /// Samples the server counts of one training run.
    ///
    /// Trainer counts concentrate: ~45% of runs use
    /// [`COMMON_TRAINER_COUNT`], the rest spread geometrically ("the
    /// training throughput requirement does not change very often").
    /// Parameter-server counts vary widely ("memory capacity requirement
    /// changes frequently, which results in a wide range").
    pub fn sample_server_counts(&mut self) -> ServerCounts {
        let trainers = if self.rng.gen_bool(0.45) {
            COMMON_TRAINER_COUNT
        } else {
            // Geometric-ish spread over 1..=40, biased low.
            let u: f64 = self.rng.gen_range(0.0f64..1.0);
            (1.0 + 39.0 * u * u) as u32
        };
        let ps = {
            // Log-uniform over [2, 64]: the wide PS distribution.
            let u: f64 = self.rng.gen_range(0.0f64..1.0);
            (2.0f64 * (32.0f64).powf(u)).round() as u32
        };
        // Readers scale with trainers so reading never bottlenecks.
        let readers = (trainers * 2).max(4);
        ServerCounts {
            trainers,
            parameter_servers: ps.max(1),
            readers,
        }
    }

    /// Samples a multiplicative system-level noise factor (mean 1.0) for
    /// run-to-run hardware variability (Figure 5's residual spread).
    pub fn sample_system_noise(&mut self) -> f64 {
        self.noise.sample(&mut self.rng)
    }

    /// Samples a per-run model-configuration scale factor: ML engineers
    /// tweak feature sets run to run, shifting resource demands. Returns a
    /// factor around 1.0 with heavier spread than system noise.
    pub fn sample_config_variation(&mut self) -> f64 {
        let jitter = LogNormal::new(-0.045, 0.3).expect("fixed parameters");
        jitter.sample(&mut self.rng)
    }

    /// Samples a whole month of runs (Figure 9's data volume).
    pub fn sample_month_of_runs(&mut self, runs: usize) -> Vec<ServerCounts> {
        (0..runs).map(|_| self.sample_server_counts()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendation_models_train_most_frequently() {
        // Figure 2's headline: recommendation models are the most
        // frequently trained workloads.
        for class in WorkloadClass::ALL {
            if !class.is_recommendation() {
                assert!(
                    class.typical_trainings_per_week()
                        < WorkloadClass::NewsFeed.typical_trainings_per_week()
                );
            }
        }
    }

    #[test]
    fn trainer_mode_exceeds_forty_percent() {
        let mut fleet = FleetSampler::new(1);
        let runs = fleet.sample_month_of_runs(5000);
        let common = runs
            .iter()
            .filter(|r| r.trainers == COMMON_TRAINER_COUNT)
            .count();
        let frac = common as f64 / runs.len() as f64;
        assert!(frac > 0.40, "mode fraction {frac:.2} must exceed 0.40");
    }

    #[test]
    fn ps_counts_vary_more_than_trainer_counts() {
        let mut fleet = FleetSampler::new(2);
        let runs = fleet.sample_month_of_runs(5000);
        let cv = |xs: Vec<f64>| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
            var.sqrt() / mean
        };
        let cv_tr = cv(runs.iter().map(|r| r.trainers as f64).collect());
        let cv_ps = cv(runs.iter().map(|r| r.parameter_servers as f64).collect());
        assert!(
            cv_ps > cv_tr,
            "PS spread (cv={cv_ps:.2}) must exceed trainer spread (cv={cv_tr:.2})"
        );
    }

    #[test]
    fn server_counts_positive() {
        let mut fleet = FleetSampler::new(3);
        for _ in 0..1000 {
            let c = fleet.sample_server_counts();
            assert!(c.trainers >= 1 && c.trainers <= 40 || c.trainers == COMMON_TRAINER_COUNT);
            assert!(c.parameter_servers >= 1);
            assert!(c.readers >= c.trainers);
        }
    }

    #[test]
    fn noise_factors_are_positive_and_centered() {
        let mut fleet = FleetSampler::new(4);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let f = fleet.sample_system_noise();
            assert!(f > 0.0);
            sum += f;
        }
        assert!((sum / n as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn sampled_configs_validate() {
        let mut fleet = FleetSampler::new(11);
        for _ in 0..200 {
            assert!(fleet.sample_server_counts().check().is_ok());
            assert!(fleet.sample_workflow(WorkloadClass::Search).check().is_ok());
        }
        let no_trainers = ServerCounts {
            trainers: 0,
            parameter_servers: 4,
            readers: 4,
        };
        let err = no_trainers.check().expect_err("zero trainers");
        assert!(err.has_code(Code::InvalidClusterConfig));
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = FleetSampler::new(9);
        let mut b = FleetSampler::new(9);
        assert_eq!(a.sample_server_counts(), b.sample_server_counts());
    }

    #[test]
    fn workflow_samples_follow_class_centres() {
        let mut fleet = FleetSampler::new(5);
        let n = 2000;
        let mean_freq: f64 = (0..n)
            .map(|_| {
                fleet
                    .sample_workflow(WorkloadClass::NewsFeed)
                    .trainings_per_week
            })
            .sum::<f64>()
            / n as f64;
        // LogNormal(0, 0.5) has mean exp(0.125) ≈ 1.13.
        let expected = WorkloadClass::NewsFeed.typical_trainings_per_week() * 1.13;
        assert!((mean_freq / expected - 1.0).abs() < 0.15);
    }
}
