//! Synthetic recommendation workloads for `recsim`.
//!
//! The paper characterizes *production* data — click logs read from Hive,
//! three production models M1/M2/M3, and a fleet of training workflows. None
//! of that is public, but every experiment in the paper depends only on
//! *statistics* of the workload that the paper does disclose. This crate
//! regenerates workloads from those statistics:
//!
//! * [`schema`] — the model-architecture configuration space of Section III
//!   (dense/sparse features, hash sizes, lookups per table, MLP dimensions,
//!   interaction type, batch size) plus size/FLOP geometry helpers,
//! * [`dist`] — the distribution toolbox: Zipf index popularity, truncated
//!   power-law feature lengths, log-normal hash-size spectra,
//! * [`batch`] — mini-batch containers in CSR form, the exchange format with
//!   `recsim-model`,
//! * [`dataset`] — a versioned binary on-disk format for example streams
//!   (generate once, replay anywhere),
//! * [`synthetic`] — a CTR example generator with a planted logistic teacher
//!   so that real training (Figure 15) has something to learn,
//! * [`production`] — generated stand-ins for M1/M2/M3 matching Table II and
//!   Figures 6–7,
//! * [`fleet`] — the workflow-population sampler behind Figures 2, 5 and 9,
//! * [`trace`] — embedding-access traces with reuse-distance (LRU) analysis,
//!   quantifying the caching opportunity the paper's Section III.A.2 notes,
//! * [`arrival`] — open-loop arrival-rate and popularity processes (diurnal
//!   traffic curves, per-entity Zipf draws) for the serving tier.
//!
//! # Example
//!
//! ```
//! use recsim_data::schema::ModelConfig;
//! use recsim_data::synthetic::CtrGenerator;
//!
//! let config = ModelConfig::test_suite(64, 8, 100_000, &[512, 512, 512]);
//! let mut gen = CtrGenerator::new(&config, 42);
//! let batch = gen.next_batch(16);
//! assert_eq!(batch.batch_size(), 16);
//! assert_eq!(batch.dense().len(), 16 * 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod batch;
pub mod dataset;
pub mod dist;
pub mod fleet;
pub mod production;
pub mod schema;
pub mod synthetic;
pub mod trace;

pub use arrival::{DiurnalProfile, PopularityProcess};
pub use batch::{MiniBatch, SparseBatch};
pub use dist::ZipfCdf;
pub use schema::{Interaction, ModelConfig, SparseFeatureSpec};
pub use synthetic::CtrGenerator;
