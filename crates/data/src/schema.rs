//! The model-architecture configuration space of the paper's Section III.
//!
//! A [`ModelConfig`] captures everything the paper varies when it sweeps the
//! design space: number of dense features, the set of sparse features (each
//! with a hash size and a mean number of lookups), the shared embedding
//! dimension, the bottom/top MLP stacks, and the feature-interaction type.
//! The geometry helpers (`*_flops_per_example`, `embedding_bytes`, …) are
//! the single source of truth that both the real numerics (`recsim-model`)
//! and the performance simulator (`recsim-sim`) derive their work from.

use recsim_verify::{Code, Diagnostic, Validate};
use serde::{Deserialize, Serialize};

/// Bytes per FP32 value — the paper's models train in single precision.
pub const F32_BYTES: u64 = 4;

/// Storage precision of embedding-table rows.
///
/// The paper points to "compression for these large embedding tables using
/// quantization" as an optimization opportunity (Section III.A.2, citing
/// mixed-dimension/quantized embeddings). Precision scales both the table
/// footprint and the gather traffic; arithmetic still happens in FP32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EmbeddingPrecision {
    /// 4 bytes per value (the paper's production models).
    #[default]
    Fp32,
    /// 2 bytes per value.
    Fp16,
    /// 1 byte per value (plus negligible per-row scales).
    Int8,
}

impl EmbeddingPrecision {
    /// Bytes per stored embedding value.
    pub fn bytes_per_value(self) -> u64 {
        match self {
            EmbeddingPrecision::Fp32 => 4,
            EmbeddingPrecision::Fp16 => 2,
            EmbeddingPrecision::Int8 => 1,
        }
    }
}

/// How dense and sparse representations are combined (Section III.A.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interaction {
    /// Pooled embeddings are concatenated with the bottom-MLP output.
    Concat,
    /// Pairwise dot products among sparse embeddings and the projected
    /// dense output, concatenated with the bottom-MLP output.
    DotProduct,
}

/// One sparse (categorical) feature and its embedding table (Section III.A).
///
/// # Example
///
/// ```
/// use recsim_data::schema::SparseFeatureSpec;
///
/// let f = SparseFeatureSpec::new("ad_id", 1_000_000, 12.0);
/// assert_eq!(f.hash_size(), 1_000_000);
/// assert_eq!(f.effective_lookups(32), 12.0);
/// assert_eq!(f.effective_lookups(8), 8.0); // truncation caps outliers
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseFeatureSpec {
    name: String,
    /// Number of rows in the embedding table (the hash size `m_i`).
    hash_size: u64,
    /// Mean number of activated indices (lookups) per example.
    mean_lookups: f64,
}

impl SparseFeatureSpec {
    /// Creates a sparse feature spec.
    ///
    /// # Panics
    ///
    /// Panics if `hash_size` is zero or `mean_lookups` is not positive.
    pub fn new(name: impl Into<String>, hash_size: u64, mean_lookups: f64) -> Self {
        assert!(hash_size > 0, "hash size must be positive");
        assert!(
            mean_lookups > 0.0 && mean_lookups.is_finite(),
            "mean lookups must be positive"
        );
        Self {
            name: name.into(),
            hash_size,
            mean_lookups,
        }
    }

    /// Feature name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Embedding-table row count (`m_i` in the paper).
    pub fn hash_size(&self) -> u64 {
        self.hash_size
    }

    /// Mean activated indices per example before truncation.
    pub fn mean_lookups(&self) -> f64 {
        self.mean_lookups
    }

    /// Mean lookups after applying the truncation cap the paper uses to
    /// "limit the outliers" (32 in its test suite).
    pub fn effective_lookups(&self, truncation: u32) -> f64 {
        self.mean_lookups.min(truncation as f64)
    }

    /// Size of this feature's embedding table in bytes for dimension `d`.
    pub fn table_bytes(&self, embedding_dim: usize) -> u64 {
        self.hash_size * embedding_dim as u64 * F32_BYTES
    }
}

/// A complete recommendation-model architecture configuration.
///
/// Mirrors the red-highlighted knobs of the paper's Figure 3: feature
/// counts, embedding tables, interaction type and MLP dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    name: String,
    num_dense: usize,
    sparse: Vec<SparseFeatureSpec>,
    embedding_dim: usize,
    bottom_mlp: Vec<usize>,
    top_mlp: Vec<usize>,
    interaction: Interaction,
    /// Per-feature lookup truncation (the paper's test suite uses 32).
    truncation: u32,
    /// Table index per sparse feature; identity unless features share
    /// tables (`with_shared_tables`).
    table_of: Vec<usize>,
    /// Storage precision of embedding rows.
    precision: EmbeddingPrecision,
}

impl ModelConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if there are no dense features, no MLP layers, a zero
    /// embedding dimension, or zero-width MLP layers.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        num_dense: usize,
        sparse: Vec<SparseFeatureSpec>,
        embedding_dim: usize,
        bottom_mlp: Vec<usize>,
        top_mlp: Vec<usize>,
        interaction: Interaction,
        truncation: u32,
    ) -> Self {
        assert!(num_dense > 0, "need at least one dense feature");
        assert!(embedding_dim > 0, "embedding dimension must be positive");
        assert!(
            !bottom_mlp.is_empty() && !top_mlp.is_empty(),
            "MLP stacks must be non-empty"
        );
        assert!(
            bottom_mlp.iter().chain(top_mlp.iter()).all(|&w| w > 0),
            "MLP layer widths must be positive"
        );
        assert!(truncation > 0, "truncation must be positive");
        let table_of = (0..sparse.len()).collect();
        Self {
            name: name.into(),
            num_dense,
            sparse,
            embedding_dim,
            bottom_mlp,
            top_mlp,
            interaction,
            truncation,
            table_of,
            precision: EmbeddingPrecision::Fp32,
        }
    }

    /// Returns a copy in which each listed group of sparse features shares
    /// one embedding table (Section III.A.2: "sparse features can be
    /// configured to share embedding tables to reduce the overall size of
    /// the model … this requires a shared hash sizing"). Features not
    /// mentioned keep private tables.
    ///
    /// # Panics
    ///
    /// Panics if a group references an out-of-range feature, a feature
    /// appears in two groups, or a group mixes hash sizes.
    pub fn with_shared_tables(&self, groups: &[Vec<usize>]) -> Self {
        let n = self.sparse.len();
        let mut group_of = vec![usize::MAX; n];
        for (g, members) in groups.iter().enumerate() {
            assert!(!members.is_empty(), "empty sharing group");
            let hash = self.sparse[members[0]].hash_size();
            for &f in members {
                assert!(f < n, "feature index {f} out of range");
                assert_eq!(group_of[f], usize::MAX, "feature {f} in two groups");
                assert_eq!(
                    self.sparse[f].hash_size(),
                    hash,
                    "shared tables require a shared hash sizing"
                );
                group_of[f] = g;
            }
        }
        // Assign table ids: one per group, then one per ungrouped feature.
        let mut table_of = vec![usize::MAX; n];
        let mut next = groups.len();
        for f in 0..n {
            if group_of[f] != usize::MAX {
                table_of[f] = group_of[f];
            } else {
                table_of[f] = next;
                next += 1;
            }
        }
        Self {
            name: format!("{} (shared tables)", self.name),
            table_of,
            ..self.clone()
        }
    }

    /// Returns a copy storing embeddings at the given precision.
    pub fn with_embedding_precision(&self, precision: EmbeddingPrecision) -> Self {
        Self {
            precision,
            ..self.clone()
        }
    }

    /// Storage precision of embedding rows.
    pub fn embedding_precision(&self) -> EmbeddingPrecision {
        self.precision
    }

    /// The distinct-table index backing sparse feature `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn table_of(&self, i: usize) -> usize {
        self.table_of[i]
    }

    /// Number of distinct embedding tables (≤ the number of sparse
    /// features when tables are shared).
    pub fn num_tables(&self) -> usize {
        self.table_of.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// The sparse features backed by table `t`, in feature order.
    pub fn table_features(&self, t: usize) -> Vec<usize> {
        (0..self.sparse.len())
            .filter(|&f| self.table_of[f] == t)
            .collect()
    }

    /// Hash size of distinct table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no features (out of range).
    pub fn table_hash_size(&self, t: usize) -> u64 {
        let f = *self
            .table_features(t)
            .first()
            .expect("table index out of range");
        self.sparse[f].hash_size()
    }

    /// The parameterized test-suite model of Section V: `num_sparse`
    /// identical sparse features with a shared `hash_size`, fixed embedding
    /// dimension 32, symmetric `mlp` used for both stacks, dot-product
    /// interaction and lookup truncation 32.
    ///
    /// The paper: "We fix a constant hash size for all sparse features in
    /// our model to remove potential noise … We truncate number of look-ups
    /// per table to 32."
    pub fn test_suite(num_dense: usize, num_sparse: usize, hash_size: u64, mlp: &[usize]) -> Self {
        let sparse = (0..num_sparse)
            .map(|i| SparseFeatureSpec::new(format!("sparse_{i}"), hash_size, 20.0))
            .collect();
        Self::new(
            format!("test_suite(d={num_dense},s={num_sparse},h={hash_size})"),
            num_dense,
            sparse,
            32,
            mlp.to_vec(),
            mlp.to_vec(),
            Interaction::DotProduct,
            32,
        )
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dense (continuous) input features.
    pub fn num_dense(&self) -> usize {
        self.num_dense
    }

    /// The sparse feature specs.
    pub fn sparse_features(&self) -> &[SparseFeatureSpec] {
        &self.sparse
    }

    /// Number of sparse features (= number of embedding tables when tables
    /// are not shared).
    pub fn num_sparse(&self) -> usize {
        self.sparse.len()
    }

    /// Shared embedding dimension `d`.
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Bottom (dense) MLP widths, excluding the input layer.
    pub fn bottom_mlp(&self) -> &[usize] {
        &self.bottom_mlp
    }

    /// Top MLP widths, excluding the input and the final single logit.
    pub fn top_mlp(&self) -> &[usize] {
        &self.top_mlp
    }

    /// Feature-interaction type.
    pub fn interaction(&self) -> Interaction {
        self.interaction
    }

    /// Per-feature lookup truncation cap.
    pub fn truncation(&self) -> u32 {
        self.truncation
    }

    /// Returns a copy with a different truncation cap (an ablation knob).
    pub fn with_truncation(&self, truncation: u32) -> Self {
        assert!(truncation > 0, "truncation must be positive");
        Self {
            truncation,
            ..self.clone()
        }
    }

    /// Returns a copy with every hash size scaled by `factor` (the Figure 12
    /// sweep).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn with_hash_scale(&self, factor: u64) -> Self {
        assert!(factor > 0, "hash scale factor must be positive");
        Self {
            name: format!("{} x{}h", self.name, factor),
            sparse: self
                .sparse
                .iter()
                .map(|f| SparseFeatureSpec::new(f.name(), f.hash_size() * factor, f.mean_lookups()))
                .collect(),
            ..self.clone()
        }
    }

    // ------------------------------------------------------------------
    // Geometry: sizes
    // ------------------------------------------------------------------

    /// Bytes of one stored embedding row (at the configured precision).
    pub fn row_bytes(&self) -> u64 {
        self.embedding_dim as u64 * self.precision.bytes_per_value()
    }

    /// Bytes of feature `i`'s embedding table (shared tables report the
    /// full shared size).
    pub fn table_bytes(&self, i: usize) -> u64 {
        self.sparse[i].hash_size() * self.row_bytes()
    }

    /// Total bytes of all *distinct* embedding tables (weights only);
    /// shared tables count once.
    pub fn total_embedding_bytes(&self) -> u64 {
        (0..self.num_tables())
            .map(|t| self.table_hash_size(t) * self.row_bytes())
            .sum()
    }

    /// Total MLP parameter bytes (both stacks, weights + biases).
    pub fn mlp_parameter_bytes(&self) -> u64 {
        let mut params = 0u64;
        let mut prev = self.num_dense;
        for &w in &self.bottom_mlp {
            params += (prev * w + w) as u64;
            prev = w;
        }
        let mut prev = self.top_input_dim();
        for &w in &self.top_mlp {
            params += (prev * w + w) as u64;
            prev = w;
        }
        params += (prev + 1) as u64; // final logit
        params * F32_BYTES
    }

    /// Mean total embedding lookups per example across all features, after
    /// truncation. (Table II's "Embedding Lookups" row is the per-feature
    /// mean; multiply by `num_sparse` for this total.)
    pub fn lookups_per_example(&self) -> f64 {
        self.sparse
            .iter()
            .map(|f| f.effective_lookups(self.truncation))
            .sum()
    }

    /// Mean lookups per sparse feature (Table II's "Embedding Lookups").
    pub fn mean_lookups_per_feature(&self) -> f64 {
        if self.sparse.is_empty() {
            0.0
        } else {
            self.lookups_per_example() / self.sparse.len() as f64
        }
    }

    /// The width of the vector entering the top MLP.
    pub fn top_input_dim(&self) -> usize {
        let bottom_out = *self.bottom_mlp.last().expect("non-empty bottom MLP");
        match self.interaction {
            Interaction::Concat => bottom_out + self.num_sparse() * self.embedding_dim,
            Interaction::DotProduct => {
                // Dense output is projected to d and dotted pairwise with
                // the S sparse embeddings: (S+1 choose 2) pairs, then
                // concatenated with the original bottom output.
                let n = self.num_sparse() + 1;
                bottom_out + n * (n - 1) / 2
            }
        }
    }

    // ------------------------------------------------------------------
    // Geometry: FLOPs (forward pass, per example)
    // ------------------------------------------------------------------

    /// Forward FLOPs of the bottom MLP per example (2 × MACs).
    pub fn bottom_mlp_flops_per_example(&self) -> u64 {
        let mut flops = 0u64;
        let mut prev = self.num_dense;
        for &w in &self.bottom_mlp {
            flops += 2 * (prev * w) as u64;
            prev = w;
        }
        flops
    }

    /// Forward FLOPs of the top MLP per example, including the final logit.
    pub fn top_mlp_flops_per_example(&self) -> u64 {
        let mut flops = 0u64;
        let mut prev = self.top_input_dim();
        for &w in &self.top_mlp {
            flops += 2 * (prev * w) as u64;
            prev = w;
        }
        flops + 2 * prev as u64
    }

    /// Forward FLOPs of the feature interaction per example.
    pub fn interaction_flops_per_example(&self) -> u64 {
        match self.interaction {
            Interaction::Concat => 0,
            Interaction::DotProduct => {
                let bottom_out = *self.bottom_mlp.last().expect("non-empty bottom MLP");
                let n = self.num_sparse() + 1;
                let pairs = (n * (n - 1) / 2) as u64;
                // dense->d projection + pairwise dots.
                2 * (bottom_out * self.embedding_dim) as u64 + pairs * 2 * self.embedding_dim as u64
            }
        }
    }

    /// Embedding pooling FLOPs per example (summing looked-up rows).
    pub fn pooling_flops_per_example(&self) -> u64 {
        (self.lookups_per_example() * self.embedding_dim as f64) as u64
    }

    /// Total forward FLOPs per example.
    pub fn forward_flops_per_example(&self) -> u64 {
        self.bottom_mlp_flops_per_example()
            + self.top_mlp_flops_per_example()
            + self.interaction_flops_per_example()
            + self.pooling_flops_per_example()
    }

    /// Bytes gathered from embedding tables per example (forward).
    pub fn embedding_read_bytes_per_example(&self) -> u64 {
        (self.lookups_per_example() * self.row_bytes() as f64) as u64
    }

    /// Bytes of pooled embeddings per example (what crosses links when
    /// tables live off-device: one `d`-vector per sparse feature).
    pub fn pooled_bytes_per_example(&self) -> u64 {
        self.num_sparse() as u64 * self.row_bytes()
    }

    /// Bytes of one raw input example (dense values + sparse indices + label).
    pub fn example_bytes(&self) -> u64 {
        let dense = self.num_dense as u64 * F32_BYTES;
        let sparse = (self.lookups_per_example() * 4.0) as u64; // u32 indices
        dense + sparse + F32_BYTES
    }
}

/// RV028: structural invariants of a model architecture. `ModelConfig::new`
/// upholds most of these, but configs are `Deserialize` and the `table_of`
/// sharing map can only go wrong through hand-edited serialized forms — the
/// simulators run this before costing a model.
impl Validate for ModelConfig {
    fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let at = |part: &str| format!("ModelConfig({}).{part}", self.name);
        if self.num_dense == 0 {
            diags.push(Diagnostic::error(
                Code::InvalidModelConfig,
                at("num_dense"),
                "need at least one dense feature",
            ));
        }
        if self.embedding_dim == 0 {
            diags.push(Diagnostic::error(
                Code::InvalidModelConfig,
                at("embedding_dim"),
                "embedding dimension must be positive",
            ));
        }
        if self.truncation == 0 {
            diags.push(Diagnostic::error(
                Code::InvalidModelConfig,
                at("truncation"),
                "lookup truncation must be positive",
            ));
        }
        for (part, mlp) in [("bottom_mlp", &self.bottom_mlp), ("top_mlp", &self.top_mlp)] {
            if mlp.is_empty() {
                diags.push(Diagnostic::error(
                    Code::InvalidModelConfig,
                    at(part),
                    "MLP stack must be non-empty",
                ));
            } else if mlp.contains(&0) {
                diags.push(Diagnostic::error(
                    Code::InvalidModelConfig,
                    at(part),
                    "MLP layer widths must be positive",
                ));
            }
        }
        for (i, f) in self.sparse.iter().enumerate() {
            if f.hash_size == 0 {
                diags.push(Diagnostic::error(
                    Code::InvalidModelConfig,
                    at(&format!("sparse[{i}]")),
                    format!("feature `{}` has a zero hash size", f.name),
                ));
            }
            if !(f.mean_lookups > 0.0 && f.mean_lookups.is_finite()) {
                diags.push(Diagnostic::error(
                    Code::InvalidModelConfig,
                    at(&format!("sparse[{i}]")),
                    format!(
                        "feature `{}` mean lookups {} must be positive and finite",
                        f.name, f.mean_lookups
                    ),
                ));
            }
        }
        // Table-sharing map: one entry per feature, dense table ids, and a
        // consistent hash size within each shared table.
        if self.table_of.len() != self.sparse.len() {
            diags.push(Diagnostic::error(
                Code::InvalidModelConfig,
                at("table_of"),
                format!(
                    "sharing map has {} entries for {} sparse features",
                    self.table_of.len(),
                    self.sparse.len()
                ),
            ));
        } else {
            // `num_tables` is max(table_of)+1, so ids cannot exceed it; the
            // failure mode is a *gap* — a table id nothing references.
            let num_tables = self.num_tables();
            let mut seen = vec![false; num_tables];
            for &t in &self.table_of {
                seen[t] = true;
            }
            for (t, &used) in seen.iter().enumerate() {
                if !used {
                    diags.push(Diagnostic::error(
                        Code::InvalidModelConfig,
                        at("table_of"),
                        format!("table id {t} is referenced by no feature"),
                    ));
                }
            }
            for t in 0..num_tables {
                let features = self.table_features(t);
                if let Some((&first, rest)) = features.split_first() {
                    let hash = self.sparse[first].hash_size;
                    for &f in rest {
                        if self.sparse[f].hash_size != hash {
                            diags.push(Diagnostic::error(
                                Code::InvalidModelConfig,
                                at(&format!("table_of[{f}]")),
                                "shared tables require a shared hash sizing",
                            ));
                        }
                    }
                }
            }
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ModelConfig {
        ModelConfig::test_suite(64, 8, 1000, &[128, 64])
    }

    #[test]
    fn test_suite_shape() {
        let m = small();
        assert_eq!(m.num_dense(), 64);
        assert_eq!(m.num_sparse(), 8);
        assert_eq!(m.embedding_dim(), 32);
        assert_eq!(m.truncation(), 32);
        assert_eq!(m.interaction(), Interaction::DotProduct);
    }

    #[test]
    fn table_bytes_scale_with_hash_and_dim() {
        let m = small();
        assert_eq!(m.table_bytes(0), 1000 * 32 * 4);
        assert_eq!(m.total_embedding_bytes(), 8 * 1000 * 32 * 4);
        let scaled = m.with_hash_scale(10);
        assert_eq!(
            scaled.total_embedding_bytes(),
            m.total_embedding_bytes() * 10
        );
    }

    #[test]
    fn truncation_caps_lookups() {
        let f = SparseFeatureSpec::new("f", 100, 100.0);
        assert_eq!(f.effective_lookups(32), 32.0);
        let m = small().with_truncation(4);
        assert_eq!(m.lookups_per_example(), 8.0 * 4.0);
    }

    #[test]
    fn dot_product_top_input_dim() {
        let m = small();
        // bottom out 64 + C(9,2)=36 pairs
        assert_eq!(m.top_input_dim(), 64 + 36);
    }

    #[test]
    fn concat_top_input_dim() {
        let m = ModelConfig::new(
            "c",
            16,
            vec![SparseFeatureSpec::new("a", 10, 1.0); 3],
            8,
            vec![32],
            vec![16],
            Interaction::Concat,
            32,
        );
        assert_eq!(m.top_input_dim(), 32 + 3 * 8);
        assert_eq!(m.interaction_flops_per_example(), 0);
    }

    #[test]
    fn bottom_mlp_flops() {
        let m = small();
        // 2*(64*128 + 128*64)
        assert_eq!(m.bottom_mlp_flops_per_example(), 2 * (64 * 128 + 128 * 64));
    }

    #[test]
    fn top_mlp_flops_include_logit() {
        let m = small();
        let ti = m.top_input_dim() as u64;
        assert_eq!(
            m.top_mlp_flops_per_example(),
            2 * (ti * 128 + 128 * 64) + 2 * 64
        );
    }

    #[test]
    fn more_sparse_features_more_embedding_bytes() {
        let a = ModelConfig::test_suite(64, 4, 1000, &[64]);
        let b = ModelConfig::test_suite(64, 64, 1000, &[64]);
        assert!(b.embedding_read_bytes_per_example() > a.embedding_read_bytes_per_example());
        assert!(b.pooled_bytes_per_example() > a.pooled_bytes_per_example());
    }

    #[test]
    fn mlp_parameter_bytes_counts_biases() {
        let m = ModelConfig::new(
            "p",
            4,
            vec![SparseFeatureSpec::new("a", 10, 1.0)],
            2,
            vec![3],
            vec![2],
            Interaction::Concat,
            32,
        );
        // bottom: 4*3+3 = 15; top input = 3+2=5: 5*2+2 = 12; logit: 2+1 = 3.
        assert_eq!(m.mlp_parameter_bytes(), (15 + 12 + 3) * 4);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn zero_dense_rejected() {
        ModelConfig::new(
            "bad",
            0,
            vec![],
            8,
            vec![8],
            vec![8],
            Interaction::Concat,
            32,
        );
    }

    #[test]
    fn example_bytes_positive() {
        assert!(small().example_bytes() > 64 * 4);
    }

    #[test]
    fn valid_configs_pass_validate() {
        assert!(small().check().is_ok());
        assert!(small()
            .with_shared_tables(&[vec![0, 1], vec![2, 3]])
            .check()
            .is_ok());
    }

    #[test]
    fn corrupted_sharing_map_is_rv028() {
        let mut m = small();
        // A gap in the table ids, as a hand-edited serialized config could
        // produce: feature 0 points past every other table.
        m.table_of[0] = m.num_tables() + 3;
        let err = m.check().expect_err("gapped sharing map");
        assert!(err.has_code(Code::InvalidModelConfig));
    }
}
