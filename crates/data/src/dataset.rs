//! A binary on-disk format for example streams.
//!
//! The paper's readers stream preprocessed examples from the Hive warehouse
//! to trainers. This module provides the equivalent artifact for `recsim`:
//! a compact, versioned, little-endian binary format for [`MiniBatch`]
//! streams, so workloads can be generated once and replayed (or shipped to
//! another process) instead of being resampled.
//!
//! Layout: a 16-byte header (`RSDS`, version, dense count, sparse count)
//! followed by length-prefixed batch records. Readers validate structure
//! and report typed errors instead of panicking on malformed input.

use crate::batch::{MiniBatch, SparseBatch};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RSDS";
const VERSION: u32 = 1;

/// Why reading a dataset failed.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `RSDS` magic.
    BadMagic,
    /// The stream's version is not supported.
    UnsupportedVersion(u32),
    /// A structural invariant was violated (truncated record, inconsistent
    /// offsets, …).
    Corrupt(&'static str),
    /// The stream's schema does not match the expectation.
    SchemaMismatch {
        /// Dense/sparse counts found in the header.
        found: (u32, u32),
        /// Dense/sparse counts expected.
        expected: (u32, u32),
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset I/O failed: {e}"),
            DatasetError::BadMagic => write!(f, "not a recsim dataset (bad magic)"),
            DatasetError::UnsupportedVersion(v) => {
                write!(f, "unsupported dataset version {v}")
            }
            DatasetError::Corrupt(what) => write!(f, "corrupt dataset: {what}"),
            DatasetError::SchemaMismatch { found, expected } => write!(
                f,
                "dataset schema {found:?} does not match expected {expected:?}"
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// Streams batches into a writer.
///
/// A `&mut W` can be passed wherever `W: Write` is expected, so a writer
/// borrowed from a file or buffer works directly.
///
/// # Example
///
/// ```
/// use recsim_data::dataset::{DatasetReader, DatasetWriter};
/// use recsim_data::{schema::ModelConfig, CtrGenerator};
///
/// let config = ModelConfig::test_suite(4, 2, 50, &[8]);
/// let mut gen = CtrGenerator::new(&config, 1);
/// let mut buf = Vec::new();
/// let mut writer = DatasetWriter::new(&mut buf, 4, 2)?;
/// writer.write_batch(&gen.next_batch(8))?;
/// writer.write_batch(&gen.next_batch(8))?;
///
/// let mut reader = DatasetReader::new(buf.as_slice())?;
/// let mut batches = 0;
/// while let Some(batch) = reader.next_batch()? {
///     assert_eq!(batch.batch_size(), 8);
///     batches += 1;
/// }
/// assert_eq!(batches, 2);
/// # Ok::<(), recsim_data::dataset::DatasetError>(())
/// ```
#[derive(Debug)]
pub struct DatasetWriter<W> {
    sink: W,
    num_dense: u32,
    num_sparse: u32,
    batches_written: u64,
}

impl<W: Write> DatasetWriter<W> {
    /// Writes the header and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W, num_dense: u32, num_sparse: u32) -> Result<Self, DatasetError> {
        sink.write_all(MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        sink.write_all(&num_dense.to_le_bytes())?;
        sink.write_all(&num_sparse.to_le_bytes())?;
        Ok(Self {
            sink,
            num_dense,
            num_sparse,
            batches_written: 0,
        })
    }

    /// Appends one batch.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the batch's shape does not match the header.
    pub fn write_batch(&mut self, batch: &MiniBatch) -> Result<(), DatasetError> {
        assert_eq!(
            batch.num_dense() as u32,
            self.num_dense,
            "dense count mismatch"
        );
        assert_eq!(
            batch.sparse().len() as u32,
            self.num_sparse,
            "sparse count mismatch"
        );
        let b = batch.batch_size() as u32;
        self.sink.write_all(&b.to_le_bytes())?;
        for &v in batch.dense() {
            self.sink.write_all(&v.to_le_bytes())?;
        }
        for sb in batch.sparse() {
            self.sink
                .write_all(&(sb.total_lookups() as u32).to_le_bytes())?;
            for &o in sb.offsets() {
                self.sink.write_all(&(o as u32).to_le_bytes())?;
            }
            for &i in sb.indices() {
                self.sink.write_all(&i.to_le_bytes())?;
            }
        }
        for &l in batch.labels() {
            self.sink.write_all(&l.to_le_bytes())?;
        }
        self.batches_written += 1;
        Ok(())
    }

    /// Batches written so far.
    pub fn batches_written(&self) -> u64 {
        self.batches_written
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn finish(mut self) -> Result<W, DatasetError> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streams batches out of a reader.
#[derive(Debug)]
pub struct DatasetReader<R> {
    source: R,
    num_dense: u32,
    num_sparse: u32,
}

impl<R: Read> DatasetReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// [`DatasetError::BadMagic`] / [`DatasetError::UnsupportedVersion`] on
    /// foreign input, I/O errors from the source.
    pub fn new(mut source: R) -> Result<Self, DatasetError> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(DatasetError::BadMagic);
        }
        let version = read_u32(&mut source)?;
        if version != VERSION {
            return Err(DatasetError::UnsupportedVersion(version));
        }
        let num_dense = read_u32(&mut source)?;
        let num_sparse = read_u32(&mut source)?;
        Ok(Self {
            source,
            num_dense,
            num_sparse,
        })
    }

    /// The schema from the header: `(num_dense, num_sparse)`.
    pub fn schema(&self) -> (u32, u32) {
        (self.num_dense, self.num_sparse)
    }

    /// Validates the header against an expected schema.
    ///
    /// # Errors
    ///
    /// [`DatasetError::SchemaMismatch`] when they differ.
    pub fn expect_schema(&self, num_dense: u32, num_sparse: u32) -> Result<(), DatasetError> {
        if (self.num_dense, self.num_sparse) != (num_dense, num_sparse) {
            return Err(DatasetError::SchemaMismatch {
                found: (self.num_dense, self.num_sparse),
                expected: (num_dense, num_sparse),
            });
        }
        Ok(())
    }

    /// Reads the next batch; `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Corrupt`] on truncated or inconsistent records.
    pub fn next_batch(&mut self) -> Result<Option<MiniBatch>, DatasetError> {
        let b = match read_u32_or_eof(&mut self.source)? {
            None => return Ok(None),
            Some(b) => b as usize,
        };
        if b == 0 {
            return Err(DatasetError::Corrupt("zero batch size"));
        }
        let mut dense = Vec::with_capacity(b * self.num_dense as usize);
        for _ in 0..b * self.num_dense as usize {
            dense.push(read_f32(&mut self.source)?);
        }
        let mut sparse = Vec::with_capacity(self.num_sparse as usize);
        for _ in 0..self.num_sparse {
            let total = read_u32(&mut self.source)? as usize;
            let mut offsets = Vec::with_capacity(b + 1);
            for _ in 0..=b {
                offsets.push(read_u32(&mut self.source)? as usize);
            }
            if offsets.first() != Some(&0)
                || offsets.last() != Some(&total)
                || offsets.windows(2).any(|w| w[0] > w[1])
            {
                return Err(DatasetError::Corrupt("invalid CSR offsets"));
            }
            let mut indices = Vec::with_capacity(total);
            for _ in 0..total {
                indices.push(read_u32(&mut self.source)?);
            }
            sparse.push(SparseBatch::new(offsets, indices));
        }
        let mut labels = Vec::with_capacity(b);
        for _ in 0..b {
            let l = read_f32(&mut self.source)?;
            if !l.is_finite() {
                return Err(DatasetError::Corrupt("non-finite label"));
            }
            labels.push(l);
        }
        Ok(Some(MiniBatch::new(
            b,
            self.num_dense as usize,
            dense,
            sparse,
            labels,
        )))
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, DatasetError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|_| DatasetError::Corrupt("truncated record"))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u32_or_eof<R: Read>(r: &mut R) -> Result<Option<u32>, DatasetError> {
    let mut buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(DatasetError::Corrupt("truncated batch header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(DatasetError::Io(e)),
        }
    }
    Ok(Some(u32::from_le_bytes(buf)))
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, DatasetError> {
    Ok(f32::from_bits(read_u32(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ModelConfig;
    use crate::CtrGenerator;

    fn sample_batches(n: usize, size: usize) -> (ModelConfig, Vec<MiniBatch>) {
        let config = ModelConfig::test_suite(6, 3, 100, &[8]);
        let mut gen = CtrGenerator::new(&config, 42);
        let batches = (0..n).map(|_| gen.next_batch(size)).collect();
        (config, batches)
    }

    #[test]
    fn round_trip_preserves_batches_exactly() {
        let (_, batches) = sample_batches(5, 17);
        let mut buf = Vec::new();
        let mut w = DatasetWriter::new(&mut buf, 6, 3).expect("header");
        for b in &batches {
            w.write_batch(b).expect("write");
        }
        assert_eq!(w.batches_written(), 5);
        w.finish().expect("flush");

        let mut r = DatasetReader::new(buf.as_slice()).expect("header");
        assert_eq!(r.schema(), (6, 3));
        r.expect_schema(6, 3).expect("schema");
        let mut read_back = Vec::new();
        while let Some(b) = r.next_batch().expect("read") {
            read_back.push(b);
        }
        assert_eq!(read_back, batches);
    }

    #[test]
    fn foreign_input_is_rejected() {
        assert!(matches!(
            DatasetReader::new(&b"not a dataset"[..]),
            Err(DatasetError::BadMagic)
        ));
        let mut versioned = Vec::new();
        versioned.extend_from_slice(MAGIC);
        versioned.extend_from_slice(&99u32.to_le_bytes());
        versioned.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            DatasetReader::new(versioned.as_slice()),
            Err(DatasetError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let (_, batches) = sample_batches(1, 8);
        let mut buf = Vec::new();
        let mut w = DatasetWriter::new(&mut buf, 6, 3).expect("header");
        w.write_batch(&batches[0]).expect("write");
        buf.truncate(buf.len() - 3); // chop mid-record
        let mut r = DatasetReader::new(buf.as_slice()).expect("header");
        assert!(matches!(r.next_batch(), Err(DatasetError::Corrupt(_))));
    }

    #[test]
    fn schema_mismatch_is_reported() {
        let mut buf = Vec::new();
        DatasetWriter::new(&mut buf, 6, 3).expect("header");
        let r = DatasetReader::new(buf.as_slice()).expect("header");
        let err = r.expect_schema(4, 3).unwrap_err();
        assert!(matches!(err, DatasetError::SchemaMismatch { .. }));
    }

    #[test]
    fn empty_dataset_reads_cleanly() {
        let mut buf = Vec::new();
        DatasetWriter::new(&mut buf, 2, 1).expect("header");
        let mut r = DatasetReader::new(buf.as_slice()).expect("header");
        assert!(r.next_batch().expect("clean EOF").is_none());
    }

    #[test]
    #[should_panic(expected = "dense count mismatch")]
    fn writer_validates_shape() {
        let (_, batches) = sample_batches(1, 4);
        let mut buf = Vec::new();
        let mut w = DatasetWriter::new(&mut buf, 99, 3).expect("header");
        let _ = w.write_batch(&batches[0]);
    }
}
