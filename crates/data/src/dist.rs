//! Distribution toolbox: Zipf index popularity, truncated power-law feature
//! lengths, log-normal hash-size spectra.
//!
//! The paper's Figure 7 shows that feature lengths "resemble a power-law
//! distribution", and Figure 6 shows hash sizes spanning 30 … 20 million.
//! These samplers regenerate populations with those statistics.

use rand::Rng;
use rand_distr::{Distribution, LogNormal, Zipf};
use serde::{Deserialize, Serialize};

/// Zipf-distributed embedding-row popularity.
///
/// Training lookups concentrate on hot rows; the paper points out that "some
/// of the most accessed tables are relatively small" and that skew creates
/// caching opportunities. `ZipfSampler` drives which row each lookup hits.
///
/// # Example
///
/// ```
/// use recsim_data::dist::ZipfSampler;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = ZipfSampler::new(1000, 1.1);
/// let idx = z.sample(&mut rng);
/// assert!(idx < 1000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ZipfSampler {
    inner: Zipf<f64>,
    n: u64,
}

impl ZipfSampler {
    /// Creates a sampler over `[0, n)` with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not positive and finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        Self {
            inner: Zipf::new(n, s).expect("validated parameters"),
            n,
        }
    }

    /// Support size.
    pub fn support(&self) -> u64 {
        self.n
    }

    /// Draws one zero-based index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // rand_distr's Zipf returns 1-based ranks as f64.
        (self.inner.sample(rng) as u64)
            .saturating_sub(1)
            .min(self.n - 1)
    }
}

/// A tiny, fast, deterministic uniform stream (sequential splitmix64).
///
/// The synthetic CTR generator draws tens of millions of variates per
/// training run; `StdRng` (ChaCha12) spends most of the generator's time in
/// the block cipher. Splitmix64 is one add and three xor-multiplies per
/// draw, passes BigCrush, and — unlike counter-free hashing — keeps the
/// sequential-stream semantics the generator API promises (every draw
/// advances the stream exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Next uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next approximately standard-normal `f32` from a single draw: the sum
    /// of four 16-bit uniforms (Irwin–Hall), centered and rescaled to unit
    /// variance. Matches the tail quality the planted-teacher row scores
    /// already rely on, at a fraction of a Box–Muller's cost.
    #[inline]
    pub fn next_normal_f32(&mut self) -> f32 {
        let x = self.next_u64();
        let mut acc = 0.0f64;
        for shift in [0u32, 16, 32, 48] {
            acc += ((x >> shift) & 0xFFFF) as f64 / 65535.0;
        }
        ((acc - 2.0) * (12.0f64 / 4.0).sqrt()) as f32
    }
}

/// Table-driven Zipf sampler: Vose alias method for exact O(1) draws when
/// the support fits a table, and a continuous bounded power-law inverse CDF
/// for huge supports where an alias table would cost tens of megabytes.
///
/// This replaces rejection-based Zipf sampling on the data-generation hot
/// path: one uniform draw per index, no rejection loop, no `powf` in the
/// common (tabled) case.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    n: u64,
    kind: ZipfKind,
}

#[derive(Debug, Clone)]
enum ZipfKind {
    Alias {
        prob: Vec<f64>,
        alias: Vec<u32>,
    },
    Pareto {
        inv_one_minus_s: f64,
        tail: f64,
        ln_m: f64,
    },
}

/// Largest support size for which the alias table is materialized (12 bytes
/// per row). Beyond this the continuous approximation is indistinguishable
/// for training purposes and costs O(1) memory.
const ZIPF_ALIAS_MAX: u64 = 1 << 20;

impl ZipfTable {
    /// Creates a sampler over `[0, n)` with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not positive and finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let kind = if n <= ZIPF_ALIAS_MAX {
            let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
            // detsan: reduction-order — construction-time normalizer, fixed
            // sequential sum over ranks
            let total: f64 = weights.iter().sum();
            let len = weights.len();
            // Vose's alias method: split scaled probabilities into "small"
            // (< 1) and "large" (>= 1) and pair each small slot with a large
            // donor.
            let mut prob: Vec<f64> = weights.iter().map(|w| w / total * len as f64).collect();
            let mut alias = vec![0u32; len];
            let mut small: Vec<u32> = Vec::new();
            let mut large: Vec<u32> = Vec::new();
            for (i, &p) in prob.iter().enumerate() {
                if p < 1.0 {
                    small.push(i as u32);
                } else {
                    large.push(i as u32);
                }
            }
            while let (Some(&s_i), Some(&l_i)) = (small.last(), large.last()) {
                small.pop();
                alias[s_i as usize] = l_i;
                prob[l_i as usize] -= 1.0 - prob[s_i as usize];
                if prob[l_i as usize] < 1.0 {
                    large.pop();
                    small.push(l_i);
                }
            }
            // Numerical stragglers on either stack have probability ~1.
            for &i in small.iter().chain(large.iter()) {
                prob[i as usize] = 1.0;
                alias[i as usize] = i;
            }
            ZipfKind::Alias { prob, alias }
        } else {
            // Continuous bounded power-law on [1, n]: F(x) =
            // (x^(1-s) - 1) / (n^(1-s) - 1), discretized by flooring.
            let m = n as f64;
            if (s - 1.0).abs() < 1e-9 {
                ZipfKind::Pareto {
                    inv_one_minus_s: 0.0,
                    tail: 0.0,
                    ln_m: m.ln(),
                }
            } else {
                ZipfKind::Pareto {
                    inv_one_minus_s: 1.0 / (1.0 - s),
                    tail: m.powf(1.0 - s) - 1.0,
                    ln_m: m.ln(),
                }
            }
        };
        Self { n, kind }
    }

    /// Support size.
    pub fn support(&self) -> u64 {
        self.n
    }

    /// Draws one zero-based index from a single uniform variate.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match &self.kind {
            ZipfKind::Alias { prob, alias } => {
                let f = rng.next_f64() * prob.len() as f64;
                let slot = (f as usize).min(prob.len() - 1);
                let frac = f - slot as f64;
                if frac < prob[slot] {
                    slot as u64
                } else {
                    alias[slot] as u64
                }
            }
            ZipfKind::Pareto {
                inv_one_minus_s,
                tail,
                ln_m,
            } => {
                let u = rng.next_f64();
                let x = if *inv_one_minus_s == 0.0 {
                    (u * ln_m).exp()
                } else {
                    (1.0 + u * tail).powf(*inv_one_minus_s)
                };
                (x as u64).saturating_sub(1).min(self.n - 1)
            }
        }
    }
}

/// Truncated Poisson lookup-count sampler as a precomputed CDF table.
///
/// Matches the semantics the generator always had — a Poisson draw clamped
/// to `[1, truncation]` — but replaces the per-draw rejection/inversion work
/// with one uniform and a binary search over at most `truncation` entries.
/// The tail mass beyond the truncation point is folded into the last entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedPoissonTable {
    cdf: Vec<f64>,
}

impl TruncatedPoissonTable {
    /// Builds the table for `mean` lookups truncated to `[1, truncation]`.
    ///
    /// # Panics
    ///
    /// Panics if `truncation == 0` or `mean` is not positive and finite.
    pub fn new(mean: f64, truncation: u32) -> Self {
        assert!(truncation > 0, "truncation must be positive");
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        let mut cdf = Vec::with_capacity(truncation as usize);
        // detsan: reduction-order — construction-time CDF, fixed sequential
        // accumulation over k
        let mut pk = (-mean).exp(); // P(raw = 0)
        let mut cum = pk;
        for k in 1..=u64::from(truncation) {
            pk *= mean / k as f64;
            cum += pk;
            // After k = 1 this is P(raw <= 1) = P(len = 1), matching the
            // clamp-to-1 floor of the original sampler.
            cdf.push(cum.min(1.0));
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Draws one length in `{1, …, truncation}`.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> u32 {
        let u = rng.next_f64();
        let idx = self.cdf.partition_point(|&c| c <= u);
        (idx as u32 + 1).min(self.cdf.len() as u32)
    }
}

/// A discrete power-law sampler over `{1, …, max}` with density ∝ `k^-alpha`,
/// used for per-example feature lengths (paper Figure 7).
///
/// Sampling uses the inverse-CDF of the continuous Pareto between 1 and
/// `max`, discretized by flooring — cheap, and accurate enough for length
/// distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawLengths {
    alpha: f64,
    max: u32,
}

impl PowerLawLengths {
    /// Creates a sampler with tail exponent `alpha > 1` truncated at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 1` or `max == 0`.
    pub fn new(alpha: f64, max: u32) -> Self {
        assert!(
            alpha > 1.0 && alpha.is_finite(),
            "power law needs alpha > 1"
        );
        assert!(max > 0, "maximum length must be positive");
        Self { alpha, max }
    }

    /// The tail exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The truncation point.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Draws one length in `{1, …, max}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let a = self.alpha - 1.0;
        let max = self.max as f64;
        // Inverse CDF of Pareto(1, a) truncated at max.
        let tail = 1.0 - max.powf(-a);
        let x = (1.0 - u * tail).powf(-1.0 / a);
        (x.floor() as u32).clamp(1, self.max)
    }

    /// Analytic mean of the truncated, discretized distribution, estimated
    /// by direct summation of the continuous density (good to ~1%).
    pub fn approx_mean(&self) -> f64 {
        let a = self.alpha;
        let max = self.max as f64;
        // E[X] for continuous truncated Pareto(1, a-1).
        let am1 = a - 1.0;
        let tail = 1.0 - max.powf(-am1);
        if (a - 2.0).abs() < 1e-9 {
            (max.ln() * am1 / tail) + 0.0
        } else {
            am1 / (a - 2.0) * (1.0 - max.powf(-(a - 2.0))) / tail
        }
    }
}

/// Log-normal sampler for hash sizes, clamped to `[min, max]`.
///
/// Figure 6's hash sizes range "from 30 being smallest, to 20 million the
/// largest", with means of a few million — a classic log-normal spectrum.
#[derive(Debug, Clone, Copy)]
pub struct HashSizeSpectrum {
    inner: LogNormal<f64>,
    min: u64,
    max: u64,
}

impl HashSizeSpectrum {
    /// Creates a spectrum with the given log-space mean and standard
    /// deviation, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0`, `min > max`, or `sigma` is negative.
    pub fn new(mu_ln: f64, sigma_ln: f64, min: u64, max: u64) -> Self {
        assert!(min > 0 && min <= max, "need 0 < min <= max");
        assert!(sigma_ln >= 0.0, "sigma must be non-negative");
        Self {
            inner: LogNormal::new(mu_ln, sigma_ln).expect("validated parameters"),
            min,
            max,
        }
    }

    /// A spectrum calibrated to the paper's Figure 6: sizes in
    /// [30, 20 million] with a mean of roughly `target_mean`.
    ///
    /// # Panics
    ///
    /// Panics if `target_mean` is not within (30, 2e7).
    pub fn production(target_mean: f64) -> Self {
        assert!(
            target_mean > 30.0 && target_mean < 2e7,
            "target mean must lie inside the observed range"
        );
        // For LogNormal, E[X] = exp(mu + sigma^2/2). Pick sigma = 2.0
        // (spread over ~4 decades like Figure 6) and solve for mu. Clamping
        // to 2e7 pulls the realized mean below exp(mu+sigma^2/2), so
        // compensate with a small empirical factor.
        let sigma = 2.0f64;
        let mu = target_mean.ln() - sigma * sigma / 2.0 + 0.35;
        Self::new(mu, sigma, 30, 20_000_000)
    }

    /// Draws one hash size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (self.inner.sample(rng) as u64).clamp(self.min, self.max)
    }
}

/// Multiplicative log-normal noise around 1.0, used for run-to-run system
/// variability in the fleet simulations (paper Figure 5 attributes part of
/// the spread to "system or hardware level variability").
#[derive(Debug, Clone, Copy)]
pub struct SystemNoise {
    inner: LogNormal<f64>,
}

impl SystemNoise {
    /// Creates noise with the given log-space standard deviation; the
    /// distribution is centred so its mean is 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        Self {
            inner: LogNormal::new(-sigma * sigma / 2.0, sigma).expect("validated"),
        }
    }

    /// Draws one multiplicative factor (mean 1.0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng)
    }
}

/// Ranks whose probability mass is tabulated exactly; beyond this the CDF
/// switches to a closed-form integral approximation of the Zipf tail.
const ZIPF_CDF_HEAD: u64 = 1 << 16;

/// The access CDF of a Zipf-popular embedding table: what fraction of all
/// lookups lands in the `k` most popular rows.
///
/// This is the curve RecShard-style per-row sharding reads its split points
/// off: a steep CDF means a thin hot slice in HBM captures almost all
/// traffic and the cold tail can live on SCM. The first
/// [`ZIPF_CDF_HEAD`] ranks use exact partial harmonic sums; beyond that the
/// tail mass comes from the midpoint-corrected integral
/// `∫ x^{-s} dx`, whose error on the smooth tail is far below any split
/// decision's sensitivity. `cdf` is monotone in `k` by construction.
///
/// # Example
///
/// ```
/// use recsim_data::dist::ZipfCdf;
///
/// let cdf = ZipfCdf::new(10_000_000, 1.1);
/// // A thin hot prefix soaks up most of the traffic...
/// assert!(cdf.cdf(100_000) > 0.75);
/// // ...and the inverse lookup finds the 90%-coverage row count.
/// let hot = cdf.rows_for_coverage(0.9);
/// assert!(cdf.cdf(hot) >= 0.9 && cdf.cdf(hot - 1) < 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfCdf {
    n: u64,
    s: f64,
    /// `head[k-1]` = Σ_{i=1..k} i^{-s}, for k ≤ min(n, ZIPF_CDF_HEAD).
    head: Vec<f64>,
    /// Total mass H(n) ≈ Σ_{i=1..n} i^{-s}.
    total: f64,
}

impl ZipfCdf {
    /// Builds the CDF for a table of `n` rows with Zipf exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not positive and finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let head_len = n.min(ZIPF_CDF_HEAD) as usize;
        let mut head = Vec::with_capacity(head_len);
        let mut acc = 0.0f64;
        // detsan: reduction-order — construction-time prefix sums, fixed
        // sequential order at every thread count.
        for i in 1..=head_len as u64 {
            acc += (i as f64).powf(-s);
            head.push(acc);
        }
        let total = acc + Self::tail_integral(head_len as u64, n, s);
        Self { n, s, head, total }
    }

    /// Midpoint-corrected integral of `x^{-s}` from rank `from`
    /// (exclusive) to rank `to` (inclusive): ∫_{from+0.5}^{to+0.5}.
    fn tail_integral(from: u64, to: u64, s: f64) -> f64 {
        if to <= from {
            return 0.0;
        }
        let (a, b) = (from as f64 + 0.5, to as f64 + 0.5);
        if (s - 1.0).abs() < 1e-12 {
            (b / a).ln()
        } else {
            (b.powf(1.0 - s) - a.powf(1.0 - s)) / (1.0 - s)
        }
    }

    /// Number of rows in the table.
    pub fn support(&self) -> u64 {
        self.n
    }

    /// The Zipf exponent the CDF was built with.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Fraction of all lookups that hit the `k` most popular rows.
    /// `cdf(0) == 0.0`, `cdf(n) == 1.0`, monotone non-decreasing in `k`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let k = k.min(self.n);
        let head_len = self.head.len() as u64;
        let mass = if k <= head_len {
            self.head[k as usize - 1]
        } else {
            self.head[self.head.len() - 1] + Self::tail_integral(head_len, k, self.s)
        };
        (mass / self.total).clamp(0.0, 1.0)
    }

    /// Smallest row count `k` with `cdf(k) >= coverage` — the hot-slice
    /// size that captures the requested traffic share.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn rows_for_coverage(&self, coverage: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0, 1]"
        );
        if coverage <= 0.0 {
            return 0;
        }
        let (mut lo, mut hi) = (0u64, self.n);
        // Invariant: cdf(lo) < coverage <= cdf(hi).
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= coverage {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_respects_support() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = ZipfSampler::new(100, 1.2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = ZipfSampler::new(1000, 1.2);
        let mut low = 0;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Top-1% of ranks should collect far more than 1% of mass.
        assert!(low > 2000, "got {low} hits in the top 10 ranks");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        for &(n, s) in &[(100u64, 0.8f64), (1 << 16, 1.0), (10_000_000, 1.2)] {
            let cdf = ZipfCdf::new(n, s);
            assert_eq!(cdf.cdf(0), 0.0);
            assert!((cdf.cdf(n) - 1.0).abs() < 1e-12);
            let mut prev = 0.0;
            let mut k = 1;
            while k <= n {
                let c = cdf.cdf(k);
                assert!(c >= prev, "cdf not monotone at k={k} (n={n}, s={s})");
                assert!((0.0..=1.0).contains(&c));
                prev = c;
                k = (k * 7 / 2).max(k + 1);
            }
        }
    }

    #[test]
    fn zipf_cdf_head_matches_exact_harmonic_sums() {
        let (n, s) = (1000u64, 1.1f64);
        let cdf = ZipfCdf::new(n, s);
        let total: f64 = (1..=n).map(|i| (i as f64).powf(-s)).sum();
        for k in [1u64, 10, 100, 1000] {
            let exact: f64 = (1..=k).map(|i| (i as f64).powf(-s)).sum::<f64>() / total;
            assert!(
                (cdf.cdf(k) - exact).abs() < 1e-9,
                "k={k}: {} vs {exact}",
                cdf.cdf(k)
            );
        }
    }

    #[test]
    fn zipf_cdf_tail_integral_is_tight_beyond_the_head() {
        // A support just past the head boundary: the integral tail must
        // agree with the exact sum to well under a percent.
        let n = (1 << 16) + 50_000;
        let s = 1.1;
        let cdf = ZipfCdf::new(n, s);
        let total: f64 = (1..=n).map(|i| (i as f64).powf(-s)).sum();
        let k = (1 << 16) + 25_000;
        let exact: f64 = (1..=k).map(|i| (i as f64).powf(-s)).sum::<f64>() / total;
        assert!(
            (cdf.cdf(k) - exact).abs() < 1e-4,
            "tail approx off: {} vs {exact}",
            cdf.cdf(k)
        );
    }

    #[test]
    fn steeper_zipf_concentrates_faster() {
        let n = 1_000_000;
        let flat = ZipfCdf::new(n, 0.8);
        let steep = ZipfCdf::new(n, 1.4);
        assert!(steep.cdf(100) > flat.cdf(100));
        // The 90%-coverage hot-slice shrinks as the skew grows.
        assert!(steep.rows_for_coverage(0.9) < flat.rows_for_coverage(0.9));
    }

    #[test]
    fn rows_for_coverage_is_the_exact_inverse() {
        let cdf = ZipfCdf::new(500_000, 1.1);
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let k = cdf.rows_for_coverage(p);
            assert!(cdf.cdf(k) >= p, "cdf({k}) < {p}");
            if k > 0 {
                assert!(cdf.cdf(k - 1) < p, "cdf({}) already covers {p}", k - 1);
            }
        }
        assert_eq!(cdf.rows_for_coverage(0.0), 0);
        assert_eq!(cdf.rows_for_coverage(1.0), cdf.support());
    }

    #[test]
    fn power_law_lengths_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = PowerLawLengths::new(2.0, 50);
        for _ in 0..1000 {
            let l = p.sample(&mut rng);
            assert!((1..=50).contains(&l));
        }
    }

    #[test]
    fn power_law_mean_close_to_analytic() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = PowerLawLengths::new(2.5, 200);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| p.sample(&mut rng) as u64).sum();
        let emp = sum as f64 / n as f64;
        // Discretization biases down by up to ~0.5.
        assert!(
            (emp - p.approx_mean()).abs() < 0.6,
            "empirical {emp} vs analytic {}",
            p.approx_mean()
        );
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = PowerLawLengths::new(1.8, 1000);
        let samples: Vec<u32> = (0..50_000).map(|_| p.sample(&mut rng)).collect();
        let ones = samples.iter().filter(|&&l| l == 1).count();
        let big = samples.iter().filter(|&&l| l > 100).count();
        assert!(ones > samples.len() / 3, "mode at 1");
        assert!(big > 0, "tail reaches past 100");
    }

    #[test]
    fn hash_spectrum_clamps() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = HashSizeSpectrum::new(10.0, 3.0, 30, 20_000_000);
        for _ in 0..1000 {
            let s = h.sample(&mut rng);
            assert!((30..=20_000_000).contains(&s));
        }
    }

    #[test]
    fn production_spectrum_hits_target_mean() {
        let mut rng = StdRng::seed_from_u64(23);
        let target = 5_700_000.0; // M1's mean hash size from the paper
        let h = HashSizeSpectrum::production(target);
        let n = 40_000;
        let sum: u64 = (0..n).map(|_| h.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean / target - 1.0).abs() < 0.35,
            "mean {mean:.0} should be within 35% of {target:.0}"
        );
    }

    #[test]
    fn system_noise_centred_on_one() {
        let mut rng = StdRng::seed_from_u64(9);
        let noise = SystemNoise::new(0.15);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| noise.sample(&mut rng)).sum();
        assert!((sum / n as f64 - 1.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn power_law_validates_alpha() {
        PowerLawLengths::new(1.0, 10);
    }

    #[test]
    fn splitmix_uniforms_in_unit_interval_and_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            let u = a.next_f64();
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, b.next_f64());
        }
    }

    #[test]
    fn splitmix_normals_are_standardish() {
        let mut rng = SplitMix64::new(7);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let x = rng.next_normal_f32() as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_table_respects_support_and_skew() {
        let mut rng = SplitMix64::new(9);
        let z = ZipfTable::new(1000, 1.2);
        let mut low = 0;
        for _ in 0..10_000 {
            let i = z.sample(&mut rng);
            assert!(i < 1000);
            if i < 10 {
                low += 1;
            }
        }
        assert!(low > 2000, "got {low} hits in the top 10 ranks");
    }

    #[test]
    fn zipf_table_alias_matches_exact_head_probabilities() {
        // With s = 1.1 over n = 100, P(rank 1) = 1 / H where
        // H = sum k^-1.1; the alias table must reproduce it closely.
        let n = 100u64;
        let s = 1.1f64;
        let h: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let expect = 1.0 / h;
        let z = ZipfTable::new(n, s);
        let mut rng = SplitMix64::new(11);
        let draws = 200_000;
        let hits = (0..draws).filter(|_| z.sample(&mut rng) == 0).count();
        let emp = hits as f64 / draws as f64;
        assert!(
            (emp - expect).abs() < 0.01,
            "empirical {emp:.4} vs exact {expect:.4}"
        );
    }

    #[test]
    fn zipf_table_large_support_falls_back_and_stays_skewed() {
        let n = (ZIPF_ALIAS_MAX + 1) * 2;
        let z = ZipfTable::new(n, 1.1);
        let mut rng = SplitMix64::new(13);
        let mut low = 0;
        for _ in 0..10_000 {
            let i = z.sample(&mut rng);
            assert!(i < n);
            if i < 100 {
                low += 1;
            }
        }
        assert!(low > 2000, "large-support fallback lost its skew: {low}");
    }

    #[test]
    fn truncated_poisson_matches_clamped_reference() {
        // The table must reproduce P(clamp(Poisson(mean), 1, t)) exactly.
        let mean = 3.0f64;
        let t = 8u32;
        let table = TruncatedPoissonTable::new(mean, t);
        let mut rng = SplitMix64::new(21);
        let n = 200_000;
        let mut counts = vec![0usize; t as usize + 1];
        for _ in 0..n {
            let l = table.sample(&mut rng);
            assert!((1..=t).contains(&l));
            counts[l as usize] += 1;
        }
        // Analytic P(len = 1) = e^-3 (1 + 3).
        let p1 = (-mean).exp() * (1.0 + mean);
        let emp1 = counts[1] as f64 / n as f64;
        assert!((emp1 - p1).abs() < 0.01, "P(1): {emp1:.4} vs {p1:.4}");
        // Mean should be close to E[clamp(Poisson(3), 1, 8)] ≈ 3.02.
        let emp_mean: f64 = counts
            .iter()
            .enumerate()
            .map(|(l, &c)| l as f64 * c as f64)
            .sum::<f64>()
            / n as f64;
        assert!((emp_mean - 3.02).abs() < 0.05, "mean {emp_mean}");
    }

    #[test]
    fn truncated_poisson_clamps_to_one() {
        let table = TruncatedPoissonTable::new(0.01, 4);
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }
}
