//! Distribution toolbox: Zipf index popularity, truncated power-law feature
//! lengths, log-normal hash-size spectra.
//!
//! The paper's Figure 7 shows that feature lengths "resemble a power-law
//! distribution", and Figure 6 shows hash sizes spanning 30 … 20 million.
//! These samplers regenerate populations with those statistics.

use rand::Rng;
use rand_distr::{Distribution, LogNormal, Zipf};
use serde::{Deserialize, Serialize};

/// Zipf-distributed embedding-row popularity.
///
/// Training lookups concentrate on hot rows; the paper points out that "some
/// of the most accessed tables are relatively small" and that skew creates
/// caching opportunities. `ZipfSampler` drives which row each lookup hits.
///
/// # Example
///
/// ```
/// use recsim_data::dist::ZipfSampler;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = ZipfSampler::new(1000, 1.1);
/// let idx = z.sample(&mut rng);
/// assert!(idx < 1000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ZipfSampler {
    inner: Zipf<f64>,
    n: u64,
}

impl ZipfSampler {
    /// Creates a sampler over `[0, n)` with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not positive and finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        Self {
            inner: Zipf::new(n, s).expect("validated parameters"),
            n,
        }
    }

    /// Support size.
    pub fn support(&self) -> u64 {
        self.n
    }

    /// Draws one zero-based index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // rand_distr's Zipf returns 1-based ranks as f64.
        (self.inner.sample(rng) as u64)
            .saturating_sub(1)
            .min(self.n - 1)
    }
}

/// A discrete power-law sampler over `{1, …, max}` with density ∝ `k^-alpha`,
/// used for per-example feature lengths (paper Figure 7).
///
/// Sampling uses the inverse-CDF of the continuous Pareto between 1 and
/// `max`, discretized by flooring — cheap, and accurate enough for length
/// distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawLengths {
    alpha: f64,
    max: u32,
}

impl PowerLawLengths {
    /// Creates a sampler with tail exponent `alpha > 1` truncated at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 1` or `max == 0`.
    pub fn new(alpha: f64, max: u32) -> Self {
        assert!(
            alpha > 1.0 && alpha.is_finite(),
            "power law needs alpha > 1"
        );
        assert!(max > 0, "maximum length must be positive");
        Self { alpha, max }
    }

    /// The tail exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The truncation point.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Draws one length in `{1, …, max}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let a = self.alpha - 1.0;
        let max = self.max as f64;
        // Inverse CDF of Pareto(1, a) truncated at max.
        let tail = 1.0 - max.powf(-a);
        let x = (1.0 - u * tail).powf(-1.0 / a);
        (x.floor() as u32).clamp(1, self.max)
    }

    /// Analytic mean of the truncated, discretized distribution, estimated
    /// by direct summation of the continuous density (good to ~1%).
    pub fn approx_mean(&self) -> f64 {
        let a = self.alpha;
        let max = self.max as f64;
        // E[X] for continuous truncated Pareto(1, a-1).
        let am1 = a - 1.0;
        let tail = 1.0 - max.powf(-am1);
        if (a - 2.0).abs() < 1e-9 {
            (max.ln() * am1 / tail) + 0.0
        } else {
            am1 / (a - 2.0) * (1.0 - max.powf(-(a - 2.0))) / tail
        }
    }
}

/// Log-normal sampler for hash sizes, clamped to `[min, max]`.
///
/// Figure 6's hash sizes range "from 30 being smallest, to 20 million the
/// largest", with means of a few million — a classic log-normal spectrum.
#[derive(Debug, Clone, Copy)]
pub struct HashSizeSpectrum {
    inner: LogNormal<f64>,
    min: u64,
    max: u64,
}

impl HashSizeSpectrum {
    /// Creates a spectrum with the given log-space mean and standard
    /// deviation, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0`, `min > max`, or `sigma` is negative.
    pub fn new(mu_ln: f64, sigma_ln: f64, min: u64, max: u64) -> Self {
        assert!(min > 0 && min <= max, "need 0 < min <= max");
        assert!(sigma_ln >= 0.0, "sigma must be non-negative");
        Self {
            inner: LogNormal::new(mu_ln, sigma_ln).expect("validated parameters"),
            min,
            max,
        }
    }

    /// A spectrum calibrated to the paper's Figure 6: sizes in
    /// [30, 20 million] with a mean of roughly `target_mean`.
    ///
    /// # Panics
    ///
    /// Panics if `target_mean` is not within (30, 2e7).
    pub fn production(target_mean: f64) -> Self {
        assert!(
            target_mean > 30.0 && target_mean < 2e7,
            "target mean must lie inside the observed range"
        );
        // For LogNormal, E[X] = exp(mu + sigma^2/2). Pick sigma = 2.0
        // (spread over ~4 decades like Figure 6) and solve for mu. Clamping
        // to 2e7 pulls the realized mean below exp(mu+sigma^2/2), so
        // compensate with a small empirical factor.
        let sigma = 2.0f64;
        let mu = target_mean.ln() - sigma * sigma / 2.0 + 0.35;
        Self::new(mu, sigma, 30, 20_000_000)
    }

    /// Draws one hash size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (self.inner.sample(rng) as u64).clamp(self.min, self.max)
    }
}

/// Multiplicative log-normal noise around 1.0, used for run-to-run system
/// variability in the fleet simulations (paper Figure 5 attributes part of
/// the spread to "system or hardware level variability").
#[derive(Debug, Clone, Copy)]
pub struct SystemNoise {
    inner: LogNormal<f64>,
}

impl SystemNoise {
    /// Creates noise with the given log-space standard deviation; the
    /// distribution is centred so its mean is 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        Self {
            inner: LogNormal::new(-sigma * sigma / 2.0, sigma).expect("validated"),
        }
    }

    /// Draws one multiplicative factor (mean 1.0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_respects_support() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = ZipfSampler::new(100, 1.2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = ZipfSampler::new(1000, 1.2);
        let mut low = 0;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Top-1% of ranks should collect far more than 1% of mass.
        assert!(low > 2000, "got {low} hits in the top 10 ranks");
    }

    #[test]
    fn power_law_lengths_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = PowerLawLengths::new(2.0, 50);
        for _ in 0..1000 {
            let l = p.sample(&mut rng);
            assert!((1..=50).contains(&l));
        }
    }

    #[test]
    fn power_law_mean_close_to_analytic() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = PowerLawLengths::new(2.5, 200);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| p.sample(&mut rng) as u64).sum();
        let emp = sum as f64 / n as f64;
        // Discretization biases down by up to ~0.5.
        assert!(
            (emp - p.approx_mean()).abs() < 0.6,
            "empirical {emp} vs analytic {}",
            p.approx_mean()
        );
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = PowerLawLengths::new(1.8, 1000);
        let samples: Vec<u32> = (0..50_000).map(|_| p.sample(&mut rng)).collect();
        let ones = samples.iter().filter(|&&l| l == 1).count();
        let big = samples.iter().filter(|&&l| l > 100).count();
        assert!(ones > samples.len() / 3, "mode at 1");
        assert!(big > 0, "tail reaches past 100");
    }

    #[test]
    fn hash_spectrum_clamps() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = HashSizeSpectrum::new(10.0, 3.0, 30, 20_000_000);
        for _ in 0..1000 {
            let s = h.sample(&mut rng);
            assert!((30..=20_000_000).contains(&s));
        }
    }

    #[test]
    fn production_spectrum_hits_target_mean() {
        let mut rng = StdRng::seed_from_u64(23);
        let target = 5_700_000.0; // M1's mean hash size from the paper
        let h = HashSizeSpectrum::production(target);
        let n = 40_000;
        let sum: u64 = (0..n).map(|_| h.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean / target - 1.0).abs() < 0.35,
            "mean {mean:.0} should be within 35% of {target:.0}"
        );
    }

    #[test]
    fn system_noise_centred_on_one() {
        let mut rng = StdRng::seed_from_u64(9);
        let noise = SystemNoise::new(0.15);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| noise.sample(&mut rng)).sum();
        assert!((sum / n as f64 - 1.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn power_law_validates_alpha() {
        PowerLawLengths::new(1.0, 10);
    }
}
