//! Arrival-rate and popularity processes for open-loop request generation.
//!
//! The serving tier (`recsim-serve`) drives its load generator from two
//! deterministic processes that live here, next to the other workload
//! distributions:
//!
//! * [`DiurnalProfile`] — a smooth peak-to-trough modulation of a base
//!   request rate, the classic daily traffic curve. It is a pure function
//!   of virtual time, so inhomogeneous-Poisson thinning or per-step mean
//!   scaling stays byte-deterministic.
//! * [`PopularityProcess`] — per-entity Zipf popularity: each sparse
//!   feature draws embedding rows from a [`ZipfTable`], keyed by
//!   `(seed, entity, draw index)` so any draw can be regenerated in
//!   isolation, in any order, on any thread.
//!
//! [`ZipfTable`]: crate::dist::ZipfTable

use crate::dist::{SplitMix64, ZipfTable};
use serde::{Deserialize, Serialize};

/// A daily traffic curve: the instantaneous rate multiplier oscillates
/// smoothly between `1.0` (trough) and `peak_to_trough` (peak) with the
/// given period.
///
/// # Example
///
/// ```
/// use recsim_data::arrival::DiurnalProfile;
///
/// let p = DiurnalProfile::new(3.0, 86_400.0);
/// assert!((p.factor_at(0.25 * 86_400.0) - 3.0).abs() < 1e-9); // peak
/// assert!((p.factor_at(0.75 * 86_400.0) - 1.0).abs() < 1e-9); // trough
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Peak rate divided by trough rate (`>= 1`).
    peak_to_trough: f64,
    /// Oscillation period in (virtual) seconds.
    period_secs: f64,
}

impl DiurnalProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `peak_to_trough < 1` or `period_secs <= 0`.
    pub fn new(peak_to_trough: f64, period_secs: f64) -> Self {
        assert!(
            peak_to_trough >= 1.0 && peak_to_trough.is_finite(),
            "peak-to-trough ratio must be >= 1"
        );
        assert!(
            period_secs > 0.0 && period_secs.is_finite(),
            "period must be positive"
        );
        Self {
            peak_to_trough,
            period_secs,
        }
    }

    /// Peak rate over trough rate.
    pub fn peak_to_trough(&self) -> f64 {
        self.peak_to_trough
    }

    /// Oscillation period, seconds.
    pub fn period_secs(&self) -> f64 {
        self.period_secs
    }

    /// The rate multiplier at virtual time `t_secs`: a sinusoid from `1.0`
    /// at the trough to `peak_to_trough` at the peak (peak hits at a
    /// quarter period, like afternoon traffic against a midnight origin).
    pub fn factor_at(&self, t_secs: f64) -> f64 {
        let phase = (t_secs / self.period_secs * std::f64::consts::TAU).sin();
        1.0 + (self.peak_to_trough - 1.0) * 0.5 * (1.0 + phase)
    }

    /// Mean multiplier over a whole period (`(peak/trough + 1) / 2`).
    pub fn mean_factor(&self) -> f64 {
        0.5 * (self.peak_to_trough + 1.0)
    }
}

/// Zipf popularity over one entity class (users, ad candidates, one sparse
/// feature's rows): draw `k` of the `support` items where item 0 is the
/// hottest. Draws are keyed on `(seed, entity, draw index)`, so a single
/// request's activations can be regenerated without replaying the trace.
#[derive(Debug, Clone)]
pub struct PopularityProcess {
    table: ZipfTable,
    seed: u64,
}

impl PopularityProcess {
    /// Creates a popularity process over `[0, support)` with Zipf exponent
    /// `s` (see [`ZipfTable::new`] for the panics).
    pub fn new(support: u64, s: f64, seed: u64) -> Self {
        Self {
            table: ZipfTable::new(support, s),
            seed,
        }
    }

    /// Support size.
    pub fn support(&self) -> u64 {
        self.table.support()
    }

    /// Draws the `draw`-th item for `entity` — a pure function of
    /// `(seed, entity, draw)`.
    pub fn sample(&self, entity: u64, draw: u64) -> u64 {
        let mut rng = SplitMix64::new(
            self.seed
                ^ entity.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ draw.wrapping_mul(0xE703_7ED1_A0B4_28DB),
        );
        self.table.sample(&mut rng)
    }

    /// Draws `k` items for `entity` as one contiguous draw range.
    pub fn sample_many(&self, entity: u64, k: usize) -> Vec<u64> {
        (0..k as u64).map(|d| self.sample(entity, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_factor_stays_in_band_and_averages_halfway() {
        let p = DiurnalProfile::new(4.0, 3_600.0);
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let f = p.factor_at(i as f64 * 3_600.0 / n as f64);
            assert!((1.0..=4.0 + 1e-9).contains(&f), "factor {f}");
            sum += f;
        }
        assert!((sum / n as f64 - p.mean_factor()).abs() < 0.01);
    }

    #[test]
    fn flat_profile_is_identity() {
        let p = DiurnalProfile::new(1.0, 60.0);
        for t in [0.0, 13.0, 59.9] {
            assert!((p.factor_at(t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn popularity_draws_are_pure_functions_of_coordinates() {
        let p = PopularityProcess::new(1_000, 1.1, 7);
        assert_eq!(p.sample(3, 0), p.sample(3, 0));
        assert_ne!(p.sample_many(3, 16), p.sample_many(4, 16));
        let q = PopularityProcess::new(1_000, 1.1, 8);
        assert_ne!(p.sample_many(3, 16), q.sample_many(3, 16));
    }

    #[test]
    fn popularity_is_head_heavy() {
        let p = PopularityProcess::new(100_000, 1.2, 42);
        let draws: Vec<u64> = (0..20_000).map(|e| p.sample(e, 0)).collect();
        let head = draws.iter().filter(|&&v| v < 100).count() as f64;
        assert!(
            head / draws.len() as f64 > 0.3,
            "top-0.1% of items took {} of draws",
            head / draws.len() as f64
        );
        assert!(draws.iter().all(|&v| v < 100_000));
    }
}
