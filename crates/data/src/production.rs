//! Generated stand-ins for the paper's three production models.
//!
//! Table II of the paper discloses, for M1/M2/M3: sparse and dense feature
//! counts, embedding sizes ("tens"/"hundreds" of GB), mean embedding lookups
//! per feature, and the MLP stacks. Figures 6–7 add the per-table hash-size
//! spectrum (30 … 20 million, means of 5.7/7.3/3.7 million) and the
//! power-law distribution of per-table mean feature lengths. The generators
//! here produce [`ModelConfig`]s matching *all* of those aggregates, so that
//! every downstream experiment (Figures 1, 14, Table III) sees models with
//! the production models' disclosed shape.

use crate::dist::{HashSizeSpectrum, PowerLawLengths};
use crate::schema::{Interaction, ModelConfig, SparseFeatureSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Embedding dimension used by the production stand-ins.
///
/// The paper keeps `d` fixed but undisclosed; 64 makes the generated table
/// sizes land in the disclosed bands (M1/M2 "tens of GBs", M3 "hundreds").
pub const PRODUCTION_EMBEDDING_DIM: usize = 64;

/// Identifies one of the three production models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProductionModelId {
    /// M1: 30 sparse / 800 dense features, ~28 lookups, tens of GB.
    M1,
    /// M2: 13 sparse / 504 dense features, ~17 lookups, tens of GB.
    M2,
    /// M3: 127 sparse / 809 dense features, ~49 lookups, hundreds of GB.
    M3,
}

impl ProductionModelId {
    /// All three models, in paper order.
    pub const ALL: [ProductionModelId; 3] = [
        ProductionModelId::M1,
        ProductionModelId::M2,
        ProductionModelId::M3,
    ];

    /// The paper's name for the model.
    pub fn name(self) -> &'static str {
        match self {
            ProductionModelId::M1 => "M1_prod",
            ProductionModelId::M2 => "M2_prod",
            ProductionModelId::M3 => "M3_prod",
        }
    }
}

/// The disclosed aggregates for one production model (paper Table II plus
/// the hash-size means quoted in Section III.A.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionAggregates {
    /// Number of sparse features.
    pub num_sparse: usize,
    /// Number of dense features.
    pub num_dense: usize,
    /// Mean embedding lookups per sparse feature.
    pub mean_lookups: f64,
    /// Mean hash size across tables.
    pub mean_hash_size: f64,
    /// Bottom MLP widths.
    pub bottom_mlp: Vec<usize>,
    /// Top MLP widths.
    pub top_mlp: Vec<usize>,
}

impl ProductionAggregates {
    /// The disclosed aggregates for `id`.
    pub fn for_model(id: ProductionModelId) -> Self {
        match id {
            ProductionModelId::M1 => Self {
                num_sparse: 30,
                num_dense: 800,
                mean_lookups: 28.0,
                mean_hash_size: 5_700_000.0,
                bottom_mlp: vec![512],
                top_mlp: vec![512, 512, 512],
            },
            ProductionModelId::M2 => Self {
                num_sparse: 13,
                num_dense: 504,
                mean_lookups: 17.0,
                mean_hash_size: 7_300_000.0,
                bottom_mlp: vec![1024],
                top_mlp: vec![1024, 1024, 512],
            },
            ProductionModelId::M3 => Self {
                num_sparse: 127,
                num_dense: 809,
                mean_lookups: 49.0,
                mean_hash_size: 3_700_000.0,
                bottom_mlp: vec![512],
                top_mlp: vec![512, 256, 512, 256, 512],
            },
        }
    }
}

/// Generates the stand-in [`ModelConfig`] for a production model.
///
/// Per-table hash sizes follow a log-normal spectrum clamped to
/// `[30, 20 million]`; per-table mean lookups follow a truncated power law.
/// Both populations are rescaled so their empirical means match the
/// disclosed aggregates exactly (up to clamping at the range edges).
///
/// The generation is deterministic for a given `id`.
///
/// # Example
///
/// ```
/// use recsim_data::production::{production_model, ProductionModelId};
///
/// let m1 = production_model(ProductionModelId::M1);
/// assert_eq!(m1.num_sparse(), 30);
/// assert_eq!(m1.num_dense(), 800);
/// let gib = m1.total_embedding_bytes() as f64 / (1u64 << 30) as f64;
/// assert!(gib > 10.0 && gib < 100.0, "M1 is 'tens of GBs', got {gib:.1}");
/// ```
pub fn production_model(id: ProductionModelId) -> ModelConfig {
    let agg = ProductionAggregates::for_model(id);
    let seed = match id {
        ProductionModelId::M1 => 0x51_u64,
        ProductionModelId::M2 => 0x52_u64,
        ProductionModelId::M3 => 0x53_u64,
    };
    let mut rng = StdRng::seed_from_u64(seed);

    // Draw raw populations.
    let spectrum = HashSizeSpectrum::production(agg.mean_hash_size);
    let mut hash_sizes: Vec<f64> = (0..agg.num_sparse)
        .map(|_| spectrum.sample(&mut rng) as f64)
        .collect();
    let lengths = PowerLawLengths::new(1.7, 200);
    let mut mean_lookups: Vec<f64> = (0..agg.num_sparse)
        .map(|_| lengths.sample(&mut rng) as f64)
        .collect();

    // Rescale to hit the disclosed means (values pinned at the range edges
    // are excluded from further scaling so the mean converges).
    rescale_to_mean(&mut hash_sizes, agg.mean_hash_size, 30.0, 20_000_000.0);
    rescale_to_mean(&mut mean_lookups, agg.mean_lookups, 1.0, 200.0);

    let sparse: Vec<SparseFeatureSpec> = hash_sizes
        .iter()
        .zip(&mean_lookups)
        .enumerate()
        .map(|(i, (&h, &l))| {
            SparseFeatureSpec::new(
                format!("{}_{i}", id.name()),
                (h.round() as u64).max(30),
                l.max(1.0),
            )
        })
        .collect();

    ModelConfig::new(
        id.name(),
        agg.num_dense,
        sparse,
        PRODUCTION_EMBEDDING_DIM,
        agg.bottom_mlp.clone(),
        agg.top_mlp.clone(),
        Interaction::DotProduct,
        // Production models do not truncate at the test-suite's 32.
        200,
    )
}

/// A laptop-scale version of a production model for *real* training: hash
/// sizes divided by `shrink` (minimum 50 rows), dense features divided by
/// `shrink_dense`, MLPs kept. Used by the accuracy experiments where actual
/// numerics must run in seconds, not days.
///
/// # Panics
///
/// Panics if either shrink factor is zero.
pub fn scaled_production_model(
    id: ProductionModelId,
    shrink: u64,
    shrink_dense: usize,
) -> ModelConfig {
    assert!(
        shrink > 0 && shrink_dense > 0,
        "shrink factors must be positive"
    );
    let full = production_model(id);
    let sparse = full
        .sparse_features()
        .iter()
        .map(|f| {
            SparseFeatureSpec::new(
                f.name(),
                (f.hash_size() / shrink).max(50),
                f.mean_lookups().min(8.0),
            )
        })
        .collect();
    ModelConfig::new(
        format!("{}-scaled", full.name()),
        (full.num_dense() / shrink_dense).max(8),
        sparse,
        16,
        full.bottom_mlp().iter().map(|&w| (w / 8).max(8)).collect(),
        full.top_mlp().iter().map(|&w| (w / 8).max(8)).collect(),
        Interaction::DotProduct,
        8,
    )
}

fn rescale_to_mean(values: &mut [f64], target: f64, lo: f64, hi: f64) {
    for _ in 0..100 {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        if mean <= 0.0 || (mean / target - 1.0).abs() < 0.005 {
            return;
        }
        let factor = target / mean;
        for v in values.iter_mut() {
            // Values already pinned at the edge the scaling pushes toward
            // stay put; the rest absorb the correction.
            *v = (*v * factor).clamp(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_feature_counts() {
        for (id, sparse, dense) in [
            (ProductionModelId::M1, 30, 800),
            (ProductionModelId::M2, 13, 504),
            (ProductionModelId::M3, 127, 809),
        ] {
            let m = production_model(id);
            assert_eq!(m.num_sparse(), sparse);
            assert_eq!(m.num_dense(), dense);
        }
    }

    #[test]
    fn mean_lookups_match_table_two() {
        for (id, lookups) in [
            (ProductionModelId::M1, 28.0),
            (ProductionModelId::M2, 17.0),
            (ProductionModelId::M3, 49.0),
        ] {
            let m = production_model(id);
            let mean = m.mean_lookups_per_feature();
            assert!(
                (mean / lookups - 1.0).abs() < 0.10,
                "{}: mean lookups {mean:.1} should be ~{lookups}",
                id.name()
            );
        }
    }

    #[test]
    fn mean_hash_sizes_match_section_three() {
        for (id, target) in [
            (ProductionModelId::M1, 5_700_000.0),
            (ProductionModelId::M2, 7_300_000.0),
            (ProductionModelId::M3, 3_700_000.0),
        ] {
            let m = production_model(id);
            let mean = m
                .sparse_features()
                .iter()
                .map(|f| f.hash_size() as f64)
                .sum::<f64>()
                / m.num_sparse() as f64;
            assert!(
                (mean / target - 1.0).abs() < 0.10,
                "{}: mean hash {mean:.0} should be ~{target:.0}",
                id.name()
            );
        }
    }

    #[test]
    fn hash_sizes_within_figure_six_range() {
        for id in ProductionModelId::ALL {
            for f in production_model(id).sparse_features() {
                assert!((30..=20_000_000).contains(&f.hash_size()));
            }
        }
    }

    #[test]
    fn embedding_size_bands_match_table_two() {
        let gib = |id| production_model(id).total_embedding_bytes() as f64 / (1u64 << 30) as f64;
        let m1 = gib(ProductionModelId::M1);
        let m2 = gib(ProductionModelId::M2);
        let m3 = gib(ProductionModelId::M3);
        assert!(m1 > 10.0 && m1 < 100.0, "M1 tens of GB, got {m1:.1}");
        assert!(m2 > 10.0 && m2 < 100.0, "M2 tens of GB, got {m2:.1}");
        assert!(
            (100.0..1000.0).contains(&m3),
            "M3 hundreds of GB, got {m3:.1}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            production_model(ProductionModelId::M2),
            production_model(ProductionModelId::M2)
        );
    }

    #[test]
    fn lookup_distribution_is_skewed() {
        // Figure 7: power-law-ish — a few tables far above the mean.
        let m = production_model(ProductionModelId::M3);
        let mean = m.mean_lookups_per_feature();
        let above_2x = m
            .sparse_features()
            .iter()
            .filter(|f| f.mean_lookups() > 2.0 * mean)
            .count();
        let below_mean = m
            .sparse_features()
            .iter()
            .filter(|f| f.mean_lookups() < mean)
            .count();
        assert!(above_2x >= 3, "tail tables exist: {above_2x}");
        assert!(
            below_mean > m.num_sparse() / 2,
            "majority below the mean: {below_mean}"
        );
    }

    #[test]
    fn scaled_model_is_small() {
        let s = scaled_production_model(ProductionModelId::M1, 100_000, 50);
        assert!(s.total_embedding_bytes() < (1 << 26), "fits in tens of MB");
        assert!(s.num_dense() >= 8);
        for f in s.sparse_features() {
            assert!(f.hash_size() >= 50);
        }
    }
}
