//! Synthetic CTR example generation with a planted logistic teacher.
//!
//! The paper trains on production click logs; we substitute a generator
//! whose *statistics* match what the paper discloses (Zipf-skewed index
//! popularity, per-feature lookup counts, dense Gaussian features) and whose
//! labels come from a planted logistic model, so that real training runs
//! (the Figure 15 accuracy study) have signal to learn and a well-defined
//! Bayes risk.

use crate::batch::{MiniBatch, SparseBatch};
use crate::dist::{SplitMix64, TruncatedPoissonTable, ZipfTable};
use crate::schema::ModelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

/// Digest of a generated batch's full contents, recorded as stage
/// `data/batch` when the determinism sanitizer is armed: any divergence in
/// data generation is caught here, before it can masquerade as a simulator
/// or trainer bug downstream.
fn batch_digest(batch: &MiniBatch) -> u64 {
    let mut d = recsim_detsan::StateDigest::new();
    d.write_usize(batch.batch_size());
    for &x in batch.dense() {
        d.write_f32(x);
    }
    d.write_usize(batch.sparse().len());
    for sb in batch.sparse() {
        d.write_usize(sb.indices().len());
        for &i in sb.indices() {
            d.write_u32(i);
        }
    }
    for &l in batch.labels() {
        d.write_f32(l);
    }
    d.finish()
}

/// Tunables of the synthetic data distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataParams {
    /// Zipf exponent for embedding-row popularity (> 0; ~1.1 matches
    /// heavy-skew production access patterns).
    pub zipf_exponent: f64,
    /// Weight of the dense part of the teacher logit.
    pub dense_signal: f64,
    /// Weight of the sparse part of the teacher logit.
    pub sparse_signal: f64,
    /// Teacher bias (controls base CTR; negative means CTR < 50%).
    pub bias: f64,
}

impl Default for DataParams {
    fn default() -> Self {
        Self {
            zipf_exponent: 1.1,
            dense_signal: 1.0,
            sparse_signal: 1.0,
            bias: -1.0,
        }
    }
}

/// Deterministic per-(table, row) teacher score: a hash of the identifiers
/// mapped to an approximately standard-normal value. O(1) memory regardless
/// of hash size, so 20-million-row tables cost nothing.
fn row_score(seed: u64, feature: usize, index: u32) -> f32 {
    let mut x = seed
        ^ (feature as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // splitmix64 finalizer
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // Sum of 4 uniforms → Irwin-Hall, nearly Gaussian; center and scale.
    let mut acc = 0.0f64;
    for shift in [0u32, 16, 32, 48] {
        acc += ((x >> shift) & 0xFFFF) as f64 / 65535.0;
    }
    ((acc - 2.0) * (12.0f64 / 4.0).sqrt()) as f32
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A deterministic, seedable stream of labelled CTR mini-batches for a given
/// [`ModelConfig`].
///
/// # Example
///
/// ```
/// use recsim_data::{schema::ModelConfig, CtrGenerator};
///
/// let config = ModelConfig::test_suite(16, 4, 1000, &[32]);
/// let mut gen = CtrGenerator::new(&config, 7);
/// let batch = gen.next_batch(8);
/// assert_eq!(batch.batch_size(), 8);
/// assert_eq!(batch.sparse().len(), 4);
/// let ctr = batch.ctr();
/// assert!((0.0..=1.0).contains(&ctr));
/// ```
#[derive(Debug, Clone)]
pub struct CtrGenerator {
    config: ModelConfig,
    params: DataParams,
    stream: SplitMix64,
    teacher_seed: u64,
    dense_weights: Vec<f32>,
    zipf: Vec<ZipfTable>,
    lengths: Vec<TruncatedPoissonTable>,
}

impl CtrGenerator {
    /// Creates a generator with default [`DataParams`]. The same seed is
    /// used for the planted teacher and the sample stream.
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        Self::with_params(config, seed, DataParams::default())
    }

    /// Creates a generator whose *teacher* (the ground-truth labelling
    /// function) comes from `teacher_seed` while the example stream comes
    /// from `stream_seed`. Distributed workers share a teacher but draw
    /// disjoint streams; held-out evaluation uses the same teacher with yet
    /// another stream.
    pub fn with_seeds(config: &ModelConfig, teacher_seed: u64, stream_seed: u64) -> Self {
        let mut gen = Self::with_params(config, teacher_seed, DataParams::default());
        gen.stream = SplitMix64::new(stream_seed);
        gen
    }

    /// Creates a generator with explicit distribution parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.zipf_exponent` is not positive.
    pub fn with_params(config: &ModelConfig, seed: u64, params: DataParams) -> Self {
        // Teacher weights keep the original StdRng draw (cold path, once per
        // generator); the per-example stream is the fast splitmix sequence.
        let mut rng = StdRng::seed_from_u64(seed);
        let dense_weights: Vec<f32> = (0..config.num_dense())
            .map(|_| {
                let g: f64 = StandardNormal.sample(&mut rng);
                g as f32
            })
            .collect();
        let zipf = config
            .sparse_features()
            .iter()
            .map(|f| ZipfTable::new(f.hash_size(), params.zipf_exponent))
            .collect();
        let lengths = config
            .sparse_features()
            .iter()
            .map(|f| TruncatedPoissonTable::new(f.mean_lookups().max(0.01), config.truncation()))
            .collect();
        Self {
            config: config.clone(),
            params,
            teacher_seed: seed.wrapping_mul(0xA24B_AED4_963E_E407),
            stream: SplitMix64::new(seed),
            dense_weights,
            zipf,
            lengths,
        }
    }

    /// The model configuration this generator serves.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The data distribution parameters.
    pub fn params(&self) -> &DataParams {
        &self.params
    }

    /// The teacher's probability for a single example described by its
    /// dense row and per-feature index sets — exposed so tests (and the
    /// Bayes-risk estimator) can inspect the ground truth.
    pub fn teacher_probability(&self, dense: &[f32], sparse: &[Vec<u32>]) -> f64 {
        let d = self.config.num_dense() as f64;
        let mut logit = self.params.bias;
        let dot: f64 = dense
            .iter()
            .zip(&self.dense_weights)
            .map(|(&x, &w)| (x * w) as f64)
            .sum();
        logit += self.params.dense_signal * dot / d.sqrt();
        for (f, idxs) in sparse.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let s: f64 = idxs
                .iter()
                .map(|&i| row_score(self.teacher_seed, f, i) as f64)
                .sum();
            logit += self.params.sparse_signal * s
                / (idxs.len() as f64).sqrt()
                / (sparse.len() as f64).sqrt();
        }
        sigmoid(logit)
    }

    /// Generates the next mini-batch of `batch_size` labelled examples.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn next_batch(&mut self, batch_size: usize) -> MiniBatch {
        assert!(batch_size > 0, "batch size must be positive");
        let num_dense = self.config.num_dense();
        let num_sparse = self.config.sparse_features().len();
        let d_sqrt = (num_dense as f64).sqrt();
        let f_sqrt = (num_sparse as f64).sqrt();

        // Flat, preallocated buffers: the per-example loop below allocates
        // nothing, and the teacher logit is accumulated inline — in exactly
        // the float-op order of `teacher_probability`, so labels and the
        // Bayes estimator see bit-identical probabilities.
        let mut dense = Vec::with_capacity(batch_size * num_dense);
        let mut per_feature: Vec<(Vec<usize>, Vec<u32>)> = (0..num_sparse)
            .map(|f| {
                let mut offsets = Vec::with_capacity(batch_size + 1);
                offsets.push(0usize);
                let expect = (self.config.sparse_features()[f].mean_lookups().ceil() as usize)
                    .max(1)
                    * batch_size;
                (offsets, Vec::with_capacity(expect))
            })
            .collect();
        let mut labels = Vec::with_capacity(batch_size);

        for _ in 0..batch_size {
            let mut logit = self.params.bias;
            // detsan: reduction-order — sequential dense-weight dot, same
            // order as `teacher_probability`
            let mut dot = 0.0f64;
            for &w in &self.dense_weights {
                let x = self.stream.next_normal_f32();
                dense.push(x);
                dot += (x * w) as f64;
            }
            logit += self.params.dense_signal * dot / d_sqrt;
            for (f, (offsets, indices)) in per_feature.iter_mut().enumerate() {
                let len = self.lengths[f].sample(&mut self.stream) as usize;
                // detsan: reduction-order — sequential row-score sum in
                // lookup order, same order as `teacher_probability`
                let mut s = 0.0f64;
                for _ in 0..len {
                    let idx = self.zipf[f].sample(&mut self.stream) as u32;
                    indices.push(idx);
                    s += row_score(self.teacher_seed, f, idx) as f64;
                }
                offsets.push(indices.len());
                logit += self.params.sparse_signal * s / (len as f64).sqrt() / f_sqrt;
            }
            let p = sigmoid(logit);
            let label = if self.stream.next_f64() < p { 1.0 } else { 0.0 };
            labels.push(label);
        }

        let sparse = per_feature
            .into_iter()
            .map(|(offsets, indices)| SparseBatch::new(offsets, indices))
            .collect();
        let batch = MiniBatch::new(batch_size, num_dense, dense, sparse, labels);
        if recsim_detsan::enabled() {
            recsim_detsan::record("data/batch", batch_digest(&batch));
        }
        batch
    }

    /// Estimates the Bayes-optimal binary cross-entropy of the data
    /// distribution from `n` fresh examples: the loss an oracle predicting
    /// the teacher probability would achieve. Real training can approach but
    /// never beat this.
    pub fn estimate_bayes_log_loss(&mut self, n: usize) -> f64 {
        assert!(n > 0, "need at least one example");
        let mut total = 0.0;
        let mut count = 0usize;
        while count < n {
            let take = (n - count).min(256);
            let batch = self.next_batch(take);
            for i in 0..take {
                let idxs: Vec<Vec<u32>> = batch
                    .sparse()
                    .iter()
                    .map(|sb| sb.example(i).to_vec())
                    .collect();
                let p = self
                    .teacher_probability(batch.dense_row(i), &idxs)
                    .clamp(1e-7, 1.0 - 1e-7);
                let y = batch.labels()[i] as f64;
                total += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            }
            count += take;
        }
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ModelConfig {
        ModelConfig::test_suite(8, 3, 500, &[16])
    }

    #[test]
    fn batches_have_consistent_shape() {
        let mut g = CtrGenerator::new(&config(), 1);
        let b = g.next_batch(32);
        assert_eq!(b.batch_size(), 32);
        assert_eq!(b.dense().len(), 32 * 8);
        assert_eq!(b.sparse().len(), 3);
        for sb in b.sparse() {
            assert_eq!(sb.batch_size(), 32);
            assert!(sb.max_index().unwrap() < 500);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = CtrGenerator::new(&config(), 99);
        let mut b = CtrGenerator::new(&config(), 99);
        assert_eq!(a.next_batch(16), b.next_batch(16));
        let mut c = CtrGenerator::new(&config(), 100);
        assert_ne!(a.next_batch(16), c.next_batch(16));
    }

    #[test]
    fn lookups_respect_truncation() {
        let cfg = config().with_truncation(2);
        let mut g = CtrGenerator::new(&cfg, 5);
        let b = g.next_batch(64);
        for sb in b.sparse() {
            for row in sb.iter() {
                assert!((1..=2).contains(&row.len()));
            }
        }
    }

    #[test]
    fn teacher_probabilities_in_unit_interval() {
        let g = CtrGenerator::new(&config(), 2);
        let dense = vec![0.5f32; 8];
        let sparse = vec![vec![1u32, 2], vec![3], vec![4]];
        let p = g.teacher_probability(&dense, &sparse);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn labels_are_learnable_not_degenerate() {
        let mut g = CtrGenerator::new(&config(), 3);
        let b = g.next_batch(2000);
        let ctr = b.ctr();
        assert!(ctr > 0.05 && ctr < 0.95, "ctr = {ctr}");
    }

    #[test]
    fn bayes_loss_below_entropy_of_marginal() {
        let mut g = CtrGenerator::new(&config(), 4);
        let bayes = g.estimate_bayes_log_loss(4000);
        let mut g2 = CtrGenerator::new(&config(), 4);
        let p = g2.next_batch(4000).ctr().clamp(1e-6, 1.0 - 1e-6);
        let marginal_entropy = -(p * p.ln() + (1.0 - p) * (1.0 - p).ln());
        assert!(
            bayes < marginal_entropy,
            "teacher must carry signal: bayes {bayes} vs marginal {marginal_entropy}"
        );
    }

    #[test]
    fn with_seeds_shares_teacher_but_not_stream() {
        let cfg = config();
        let mut a = CtrGenerator::with_seeds(&cfg, 7, 100);
        let mut b = CtrGenerator::with_seeds(&cfg, 7, 200);
        // Different streams...
        assert_ne!(a.next_batch(8), b.next_batch(8));
        // ...same teacher.
        let dense = vec![0.3f32; 8];
        let sparse = vec![vec![1u32], vec![2], vec![3]];
        assert_eq!(
            a.teacher_probability(&dense, &sparse),
            b.teacher_probability(&dense, &sparse)
        );
        // A different teacher seed changes the labelling function.
        let c = CtrGenerator::with_seeds(&cfg, 8, 100);
        assert_ne!(
            a.teacher_probability(&dense, &sparse),
            c.teacher_probability(&dense, &sparse)
        );
    }

    #[test]
    fn row_scores_deterministic_and_varied() {
        let a = row_score(1, 0, 42);
        let b = row_score(1, 0, 42);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<i32> = (0..100)
            .map(|i| (row_score(1, 0, i) * 1000.0) as i32)
            .collect();
        assert!(distinct.len() > 50);
    }
}
