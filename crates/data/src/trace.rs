//! Embedding-access trace collection and locality analysis.
//!
//! Section III.A.2 of the paper observes that embedding accesses are
//! heavily skewed ("there exists a small number of tables that are accessed
//! much more frequently than others") and names "caching … for these large
//! embedding tables" as the optimization opportunity that skew opens. This
//! module quantifies that opportunity: it collects row-level access traces
//! from the synthetic workload and computes
//!
//! * static hot-set coverage (what fraction of lookups the top-k rows
//!   serve), and
//! * the full LRU hit-rate curve in one pass, via Mattson stack distances
//!   computed with a Fenwick tree (Olken's algorithm, `O(n log n)`).

use crate::synthetic::CtrGenerator;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A Fenwick (binary-indexed) tree over access timestamps, used to count
/// distinct rows touched between two accesses to the same row.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i]`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut s = 0u32;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// The reuse-distance profile of one table's access stream.
///
/// `distances[d]` counts accesses whose LRU stack distance is `d` (the
/// number of *distinct* rows touched since the previous access to the same
/// row); cold misses are counted separately. The LRU hit rate for any cache
/// size falls out of the cumulative histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseProfile {
    distances: Vec<u64>,
    cold_misses: u64,
    total_accesses: u64,
    unique_rows: u64,
    row_frequencies: Vec<u64>,
}

impl ReuseProfile {
    /// Computes the profile of an access stream.
    pub fn from_stream(accesses: &[u32]) -> Self {
        let n = accesses.len();
        let mut fenwick = Fenwick::new(n);
        // BTreeMaps, not hash maps: `row_frequencies` ties broken by row id
        // must come out in one fixed order for byte-identical artifacts.
        let mut last_pos: BTreeMap<u32, usize> = BTreeMap::new();
        let mut freq: BTreeMap<u32, u64> = BTreeMap::new();
        let mut distances: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        for (t, &row) in accesses.iter().enumerate() {
            *freq.entry(row).or_insert(0) += 1;
            match last_pos.get(&row).copied() {
                None => cold += 1,
                Some(prev) => {
                    // Distinct rows whose most recent access lies in
                    // (prev, t): the stack distance.
                    let d = (fenwick.prefix(t.max(1) - 1) - fenwick.prefix(prev)) as usize;
                    if distances.len() <= d {
                        distances.resize(d + 1, 0);
                    }
                    distances[d] += 1;
                    fenwick.add(prev, -1);
                }
            }
            fenwick.add(t, 1);
            last_pos.insert(row, t);
        }
        let mut row_frequencies: Vec<u64> = freq.into_values().collect();
        row_frequencies.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            distances,
            cold_misses: cold,
            total_accesses: n as u64,
            unique_rows: row_frequencies.len() as u64,
            row_frequencies,
        }
    }

    /// Total accesses in the stream.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Number of distinct rows touched.
    pub fn unique_rows(&self) -> u64 {
        self.unique_rows
    }

    /// First-touch (cold) misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Hit rate of an LRU cache holding `cache_rows` rows: the fraction of
    /// accesses with stack distance < `cache_rows`. Zero when the stream is
    /// empty.
    pub fn lru_hit_rate(&self, cache_rows: usize) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        let hits: u64 = self.distances.iter().take(cache_rows).sum();
        hits as f64 / self.total_accesses as f64
    }

    /// Fraction of accesses served by the `k` most frequent rows — the
    /// ceiling for a *static* hot-row cache.
    pub fn top_k_coverage(&self, k: usize) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        let covered: u64 = self.row_frequencies.iter().take(k).sum();
        covered as f64 / self.total_accesses as f64
    }

    /// `(cache_rows, hit_rate)` points at geometrically spaced cache sizes
    /// up to the unique-row count — the curve a cache-provisioning study
    /// plots.
    pub fn hit_rate_curve(&self, points: usize) -> Vec<(usize, f64)> {
        let max = self.unique_rows.max(1) as f64;
        (0..points.max(1))
            .map(|i| {
                let frac = (i + 1) as f64 / points as f64;
                let rows = max.powf(frac).round().max(1.0) as usize;
                (rows, self.lru_hit_rate(rows))
            })
            .collect()
    }
}

/// Row-access traces for every table of a model, collected from the
/// synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessTrace {
    per_table: Vec<Vec<u32>>,
}

impl AccessTrace {
    /// Streams `examples` examples from `generator` and records each
    /// table's row-access sequence (features sharing a table interleave
    /// into one stream, as they do in memory).
    ///
    /// # Panics
    ///
    /// Panics if `examples == 0`.
    pub fn collect(generator: &mut CtrGenerator, examples: usize) -> Self {
        assert!(examples > 0, "need at least one example");
        let config = generator.config().clone();
        let mut per_table: Vec<Vec<u32>> = vec![Vec::new(); config.num_tables()];
        let mut remaining = examples;
        while remaining > 0 {
            let take = remaining.min(512);
            let batch = generator.next_batch(take);
            for (f, sb) in batch.sparse().iter().enumerate() {
                per_table[config.table_of(f)].extend_from_slice(sb.indices());
            }
            remaining -= take;
        }
        Self { per_table }
    }

    /// Number of tables traced.
    pub fn num_tables(&self) -> usize {
        self.per_table.len()
    }

    /// The raw access stream of table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn stream(&self, t: usize) -> &[u32] {
        &self.per_table[t]
    }

    /// Reuse profile of table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn profile(&self, t: usize) -> ReuseProfile {
        ReuseProfile::from_stream(&self.per_table[t])
    }

    /// One merged profile across all tables (rows namespaced per table), as
    /// a shared cache would see the traffic.
    pub fn merged_profile(&self) -> ReuseProfile {
        // Interleave per-example order is already lost; concatenating per
        // table overstates locality, so interleave round-robin in chunks.
        let mut merged = Vec::new();
        let chunk = 64usize;
        let mut offsets = vec![0usize; self.per_table.len()];
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (t, stream) in self.per_table.iter().enumerate() {
                let start = offsets[t];
                if start < stream.len() {
                    let end = (start + chunk).min(stream.len());
                    // Namespace rows by table to avoid collisions.
                    merged.extend(
                        stream[start..end]
                            .iter()
                            .map(|&r| (t as u32) << 26 | (r & 0x03FF_FFFF)),
                    );
                    offsets[t] = end;
                    progressed = true;
                }
            }
        }
        ReuseProfile::from_stream(&merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ModelConfig;

    #[test]
    fn stack_distances_match_hand_computation() {
        // Stream: a b a c b a
        //   a@0 cold; b@1 cold; a@2 d=1 (b); c@3 cold; b@4 d=2 (c,a);
        //   a@5 d=2 (b,c).
        let p = ReuseProfile::from_stream(&[0, 1, 0, 2, 1, 0]);
        assert_eq!(p.cold_misses(), 3);
        assert_eq!(p.total_accesses(), 6);
        assert_eq!(p.unique_rows(), 3);
        // Cache of 1 row: no hits (all distances >= 1).
        assert_eq!(p.lru_hit_rate(1), 0.0);
        // Cache of 2 rows: the d=1 access hits.
        assert!((p.lru_hit_rate(2) - 1.0 / 6.0).abs() < 1e-12);
        // Cache of 3 rows: d=1 and both d=2 accesses hit.
        assert!((p.lru_hit_rate(3) - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_single_row_is_all_hits() {
        let p = ReuseProfile::from_stream(&[7; 100]);
        assert_eq!(p.cold_misses(), 1);
        assert!((p.lru_hit_rate(1) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn scan_has_no_reuse() {
        let stream: Vec<u32> = (0..1000).collect();
        let p = ReuseProfile::from_stream(&stream);
        assert_eq!(p.cold_misses(), 1000);
        assert_eq!(p.lru_hit_rate(1000), 0.0);
    }

    #[test]
    fn hit_rate_is_monotone_in_cache_size() {
        let cfg = ModelConfig::test_suite(8, 2, 5_000, &[16]);
        let mut gen = CtrGenerator::new(&cfg, 3);
        let trace = AccessTrace::collect(&mut gen, 2_000);
        let p = trace.profile(0);
        let mut last = 0.0;
        for (_, hr) in p.hit_rate_curve(12) {
            assert!(hr >= last - 1e-12, "monotone hit-rate curve");
            last = hr;
        }
        // Full-size cache only misses cold.
        let full = p.lru_hit_rate(p.unique_rows() as usize);
        let expected = 1.0 - p.cold_misses() as f64 / p.total_accesses() as f64;
        assert!((full - expected).abs() < 1e-9);
    }

    #[test]
    fn zipf_traffic_concentrates_in_small_caches() {
        // The paper's caching opportunity: skewed access means a cache far
        // smaller than the table serves most lookups.
        let cfg = ModelConfig::test_suite(8, 1, 100_000, &[16]);
        let mut gen = CtrGenerator::new(&cfg, 11);
        let trace = AccessTrace::collect(&mut gen, 8_000);
        let p = trace.profile(0);
        let one_percent = (p.unique_rows() as usize / 100).max(1);
        assert!(
            p.top_k_coverage(one_percent) > 0.25,
            "top 1% of rows should serve >25% of lookups, got {:.2}",
            p.top_k_coverage(one_percent)
        );
        let ten_percent = (p.unique_rows() as usize / 10).max(1);
        assert!(
            p.lru_hit_rate(ten_percent) > 0.4,
            "a 10% LRU cache should serve >40% of lookups, got {:.2}",
            p.lru_hit_rate(ten_percent)
        );
    }

    #[test]
    fn merged_profile_spans_tables() {
        let cfg = ModelConfig::test_suite(8, 3, 1_000, &[16]);
        let mut gen = CtrGenerator::new(&cfg, 5);
        let trace = AccessTrace::collect(&mut gen, 500);
        let merged = trace.merged_profile();
        let per_table_total: u64 = (0..3).map(|t| trace.profile(t).total_accesses()).sum();
        assert_eq!(merged.total_accesses(), per_table_total);
        assert!(merged.unique_rows() >= trace.profile(0).unique_rows());
    }

    #[test]
    fn top_k_coverage_reaches_one() {
        let p = ReuseProfile::from_stream(&[1, 2, 3, 1, 1]);
        assert!((p.top_k_coverage(3) - 1.0).abs() < 1e-12);
        assert!((p.top_k_coverage(1) - 0.6).abs() < 1e-12);
    }
}
