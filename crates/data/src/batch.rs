//! Mini-batch containers in CSR (offsets + indices) form.

use serde::{Deserialize, Serialize};

/// One sparse feature's activated indices across a mini-batch, in CSR form:
/// example `i`'s indices are `indices[offsets[i]..offsets[i+1]]`.
///
/// # Example
///
/// ```
/// use recsim_data::SparseBatch;
///
/// // Example 0 activates rows {3, 5}; example 1 activates {9}.
/// let sb = SparseBatch::new(vec![0, 2, 3], vec![3, 5, 9]);
/// assert_eq!(sb.batch_size(), 2);
/// assert_eq!(sb.example(0), &[3, 5]);
/// assert_eq!(sb.example(1), &[9]);
/// assert_eq!(sb.total_lookups(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseBatch {
    offsets: Vec<usize>,
    indices: Vec<u32>,
}

impl SparseBatch {
    /// Creates a CSR sparse batch.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not a valid monotone CSR offset array ending
    /// at `indices.len()`.
    pub fn new(offsets: Vec<usize>, indices: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must start with 0");
        assert_eq!(offsets[0], 0, "offsets must start with 0");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            indices.len(),
            "offsets must end at indices.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        Self { offsets, indices }
    }

    /// An empty batch of `batch_size` examples with no activations.
    pub fn empty(batch_size: usize) -> Self {
        Self {
            offsets: vec![0; batch_size + 1],
            indices: Vec::new(),
        }
    }

    /// Number of examples.
    pub fn batch_size(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Indices activated by example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn example(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total lookups across the batch.
    pub fn total_lookups(&self) -> usize {
        self.indices.len()
    }

    /// The CSR offsets.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Iterator over per-example index slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.batch_size()).map(move |i| self.example(i))
    }

    /// Largest index referenced, if any — used to validate against a table's
    /// hash size.
    pub fn max_index(&self) -> Option<u32> {
        self.indices.iter().copied().max()
    }

    /// Copies examples `[start, end)` into a standalone CSR batch with
    /// rebased offsets.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > batch_size()`.
    pub fn slice(&self, start: usize, end: usize) -> SparseBatch {
        assert!(start <= end && end <= self.batch_size(), "slice bounds");
        let base = self.offsets[start];
        let offsets = self.offsets[start..=end]
            .iter()
            .map(|&o| o - base)
            .collect();
        let indices = self.indices[base..self.offsets[end]].to_vec();
        SparseBatch { offsets, indices }
    }
}

/// A complete mini-batch: dense features (row-major `B × num_dense`), one
/// [`SparseBatch`] per sparse feature, and binary labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniBatch {
    batch_size: usize,
    num_dense: usize,
    dense: Vec<f32>,
    sparse: Vec<SparseBatch>,
    labels: Vec<f32>,
}

impl MiniBatch {
    /// Creates a mini-batch.
    ///
    /// # Panics
    ///
    /// Panics if array lengths are inconsistent with `batch_size` /
    /// `num_dense`, or any sparse batch disagrees on batch size.
    pub fn new(
        batch_size: usize,
        num_dense: usize,
        dense: Vec<f32>,
        sparse: Vec<SparseBatch>,
        labels: Vec<f32>,
    ) -> Self {
        assert_eq!(dense.len(), batch_size * num_dense, "dense shape mismatch");
        assert_eq!(labels.len(), batch_size, "label count mismatch");
        for (i, sb) in sparse.iter().enumerate() {
            assert_eq!(
                sb.batch_size(),
                batch_size,
                "sparse feature {i} batch size mismatch"
            );
        }
        Self {
            batch_size,
            num_dense,
            dense,
            sparse,
            labels,
        }
    }

    /// Number of examples.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of dense features per example.
    pub fn num_dense(&self) -> usize {
        self.num_dense
    }

    /// Row-major dense matrix (`batch_size × num_dense`).
    pub fn dense(&self) -> &[f32] {
        &self.dense
    }

    /// Dense row of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn dense_row(&self, i: usize) -> &[f32] {
        &self.dense[i * self.num_dense..(i + 1) * self.num_dense]
    }

    /// Per-feature sparse activations.
    pub fn sparse(&self) -> &[SparseBatch] {
        &self.sparse
    }

    /// Binary labels in `{0.0, 1.0}`.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// Total embedding lookups across all features.
    pub fn total_lookups(&self) -> usize {
        self.sparse.iter().map(SparseBatch::total_lookups).sum()
    }

    /// Empirical click-through rate of the batch.
    pub fn ctr(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.labels.iter().map(|&l| l as f64).sum::<f64>() / self.labels.len() as f64
        }
    }

    /// Copies examples `[start, end)` into a standalone mini-batch: dense
    /// rows and labels sliced, every sparse feature re-based via
    /// [`SparseBatch::slice`]. Used by the batch-shard-parallel trainer to
    /// hand each worker a self-contained shard.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> MiniBatch {
        assert!(start < end && end <= self.batch_size, "slice bounds");
        MiniBatch {
            batch_size: end - start,
            num_dense: self.num_dense,
            dense: self.dense[start * self.num_dense..end * self.num_dense].to_vec(),
            sparse: self.sparse.iter().map(|sb| sb.slice(start, end)).collect(),
            labels: self.labels[start..end].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let sb = SparseBatch::new(vec![0, 1, 1, 4], vec![7, 1, 2, 3]);
        assert_eq!(sb.batch_size(), 3);
        assert_eq!(sb.example(0), &[7]);
        assert_eq!(sb.example(1), &[] as &[u32]);
        assert_eq!(sb.example(2), &[1, 2, 3]);
        assert_eq!(sb.max_index(), Some(7));
    }

    #[test]
    fn empty_batch() {
        let sb = SparseBatch::empty(4);
        assert_eq!(sb.batch_size(), 4);
        assert_eq!(sb.total_lookups(), 0);
        assert_eq!(sb.max_index(), None);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_offsets_rejected() {
        SparseBatch::new(vec![0, 3, 2, 4], vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "end at")]
    fn mismatched_tail_rejected() {
        SparseBatch::new(vec![0, 1], vec![1, 2]);
    }

    #[test]
    fn minibatch_shape_checks() {
        let mb = MiniBatch::new(
            2,
            3,
            vec![0.0; 6],
            vec![SparseBatch::empty(2)],
            vec![1.0, 0.0],
        );
        assert_eq!(mb.dense_row(1).len(), 3);
        assert_eq!(mb.ctr(), 0.5);
        assert_eq!(mb.total_lookups(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn sparse_batch_size_enforced() {
        MiniBatch::new(
            2,
            1,
            vec![0.0; 2],
            vec![SparseBatch::empty(3)],
            vec![0.0; 2],
        );
    }

    #[test]
    fn iter_yields_all_examples() {
        let sb = SparseBatch::new(vec![0, 2, 3], vec![1, 2, 3]);
        let rows: Vec<&[u32]> = sb.iter().collect();
        assert_eq!(rows, vec![&[1u32, 2][..], &[3u32][..]]);
    }

    #[test]
    fn sparse_slice_rebases_offsets() {
        let sb = SparseBatch::new(vec![0, 1, 1, 4, 6], vec![7, 1, 2, 3, 9, 8]);
        let mid = sb.slice(1, 3);
        assert_eq!(mid.batch_size(), 2);
        assert_eq!(mid.offsets(), &[0, 0, 3]);
        assert_eq!(mid.example(0), &[] as &[u32]);
        assert_eq!(mid.example(1), &[1, 2, 3]);
        // Full-range slice is identity.
        assert_eq!(sb.slice(0, 4), sb);
    }

    #[test]
    fn minibatch_slice_matches_per_example_views() {
        let mb = MiniBatch::new(
            3,
            2,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            vec![SparseBatch::new(vec![0, 2, 2, 3], vec![4, 5, 6])],
            vec![1.0, 0.0, 1.0],
        );
        let shard = mb.slice(1, 3);
        assert_eq!(shard.batch_size(), 2);
        assert_eq!(shard.dense_row(0), mb.dense_row(1));
        assert_eq!(shard.dense_row(1), mb.dense_row(2));
        assert_eq!(shard.labels(), &mb.labels()[1..3]);
        assert_eq!(shard.sparse()[0].example(0), mb.sparse()[0].example(1));
        assert_eq!(shard.sparse()[0].example(1), mb.sparse()[0].example(2));
    }

    #[test]
    #[should_panic(expected = "slice bounds")]
    fn minibatch_slice_rejects_empty_range() {
        let mb = MiniBatch::new(1, 1, vec![0.0], vec![SparseBatch::empty(1)], vec![0.0]);
        mb.slice(1, 1);
    }
}
