//! Distributed CPU training pipeline: trainers + parameter servers +
//! readers (the paper's Figure 4).
//!
//! Each trainer holds a replica of the dense parameters, reads mini-batches
//! from reader servers, fetches pooled embeddings from *sparse* parameter
//! servers, runs Hogwild threads over the dense stack, pushes embedding
//! gradients back, and elastic-average-syncs (EASGD) its dense parameters
//! with the *dense* parameter servers every iteration.

use crate::cost::{CostKnobs, IterationCosts};
use crate::des::{ResourceId, Schedule, SimScratch, TaskGraph, TaskId};
use crate::report::SimReport;
use crate::SimError;
use recsim_data::schema::{ModelConfig, F32_BYTES};
use recsim_hw::units::Bytes;
use recsim_hw::PowerModel;
use recsim_trace::{CriticalPathReport, TaskCategory, Trace};
use recsim_verify::{Code, Diagnostic, Validate};
use serde::{Deserialize, Serialize};

/// The scale of a distributed CPU training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuClusterSetup {
    /// Data-parallel trainer servers.
    pub trainers: u32,
    /// Dense parameter servers (MLP parameters, sharded).
    pub dense_ps: u32,
    /// Sparse parameter servers (embedding tables, sharded).
    pub sparse_ps: u32,
    /// Hogwild threads per trainer.
    pub hogwild_threads: u32,
    /// Mini-batch per Hogwild thread per iteration.
    pub batch_per_thread: u64,
    /// EASGD communication period: dense parameters sync with the center
    /// every this many iterations (the elastic in elastic averaging), so the
    /// per-iteration sync volume is amortized by this factor.
    pub sync_period: u32,
}

impl CpuClusterSetup {
    /// A single-trainer setup with one dense and one sparse PS — the
    /// configuration of the paper's Section V test suite ("a single
    /// trainer, dense and sparse parameter server"), batch 200.
    pub fn single_trainer(batch: u64) -> Self {
        Self {
            trainers: 1,
            dense_ps: 1,
            sparse_ps: 1,
            hogwild_threads: 1,
            batch_per_thread: batch,
            sync_period: 16,
        }
    }

    /// Total servers drawing power (trainers + both PS pools; readers are
    /// shared infrastructure and excluded, which reproduces Table III's
    /// power arithmetic: M1's 6 trainers + 8 PS = 14 CPU-server units).
    pub fn total_servers(&self) -> u32 {
        self.trainers + self.dense_ps + self.sparse_ps
    }

    /// Examples consumed per fleet iteration.
    pub fn examples_per_iteration(&self) -> u64 {
        self.trainers as u64 * self.hogwild_threads as u64 * self.batch_per_thread
    }
}

impl Validate for CpuClusterSetup {
    /// Every count must be positive ([`Code::InvalidClusterConfig`],
    /// RV029): a fleet with no trainers, no parameter servers, no Hogwild
    /// threads, an empty batch, or a zero sync period cannot train.
    fn validate(&self) -> Vec<Diagnostic> {
        fn need(out: &mut Vec<Diagnostic>, field: &str, ok: bool, msg: &str) {
            if !ok {
                out.push(Diagnostic::error(
                    Code::InvalidClusterConfig,
                    format!("CpuClusterSetup.{field}"),
                    msg,
                ));
            }
        }
        let mut out = Vec::new();
        need(
            &mut out,
            "trainers",
            self.trainers > 0,
            "need at least one trainer",
        );
        need(
            &mut out,
            "dense_ps",
            self.dense_ps > 0,
            "need dense parameter servers",
        );
        need(
            &mut out,
            "sparse_ps",
            self.sparse_ps > 0,
            "need sparse parameter servers",
        );
        need(
            &mut out,
            "hogwild_threads",
            self.hogwild_threads > 0,
            "need at least one Hogwild thread",
        );
        need(
            &mut out,
            "batch_per_thread",
            self.batch_per_thread > 0,
            "batch must be positive",
        );
        need(
            &mut out,
            "sync_period",
            self.sync_period > 0,
            "EASGD sync period must be positive",
        );
        out
    }
}

/// Simulator for one distributed CPU training setup.
///
/// # Example
///
/// ```
/// use recsim_sim::{CpuClusterSetup, CpuTrainingSim};
/// use recsim_data::schema::ModelConfig;
///
/// let config = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
/// let sim = CpuTrainingSim::new(&config, CpuClusterSetup::single_trainer(200))?;
/// let report = sim.run();
/// assert!(report.throughput() > 0.0);
/// # Ok::<(), recsim_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CpuTrainingSim {
    config: ModelConfig,
    setup: CpuClusterSetup,
    knobs: CostKnobs,
}

impl CpuTrainingSim {
    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] with RV028/RV029 diagnostics when the model
    /// config or any count in `setup` fails [`Validate`].
    pub fn new(config: &ModelConfig, setup: CpuClusterSetup) -> Result<Self, SimError> {
        let mut diagnostics = config.validate();
        diagnostics.extend(setup.validate());
        let errors = crate::collect_errors(diagnostics);
        if !errors.diagnostics().is_empty() {
            return Err(SimError::Invalid(errors));
        }
        Ok(Self {
            config: config.clone(),
            setup,
            knobs: CostKnobs::default(),
        })
    }

    /// Overrides the cost-model knobs (for ablations).
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] (RV024) when a knob fails [`Validate`].
    pub fn with_knobs(mut self, knobs: CostKnobs) -> Result<Self, SimError> {
        knobs.check()?;
        self.knobs = knobs;
        Ok(self)
    }

    /// The cluster configuration.
    pub fn setup(&self) -> &CpuClusterSetup {
        &self.setup
    }

    /// Pipeline depth for steady-state measurement (see
    /// [`crate::gpu::GpuTrainingSim::PIPELINE_DEPTH`]); trainers prefetch
    /// batches and embedding responses for the next iteration while the
    /// current one computes.
    pub const PIPELINE_DEPTH: usize = 4;

    /// Simulates steady-state pipelined training and reports the marginal
    /// per-iteration time.
    pub fn run(&self) -> SimReport {
        self.run_in(&mut SimScratch::new())
    }

    /// [`CpuTrainingSim::run`] borrowing a caller-owned [`SimScratch`], so a
    /// sweep amortizes the engine's working buffers over its whole grid.
    pub fn run_in(&self, scratch: &mut SimScratch) -> SimReport {
        let single = self.schedule_of(1, scratch);
        let pipelined = self.schedule_of(Self::PIPELINE_DEPTH, scratch);
        let steady = pipelined.makespan().saturating_sub(single.makespan())
            / (Self::PIPELINE_DEPTH - 1) as f64;
        let steady = steady.max(single.makespan() / Self::PIPELINE_DEPTH as f64);
        self.report(steady, &pipelined)
    }

    /// Simulates exactly one un-pipelined fleet iteration (latency view).
    pub fn run_single_iteration(&self) -> SimReport {
        let schedule = self.schedule_of(1, &mut SimScratch::new());
        self.report(schedule.makespan(), &schedule)
    }

    /// Execution trace of one un-pipelined fleet iteration; export with
    /// [`recsim_trace::chrome_trace`] or the text/summary exporters.
    pub fn trace(&self) -> Trace {
        self.schedule_of(1, &mut SimScratch::new()).to_trace()
    }

    /// Critical-path attribution of one un-pipelined fleet iteration.
    pub fn critical_path(&self, top_k: usize) -> CriticalPathReport {
        self.schedule_of(1, &mut SimScratch::new())
            .critical_path(top_k)
    }

    /// Builds and simulates the fleet graph; see
    /// [`GpuTrainingSim::schedule_of`]'s invariant note — the validated
    /// constructor makes the fallback unreachable.
    ///
    /// [`GpuTrainingSim::schedule_of`]: crate::gpu::GpuTrainingSim
    fn schedule_of(&self, iterations: usize, scratch: &mut SimScratch) -> Schedule {
        match self.build_graph(iterations).simulate_in(scratch) {
            Ok(schedule) => schedule,
            Err(_) => TaskGraph::new().execute(),
        }
    }

    fn build_graph(&self, iterations: usize) -> TaskGraph {
        let costs = IterationCosts::new(&self.config, self.knobs);
        let t_count = self.setup.trainers as usize;
        let s_count = self.setup.sparse_ps as usize;
        let d_count = self.setup.dense_ps as usize;
        let h = self.setup.hogwild_threads;
        // Examples a trainer pushes through per iteration.
        let b_iter = self.setup.batch_per_thread * h as u64;

        let trainer_dev = recsim_hw::device::skylake_dual_socket();
        let ps_dev = recsim_hw::device::skylake_dual_socket();
        let net = recsim_hw::Link::ethernet_25g();

        let mut graph = TaskGraph::new();
        let trainer_cpu: Vec<ResourceId> = (0..t_count)
            .map(|i| graph.add_resource(format!("trainer{i}_cpu"), 1))
            .collect();
        let trainer_nic: Vec<ResourceId> = (0..t_count)
            .map(|i| graph.add_resource(format!("trainer{i}_nic"), 1))
            .collect();
        let sparse_cpu: Vec<ResourceId> = (0..s_count)
            .map(|s| graph.add_resource(format!("sparse_ps{s}_cpu"), 1))
            .collect();
        let sparse_nic: Vec<ResourceId> = (0..s_count)
            .map(|s| graph.add_resource(format!("sparse_ps{s}_nic"), 1))
            .collect();
        let dense_cpu: Vec<ResourceId> = (0..d_count)
            .map(|d| graph.add_resource(format!("dense_ps{d}_cpu"), 1))
            .collect();
        let dense_nic: Vec<ResourceId> = (0..d_count)
            .map(|d| graph.add_resource(format!("dense_ps{d}_nic"), 1))
            .collect();

        // Traffic volumes.
        let gather_pe = self.config.embedding_read_bytes_per_example();
        let pooled_pe = self.config.pooled_bytes_per_example();
        let avg_table =
            self.config.total_embedding_bytes() / self.config.num_sparse().max(1) as u64;
        let mlp_bytes = self.config.mlp_parameter_bytes();

        // Dense compute per trainer iteration: fwd + bwd for b_iter examples,
        // with Hogwild parallel efficiency and LLC pressure at large batch.
        let fwd = costs
            .bottom_forward(b_iter)
            .merge(&costs.interaction_forward(b_iter))
            .merge(&costs.top_forward(b_iter));
        let bwd = costs.dense_backward(b_iter);
        let working_set = self.setup.batch_per_thread
            * (self.config.num_dense() as u64
                + self.config.top_input_dim() as u64
                + self
                    .config
                    .bottom_mlp()
                    .iter()
                    .chain(self.config.top_mlp())
                    .map(|&w| w as u64)
                    .sum::<u64>())
            * F32_BYTES;
        let machine_util = self.knobs.hogwild_machine_utilization(h);
        let derate = self.knobs.cpu_batch_derate(working_set);
        let compute_time = (fwd.time_on(&trainer_dev) + bwd.time_on(&trainer_dev))
            * (1.0 / (machine_util * derate));

        for _iteration in 0..iterations {
            let mut tail: Vec<TaskId> = Vec::new();
            for i in 0..t_count {
                // Read mini-batches from the reader tier.
                let t_read = graph.add_task_in(
                    TaskCategory::ReaderStall,
                    format!("read{i}"),
                    net.transfer_time(Bytes::new(b_iter * self.config.example_bytes()), 1),
                    Some(trainer_nic[i]),
                    &[],
                );
                // Sparse lookups: PS-side gather + response over the PS NIC.
                let mut lookup_done = Vec::with_capacity(s_count);
                for s in 0..s_count {
                    let t_gather = graph.add_task_in(
                        TaskCategory::EmbeddingLookup,
                        format!("lookup_t{i}_ps{s}"),
                        costs
                            .embedding_gather(
                                b_iter * gather_pe / s_count as u64,
                                avg_table,
                                (self.config.num_sparse() as u64).div_ceil(s_count as u64),
                            )
                            .time_on(&ps_dev)
                            + self.knobs.rpc_overhead,
                        Some(sparse_cpu[s]),
                        &[t_read],
                    );
                    let t_resp = graph.add_task_in(
                        TaskCategory::NicTransfer,
                        format!("lookup_resp_t{i}_ps{s}"),
                        net.transfer_time(Bytes::new(b_iter * pooled_pe / s_count as u64), 1),
                        Some(sparse_nic[s]),
                        &[t_gather],
                    );
                    lookup_done.push(t_resp);
                }
                // Hogwild forward+backward over the dense stack.
                let mut compute_deps = lookup_done.clone();
                compute_deps.push(t_read);
                let t_compute = graph.add_task_in(
                    TaskCategory::MlpCompute,
                    format!("hogwild_fwd_bwd{i}"),
                    compute_time,
                    Some(trainer_cpu[i]),
                    &compute_deps,
                );
                // Push embedding gradients back to the sparse PS.
                for s in 0..s_count {
                    let t_push = graph.add_task_in(
                        TaskCategory::NicTransfer,
                        format!("grad_push_t{i}_ps{s}"),
                        net.transfer_time(Bytes::new(b_iter * pooled_pe / s_count as u64), 1),
                        Some(sparse_nic[s]),
                        &[t_compute],
                    );
                    tail.push(
                        graph.add_task_in(
                            TaskCategory::PsUpdate,
                            format!("ps_scatter_t{i}_ps{s}"),
                            costs
                                .embedding_scatter(
                                    b_iter * gather_pe / s_count as u64,
                                    avg_table,
                                    (self.config.num_sparse() as u64).div_ceil(s_count as u64),
                                    recsim_hw::DeviceKind::Cpu,
                                )
                                .time_on(&ps_dev)
                                + self.knobs.rpc_overhead,
                            Some(sparse_cpu[s]),
                            &[t_push],
                        ),
                    );
                }
                // EASGD sync of dense parameters with the dense PS shards.
                for d in 0..d_count {
                    // Amortized by the EASGD communication period.
                    let shard = mlp_bytes / d_count as u64 / self.setup.sync_period as u64;
                    let t_xfer = graph.add_task_in(
                        TaskCategory::NicTransfer,
                        format!("easgd_xfer_t{i}_ps{d}"),
                        net.transfer_time(Bytes::new(2 * shard), 2),
                        Some(dense_nic[d]),
                        &[t_compute],
                    );
                    tail.push(
                        graph.add_task_in(
                            TaskCategory::PsUpdate,
                            format!("easgd_update_t{i}_ps{d}"),
                            recsim_hw::Work::compute(
                                recsim_hw::units::Flops::new(shard / F32_BYTES * 2),
                                Bytes::new(3 * shard),
                                1,
                            )
                            .time_on(&ps_dev),
                            Some(dense_cpu[d]),
                            &[t_xfer],
                        ),
                    );
                }
            }
            graph.add_barrier("fleet_iteration_done", &tail);
        }
        graph
    }

    fn report(&self, iteration_time: recsim_hw::units::Duration, schedule: &Schedule) -> SimReport {
        let t_count = self.setup.trainers as usize;
        let s_count = self.setup.sparse_ps as usize;
        let d_count = self.setup.dense_ps as usize;
        let h = self.setup.hogwild_threads;
        let utilizations = schedule.utilizations();
        let class_util = |prefix: &str| -> f64 {
            let sel: Vec<f64> = utilizations
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .map(|(_, u)| *u)
                .collect();
            if sel.is_empty() {
                0.0
            } else {
                sel.iter().sum::<f64>() / sel.len() as f64
            }
        };
        let power = PowerModel::cpu_server().draw(class_util("trainer")) * t_count as f64
            + PowerModel::cpu_server().draw(class_util("sparse_ps")) * s_count as f64
            + PowerModel::cpu_server().draw(class_util("dense_ps")) * d_count as f64;

        // Scale the schedule's critical-path breakdown to the reported
        // steady-state iteration time (see GpuTrainingSim::report).
        let makespan = schedule.makespan().as_secs();
        let scale = if makespan > 0.0 {
            iteration_time.as_secs() / makespan
        } else {
            0.0
        };
        let attribution: Vec<(String, recsim_hw::units::Duration)> = schedule
            .attribution()
            .into_iter()
            .map(|(label, d)| {
                (
                    label,
                    recsim_hw::units::Duration::from_secs(d.as_secs() * scale),
                )
            })
            .collect();
        let setup = format!(
            "CPU cluster {}T/{}sPS/{}dPS x{}hw / batch {}",
            t_count, s_count, d_count, h, self.setup.batch_per_thread
        );
        // The validated constructor makes the Err arm unreachable; keep
        // run() total.
        match SimReport::new(
            setup.clone(),
            iteration_time,
            self.setup.examples_per_iteration() as f64,
            utilizations,
            schedule.bottleneck(),
            power,
        ) {
            Ok(report) => report.with_attribution(attribution),
            Err(_) => SimReport::degenerate(setup),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> ModelConfig {
        ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512])
    }

    #[test]
    fn single_trainer_runs() {
        let r = CpuTrainingSim::new(&test_config(), CpuClusterSetup::single_trainer(200))
            .expect("valid setup")
            .run();
        assert!(r.throughput() > 0.0);
        assert!(r.power().as_watts() > 0.0);
    }

    #[test]
    fn more_trainers_scale_throughput_sublinearly() {
        // Paper: "approximately linear increase in training speedup when we
        // increase the number of trainer servers, up to a certain degree".
        let cfg = test_config();
        let one = CpuTrainingSim::new(
            &cfg,
            CpuClusterSetup {
                trainers: 1,
                dense_ps: 4,
                sparse_ps: 4,
                hogwild_threads: 1,
                batch_per_thread: 200,
                sync_period: 16,
            },
        )
        .expect("valid setup")
        .run();
        let eight = CpuTrainingSim::new(
            &cfg,
            CpuClusterSetup {
                trainers: 8,
                dense_ps: 4,
                sparse_ps: 4,
                hogwild_threads: 1,
                batch_per_thread: 200,
                sync_period: 16,
            },
        )
        .expect("valid setup")
        .run();
        let speedup = eight.throughput() / one.throughput();
        assert!(
            speedup > 3.0 && speedup <= 8.0,
            "8 trainers give {speedup:.1}x"
        );
    }

    #[test]
    fn hogwild_threads_increase_throughput() {
        let cfg = test_config();
        let mk = |h: u32| {
            CpuTrainingSim::new(
                &cfg,
                CpuClusterSetup {
                    trainers: 1,
                    dense_ps: 1,
                    sparse_ps: 1,
                    hogwild_threads: h,
                    batch_per_thread: 200,
                    sync_period: 16,
                },
            )
            .expect("valid setup")
            .run()
            .throughput()
        };
        let t1 = mk(1);
        let t4 = mk(4);
        assert!(t4 > t1, "hogwild helps: {t1} vs {t4}");
        assert!(t4 < t1 * 4.0, "but not perfectly: {t1} vs {t4}");
    }

    #[test]
    fn cpu_batch_scaling_is_flat_or_declining_at_large_batch() {
        // Figure 11's CPU panel.
        let cfg = test_config();
        let mk = |b: u64| {
            CpuTrainingSim::new(&cfg, CpuClusterSetup::single_trainer(b))
                .expect("valid setup")
                .run()
                .throughput()
        };
        let t200 = mk(200);
        let t6400 = mk(6400);
        assert!(
            t6400 < t200 * 1.5,
            "CPU does not benefit much from big batches: {t200} vs {t6400}"
        );
    }

    #[test]
    fn power_counts_every_server() {
        let cfg = test_config();
        let r = CpuTrainingSim::new(
            &cfg,
            CpuClusterSetup {
                trainers: 6,
                dense_ps: 4,
                sparse_ps: 4,
                hogwild_threads: 1,
                batch_per_thread: 200,
                sync_period: 16,
            },
        )
        .expect("valid setup")
        .run();
        // 14 servers at >= idle 45% of 600 W each.
        assert!(r.power().as_watts() >= 14.0 * 600.0 * 0.45);
    }

    #[test]
    fn zero_counts_are_rejected_with_rv029() {
        let mut setup = CpuClusterSetup::single_trainer(200);
        setup.trainers = 0;
        setup.sync_period = 0;
        let err = CpuTrainingSim::new(&test_config(), setup).expect_err("zero trainers rejected");
        match err {
            SimError::Invalid(v) => {
                assert!(v.has_code(Code::InvalidClusterConfig));
                assert_eq!(v.diagnostics().len(), 2);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn deterministic() {
        let cfg = test_config();
        let a = CpuTrainingSim::new(&cfg, CpuClusterSetup::single_trainer(200))
            .expect("valid setup")
            .run();
        let b = CpuTrainingSim::new(&cfg, CpuClusterSetup::single_trainer(200))
            .expect("valid setup")
            .run();
        assert_eq!(a, b);
    }
}
