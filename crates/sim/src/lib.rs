//! Distributed-training simulation for `recsim`.
//!
//! This crate answers the paper's central question — *how fast does a given
//! recommendation model train on a given platform with a given embedding
//! placement?* — without the production fleet. A training iteration is
//! compiled into a resource-constrained task DAG (kernels, gathers, link
//! transfers, parameter-server work) and executed by a deterministic
//! discrete-event engine:
//!
//! * [`des`] — the task-graph executor (resources, FIFO queues, makespan,
//!   per-resource busy time),
//! * [`cost`] — the operation-level cost model: MLP rooflines, embedding
//!   gather/scatter traffic with cache-ability, kernel-launch overheads,
//!   collective volumes ([`cost::CostKnobs`] documents every constant),
//! * [`gpu`] — the single-server GPU training pipeline (Big Basin / Zion)
//!   under any [`recsim_placement::PlacementStrategy`],
//! * [`cpu`] — the distributed CPU pipeline (trainers + dense/sparse
//!   parameter servers + readers, EASGD + Hogwild),
//! * [`scaleout`] — multi-node Big Basin training with sharded GPU-memory
//!   tables (the Section VI.B analytical comparison against Zion),
//! * [`readers`] — sizing the reader tier so "data reading is not a
//!   bottleneck" (Section IV.B.2),
//! * [`variability`] — Monte-Carlo throughput distributions under per-GPU
//!   hardware noise (the "hardware level variability" of Figure 5),
//! * [`report`] — [`SimReport`]: iteration time, throughput, utilization,
//!   bottleneck, power, perf-per-watt and critical-path attribution.
//!
//! Every simulator builds its task graph through the category-carrying
//! constructors ([`des::TaskGraph::add_task_in`]), so schedules export to
//! `recsim-trace` (Chrome/Perfetto traces, text timelines) and support
//! critical-path attribution: each nanosecond of the makespan charged to a
//! [`TaskCategory`] (embedding lookup, MLP compute, all-to-all, …).
//!
//! # Example
//!
//! ```
//! use recsim_sim::gpu::GpuTrainingSim;
//! use recsim_data::schema::ModelConfig;
//! use recsim_hw::{Platform, units::Bytes};
//! use recsim_placement::{PlacementStrategy, PartitionScheme};
//!
//! let config = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
//! let platform = Platform::big_basin(Bytes::from_gib(32));
//! let sim = GpuTrainingSim::new(&config, &platform,
//!     PlacementStrategy::GpuMemory(PartitionScheme::TableWise), 1600)?;
//! let report = sim.run();
//! assert!(report.throughput() > 0.0);
//! # Ok::<(), recsim_sim::SimError>(())
//! ```
//!
//! Every simulation entry point validates its inputs up front
//! ([`recsim_verify::Validate`]) and reports structured RV0xx diagnostics
//! through [`SimError`] instead of panicking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod des;
pub mod gpu;
pub mod readers;
pub mod report;
pub mod scaleout;
pub mod variability;

pub use cost::CostKnobs;
pub use cpu::{CpuClusterSetup, CpuTrainingSim};
pub use des::{NoPerturbation, Perturbation, SimScratch};
pub use gpu::GpuTrainingSim;
pub use recsim_trace::TaskCategory;
pub use report::SimReport;

use recsim_placement::PlacementError;
use recsim_verify::{Diagnostic, Severity, ValidationError};

/// Keeps only error-severity findings, the ones that abort a simulation.
pub(crate) fn collect_errors(diagnostics: Vec<Diagnostic>) -> ValidationError {
    ValidationError::new(
        diagnostics
            .into_iter()
            .filter(|d| d.severity() == Severity::Error)
            .collect(),
    )
}

/// Why a simulation could not be built or run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The placement planner could not host the model's tables.
    Placement(PlacementError),
    /// A configuration failed pre-simulation validation; the payload
    /// carries the structured RV0xx diagnostics.
    Invalid(ValidationError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Placement(e) => write!(f, "placement failed: {e}"),
            Self::Invalid(e) => write!(f, "invalid simulation input: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Placement(e) => Some(e),
            Self::Invalid(e) => Some(e),
        }
    }
}

impl From<PlacementError> for SimError {
    fn from(e: PlacementError) -> Self {
        Self::Placement(e)
    }
}

impl From<ValidationError> for SimError {
    fn from(e: ValidationError) -> Self {
        Self::Invalid(e)
    }
}
