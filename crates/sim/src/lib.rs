//! Distributed-training simulation for `recsim`.
//!
//! This crate answers the paper's central question — *how fast does a given
//! recommendation model train on a given platform with a given embedding
//! placement?* — without the production fleet. A training iteration is
//! compiled into a resource-constrained task DAG (kernels, gathers, link
//! transfers, parameter-server work) and executed by a deterministic
//! discrete-event engine:
//!
//! * [`des`] — the task-graph executor (resources, FIFO queues, makespan,
//!   per-resource busy time),
//! * [`cost`] — the operation-level cost model: MLP rooflines, embedding
//!   gather/scatter traffic with cache-ability, kernel-launch overheads,
//!   collective volumes ([`cost::CostKnobs`] documents every constant),
//! * [`gpu`] — the single-server GPU training pipeline (Big Basin / Zion)
//!   under any [`recsim_placement::PlacementStrategy`],
//! * [`cpu`] — the distributed CPU pipeline (trainers + dense/sparse
//!   parameter servers + readers, EASGD + Hogwild),
//! * [`scaleout`] — multi-node Big Basin training with sharded GPU-memory
//!   tables (the Section VI.B analytical comparison against Zion),
//! * [`readers`] — sizing the reader tier so "data reading is not a
//!   bottleneck" (Section IV.B.2),
//! * [`variability`] — Monte-Carlo throughput distributions under per-GPU
//!   hardware noise (the "hardware level variability" of Figure 5),
//! * [`report`] — [`SimReport`]: iteration time, throughput, utilization,
//!   bottleneck, power and perf-per-watt.
//!
//! # Example
//!
//! ```
//! use recsim_sim::gpu::GpuTrainingSim;
//! use recsim_data::schema::ModelConfig;
//! use recsim_hw::{Platform, units::Bytes};
//! use recsim_placement::{PlacementStrategy, PartitionScheme};
//!
//! let config = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
//! let platform = Platform::big_basin(Bytes::from_gib(32));
//! let sim = GpuTrainingSim::new(&config, &platform,
//!     PlacementStrategy::GpuMemory(PartitionScheme::TableWise), 1600)?;
//! let report = sim.run();
//! assert!(report.throughput() > 0.0);
//! # Ok::<(), recsim_placement::PlacementError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod des;
pub mod gpu;
pub mod readers;
pub mod report;
pub mod scaleout;
pub mod variability;

pub use cost::CostKnobs;
pub use cpu::{CpuClusterSetup, CpuTrainingSim};
pub use gpu::GpuTrainingSim;
pub use report::SimReport;
