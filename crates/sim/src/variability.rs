//! Monte-Carlo throughput variability under hardware noise.
//!
//! The paper attributes part of Figure 5's run-to-run spread to "system or
//! hardware level variability" and cites the tail-at-scale literature. This
//! module quantifies that component for GPU training: it samples fleets
//! whose GPUs are independently derated (thermal throttling, faulty DIMMs,
//! noisy neighbours), simulates each fleet, and reports the throughput
//! distribution — showing how the *slowest* worker, not the average one,
//! sets data-parallel performance.

use crate::gpu::GpuTrainingSim;
use crate::report::SimReport;
use crate::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recsim_data::schema::ModelConfig;
use recsim_hw::Platform;
use recsim_metrics::Summary;
use recsim_placement::PlacementStrategy;
use recsim_verify::{Code, Diagnostic};
use serde::{Deserialize, Serialize};

/// The hardware-noise model: each GPU independently runs at a derate factor
/// drawn from `1 - |N(0, sigma)|`, floored at `min_factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareNoise {
    /// Standard deviation of per-GPU slowdown (0.05 = typically a few
    /// percent, occasionally worse).
    pub sigma: f64,
    /// Worst-case derate floor.
    pub min_factor: f64,
}

impl Default for HardwareNoise {
    fn default() -> Self {
        Self {
            sigma: 0.05,
            min_factor: 0.5,
        }
    }
}

impl HardwareNoise {
    /// Samples a noisy copy of `platform` (each GPU independently derated).
    pub fn sample_platform<R: Rng + ?Sized>(&self, platform: &Platform, rng: &mut R) -> Platform {
        let mut noisy = platform.clone();
        for g in 0..platform.gpus().len() {
            // |N(0, sigma)| slowdown.
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
            let gauss =
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * self.sigma;
            let factor = (1.0 - gauss.abs()).clamp(self.min_factor, 1.0);
            if factor < 1.0 {
                noisy = noisy.with_straggler_gpu(g, factor);
            }
        }
        noisy
    }
}

/// The result of a variability study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityStudy {
    throughputs: Vec<f64>,
    nominal: f64,
}

impl VariabilityStudy {
    /// Runs `runs` noisy-fleet simulations of the given setup.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] (RV029) when `runs == 0` or the model/platform
    /// fails validation; [`SimError::Placement`] when the placement does
    /// not fit the platform (noise never changes capacity, so every noisy
    /// fleet fits whenever the nominal one does).
    pub fn run(
        config: &ModelConfig,
        platform: &Platform,
        strategy: PlacementStrategy,
        batch: u64,
        noise: HardwareNoise,
        runs: usize,
        seed: u64,
    ) -> Result<Self, SimError> {
        if runs == 0 {
            return Err(SimError::Invalid(
                Diagnostic::error(
                    Code::InvalidClusterConfig,
                    "VariabilityStudy.runs",
                    "need at least one run",
                )
                .into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // One scratch for the whole Monte-Carlo loop: every noisy fleet
        // reuses the engine buffers sized by the first simulation.
        let mut scratch = crate::des::SimScratch::new();
        let nominal = GpuTrainingSim::new(config, platform, strategy, batch)?
            .run_in(&mut scratch)
            .throughput();
        let mut throughputs = Vec::with_capacity(runs);
        for _ in 0..runs {
            let noisy = noise.sample_platform(platform, &mut rng);
            throughputs.push(
                GpuTrainingSim::new(config, &noisy, strategy, batch)?
                    .run_in(&mut scratch)
                    .throughput(),
            );
        }
        Ok(Self {
            throughputs,
            nominal,
        })
    }

    /// Throughput of the noise-free fleet.
    pub fn nominal_throughput(&self) -> f64 {
        self.nominal
    }

    /// The sampled throughputs.
    pub fn samples(&self) -> &[f64] {
        &self.throughputs
    }

    /// Distribution summary of the sampled throughputs.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(self.throughputs.clone())
    }

    /// Mean fraction of nominal throughput lost to hardware noise.
    pub fn mean_loss(&self) -> f64 {
        let mean = self.throughputs.iter().sum::<f64>() / self.throughputs.len() as f64;
        1.0 - mean / self.nominal
    }
}

/// Reports percentile statistics for a collection of [`SimReport`]s — a
/// convenience for callers that sample their own configurations.
pub fn throughput_summary(reports: &[SimReport]) -> Summary {
    Summary::from_samples(reports.iter().map(SimReport::throughput).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_hw::units::Bytes;
    use recsim_placement::PartitionScheme;

    fn setup() -> (ModelConfig, Platform, PlacementStrategy) {
        (
            ModelConfig::test_suite(64, 8, 100_000, &[256, 256]),
            Platform::big_basin(Bytes::from_gib(32)),
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
        )
    }

    #[test]
    fn noise_only_slows_fleets() {
        let (cfg, platform, strategy) = setup();
        let study = VariabilityStudy::run(
            &cfg,
            &platform,
            strategy,
            800,
            HardwareNoise::default(),
            12,
            7,
        )
        .expect("valid study");
        for &t in study.samples() {
            assert!(
                t <= study.nominal_throughput() + 1e-6,
                "noise cannot speed a fleet up"
            );
            assert!(t > 0.0);
        }
        assert!(study.mean_loss() >= 0.0);
    }

    #[test]
    fn stronger_noise_loses_more_throughput() {
        let (cfg, platform, strategy) = setup();
        let mild = VariabilityStudy::run(
            &cfg,
            &platform,
            strategy,
            800,
            HardwareNoise {
                sigma: 0.02,
                min_factor: 0.5,
            },
            16,
            11,
        )
        .expect("valid study");
        let harsh = VariabilityStudy::run(
            &cfg,
            &platform,
            strategy,
            800,
            HardwareNoise {
                sigma: 0.20,
                min_factor: 0.5,
            },
            16,
            11,
        )
        .expect("valid study");
        assert!(
            harsh.mean_loss() > mild.mean_loss(),
            "sigma 0.20 loses {:.3} vs sigma 0.02 {:.3}",
            harsh.mean_loss(),
            mild.mean_loss()
        );
    }

    #[test]
    fn studies_are_reproducible() {
        let (cfg, platform, strategy) = setup();
        let a = VariabilityStudy::run(
            &cfg,
            &platform,
            strategy,
            512,
            HardwareNoise::default(),
            6,
            3,
        )
        .expect("valid study");
        let b = VariabilityStudy::run(
            &cfg,
            &platform,
            strategy,
            512,
            HardwareNoise::default(),
            6,
            3,
        )
        .expect("valid study");
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_platforms_never_exceed_nominal_rate() {
        let (_, platform, _) = setup();
        let noise = HardwareNoise::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let noisy = noise.sample_platform(&platform, &mut rng);
            for (a, b) in noisy.gpus().iter().zip(platform.gpus()) {
                assert!(
                    a.sustained_flop_rate().as_tflops()
                        <= b.sustained_flop_rate().as_tflops() + 1e-9
                );
                assert!(
                    a.sustained_flop_rate().as_tflops()
                        >= b.sustained_flop_rate().as_tflops() * noise.min_factor - 1e-9
                );
            }
        }
    }
}
