//! The operation-level cost model.
//!
//! Everything the simulator charges time for is produced here, from the
//! model geometry in [`ModelConfig`] and the device models in `recsim-hw`.
//! Each constant is a documented, ablatable knob ([`CostKnobs`]).

use recsim_data::schema::{ModelConfig, F32_BYTES};
use recsim_hw::units::{Bytes, Duration, Flops};
use recsim_hw::{AccessPattern, ComputeDevice, Work};
use recsim_verify::{Code, Diagnostic, Validate};
use serde::{Deserialize, Serialize};

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostKnobs {
    /// Backward FLOPs as a multiple of forward FLOPs (dL/dW and dL/dx GEMMs).
    pub backward_flops_multiplier: f64,
    /// Embedding-update traffic per forward gather byte: gradient-row write
    /// plus read-modify-write of weights and Adagrad state.
    pub scatter_multiplier: f64,
    /// Random-gather speedup when a table's working set fits in cache.
    pub cache_boost: f64,
    /// Table size (bytes) at or below which the full cache boost applies.
    pub cache_resident_bytes: u64,
    /// Table size (bytes) at or above which no boost applies.
    pub dram_resident_bytes: u64,
    /// Kernels launched per MLP layer per pass (GEMM + bias/activation).
    pub kernels_per_layer: u64,
    /// GEMM kernel size (FLOPs) at which a GPU reaches half of its
    /// sustained rate. Recommendation MLPs are small; a 200×512×512 GEMM
    /// runs far below peak on a V100, which is why the paper's production
    /// models see only ~2× GPU speedups despite a ~40× FLOP/s advantage.
    pub gemm_half_efficiency_flops: f64,
    /// Extra bandwidth derate for scatter/update traffic on GPUs: atomic
    /// read-modify-write of rows contends in ways plain gathers do not.
    pub gpu_scatter_efficiency: f64,
    /// Fixed synchronization cost per collective operation (NCCL barrier /
    /// rendezvous).
    pub collective_barrier: Duration,
    /// Fraction of the host's streaming memory bandwidth usable for staging
    /// relayed copies (read + write + packet processing — the "additional
    /// work for the CPUs on the GPU server" of the paper). Scales with the
    /// platform: Zion's 8-socket, 1 TB/s complex stages far faster than Big
    /// Basin's 2-socket host.
    pub staging_fraction: f64,
    /// Per-request software overhead of a parameter-server RPC.
    pub rpc_overhead: Duration,
    /// Per-collective-round synchronization cost of each PCIe hop when GPU
    /// traffic is relayed through host memory (no GPUDirect peer access):
    /// the host must observe the D2H completion before issuing the H2D.
    pub staged_hop_latency: Duration,
    /// Trainer-side working-set size (bytes) beyond which CPU compute
    /// efficiency starts degrading (LLC pressure at large batch sizes).
    pub cpu_cache_bytes: u64,
    /// Fraction of the trainer machine a single Hogwild thread can keep
    /// busy (framework serial sections, poor intra-op scaling).
    pub hogwild_base_utilization: f64,
    /// Incremental machine utilization contributed by each additional
    /// Hogwild thread (lock/update contention keeps it below the ideal).
    pub hogwild_efficiency: f64,
}

impl Default for CostKnobs {
    fn default() -> Self {
        Self {
            backward_flops_multiplier: 2.0,
            scatter_multiplier: 4.0,
            cache_boost: 3.0,
            cache_resident_bytes: 32 << 20, // 32 MiB: L2/LLC resident
            dram_resident_bytes: 4 << 30,   // 4 GiB: fully DRAM-bound
            kernels_per_layer: 2,
            gemm_half_efficiency_flops: 5e8,
            gpu_scatter_efficiency: 0.4,
            collective_barrier: Duration::from_micros(20.0),
            staging_fraction: 0.2,
            rpc_overhead: Duration::from_micros(40.0),
            staged_hop_latency: Duration::from_micros(50.0),
            cpu_cache_bytes: 40 << 20, // ~40 MiB LLC per socket pair
            hogwild_base_utilization: 0.55,
            hogwild_efficiency: 0.6,
        }
    }
}

impl CostKnobs {
    /// Cache-ability boost for a random gather over a table of `table_bytes`:
    /// log-interpolates from [`CostKnobs::cache_boost`] (fully resident) to
    /// `1.0` (DRAM resident).
    pub fn gather_boost(&self, table_bytes: u64) -> f64 {
        if table_bytes <= self.cache_resident_bytes {
            return self.cache_boost;
        }
        if table_bytes >= self.dram_resident_bytes {
            return 1.0;
        }
        let span = (self.dram_resident_bytes as f64 / self.cache_resident_bytes as f64).ln();
        let pos = (table_bytes as f64 / self.cache_resident_bytes as f64).ln() / span;
        self.cache_boost + (1.0 - self.cache_boost) * pos
    }

    /// Fraction of the trainer machine `threads` Hogwild workers keep busy:
    /// `min(1, base + (1 − base) · efficiency · (threads − 1))`. One thread
    /// leaves much of the machine idle ("a large degree of parallelism …
    /// is left unexploited", Section II.B); additional asynchronous threads
    /// fill it in with diminishing returns.
    ///
    /// `threads == 0` is treated as one thread: cluster shapes are rejected
    /// by validation before they reach the cost model, so the clamp only
    /// guards direct callers.
    pub fn hogwild_machine_utilization(&self, threads: u32) -> f64 {
        let threads = threads.max(1);
        let base = self.hogwild_base_utilization;
        (base + (1.0 - base) * self.hogwild_efficiency * (threads - 1) as f64).min(1.0)
    }

    /// Fraction of a GPU's sustained GEMM rate achieved by a kernel of
    /// `kernel_flops`: `f / (f + half_size)`. CPUs are unaffected (their
    /// kernels hit peak at much smaller sizes).
    pub fn gemm_efficiency(&self, kernel_flops: f64) -> f64 {
        kernel_flops / (kernel_flops + self.gemm_half_efficiency_flops)
    }

    /// CPU compute derate for a trainer whose per-iteration working set is
    /// `working_set` bytes: `1 / (1 + ln(1 + ws/cache))`. Large batches
    /// blow the LLC, which is why "higher batch sizes can be detrimental to
    /// the training speed over CPU hardware".
    pub fn cpu_batch_derate(&self, working_set: u64) -> f64 {
        1.0 / (1.0 + (1.0 + working_set as f64 / self.cpu_cache_bytes as f64).ln())
    }
}

/// RV024: every knob must be in its meaningful range — multipliers and
/// sizes positive and finite, fractions in `[0, 1]`, the cache-boost span
/// ordered (`cache_resident_bytes < dram_resident_bytes`). A knob outside
/// these ranges silently warps every cost the simulator charges, so the
/// check runs before any simulation that overrides knobs.
impl Validate for CostKnobs {
    fn validate(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut knob = |name: &str, ok: bool, got: f64, want: &str| {
            if !ok {
                out.push(Diagnostic::error(
                    Code::InvalidCostKnob,
                    format!("CostKnobs.{name}"),
                    format!("{got} is out of range: want {want}"),
                ));
            }
        };
        let positive = |v: f64| v.is_finite() && v > 0.0;
        let fraction = |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);
        let non_negative = |v: f64| v.is_finite() && v >= 0.0;

        knob(
            "backward_flops_multiplier",
            positive(self.backward_flops_multiplier),
            self.backward_flops_multiplier,
            "> 0, finite",
        );
        knob(
            "scatter_multiplier",
            positive(self.scatter_multiplier),
            self.scatter_multiplier,
            "> 0, finite",
        );
        knob(
            "cache_boost",
            self.cache_boost.is_finite() && self.cache_boost >= 1.0,
            self.cache_boost,
            ">= 1 (a boost, not a penalty)",
        );
        knob(
            "cache_resident_bytes",
            self.cache_resident_bytes > 0,
            self.cache_resident_bytes as f64,
            "> 0",
        );
        knob(
            "dram_resident_bytes",
            self.dram_resident_bytes > self.cache_resident_bytes,
            self.dram_resident_bytes as f64,
            "> cache_resident_bytes (the boost must have a span to decay over)",
        );
        knob(
            "kernels_per_layer",
            self.kernels_per_layer > 0,
            self.kernels_per_layer as f64,
            "> 0",
        );
        knob(
            "gemm_half_efficiency_flops",
            positive(self.gemm_half_efficiency_flops),
            self.gemm_half_efficiency_flops,
            "> 0, finite",
        );
        knob(
            "gpu_scatter_efficiency",
            self.gpu_scatter_efficiency.is_finite()
                && self.gpu_scatter_efficiency > 0.0
                && self.gpu_scatter_efficiency <= 1.0,
            self.gpu_scatter_efficiency,
            "in (0, 1]",
        );
        knob(
            "collective_barrier",
            non_negative(self.collective_barrier.as_secs()),
            self.collective_barrier.as_secs(),
            ">= 0 seconds",
        );
        knob(
            "staging_fraction",
            self.staging_fraction.is_finite()
                && self.staging_fraction > 0.0
                && self.staging_fraction <= 1.0,
            self.staging_fraction,
            "in (0, 1]",
        );
        knob(
            "rpc_overhead",
            non_negative(self.rpc_overhead.as_secs()),
            self.rpc_overhead.as_secs(),
            ">= 0 seconds",
        );
        knob(
            "staged_hop_latency",
            non_negative(self.staged_hop_latency.as_secs()),
            self.staged_hop_latency.as_secs(),
            ">= 0 seconds",
        );
        knob(
            "cpu_cache_bytes",
            self.cpu_cache_bytes > 0,
            self.cpu_cache_bytes as f64,
            "> 0",
        );
        knob(
            "hogwild_base_utilization",
            fraction(self.hogwild_base_utilization),
            self.hogwild_base_utilization,
            "in [0, 1]",
        );
        knob(
            "hogwild_efficiency",
            fraction(self.hogwild_efficiency),
            self.hogwild_efficiency,
            "in [0, 1]",
        );
        out
    }
}

/// Per-model cost builder binding a [`ModelConfig`] to [`CostKnobs`].
#[derive(Debug, Clone)]
pub struct IterationCosts<'a> {
    config: &'a ModelConfig,
    knobs: CostKnobs,
}

impl<'a> IterationCosts<'a> {
    /// Creates a cost builder.
    pub fn new(config: &'a ModelConfig, knobs: CostKnobs) -> Self {
        Self { config, knobs }
    }

    /// The knobs in use.
    pub fn knobs(&self) -> &CostKnobs {
        &self.knobs
    }

    /// The model.
    pub fn config(&self) -> &ModelConfig {
        self.config
    }

    // ------------------------------------------------------------------
    // Dense compute
    // ------------------------------------------------------------------

    /// Forward work of the bottom MLP for `batch` examples: GEMM FLOPs plus
    /// weight/activation streaming.
    pub fn bottom_forward(&self, batch: u64) -> Work {
        let flops = self.config.bottom_mlp_flops_per_example() * batch;
        let bytes =
            self.dense_stream_bytes(batch, self.config.bottom_mlp(), self.config.num_dense());
        Work::compute(
            Flops::new(flops),
            Bytes::new(bytes),
            self.config.bottom_mlp().len() as u64 * self.knobs.kernels_per_layer,
        )
    }

    /// Forward work of the feature interaction for `batch` examples.
    pub fn interaction_forward(&self, batch: u64) -> Work {
        let flops = self.config.interaction_flops_per_example() * batch;
        let bytes = (self.config.num_sparse() + 1) as u64 * self.config.row_bytes() * batch;
        Work::compute(Flops::new(flops), Bytes::new(bytes), 2)
    }

    /// Forward work of the top MLP for `batch` examples.
    pub fn top_forward(&self, batch: u64) -> Work {
        let flops = self.config.top_mlp_flops_per_example() * batch;
        let bytes =
            self.dense_stream_bytes(batch, self.config.top_mlp(), self.config.top_input_dim());
        Work::compute(
            Flops::new(flops),
            Bytes::new(bytes),
            (self.config.top_mlp().len() as u64 + 1) * self.knobs.kernels_per_layer,
        )
    }

    /// Backward work of the full dense stack (both MLPs + interaction) for
    /// `batch` examples.
    pub fn dense_backward(&self, batch: u64) -> Work {
        let fwd = self
            .bottom_forward(batch)
            .merge(&self.interaction_forward(batch))
            .merge(&self.top_forward(batch));
        Work::compute(
            Flops::new((fwd.flops().as_f64() * self.knobs.backward_flops_multiplier) as u64),
            Bytes::new((fwd.bytes().as_f64() * self.knobs.backward_flops_multiplier) as u64),
            fwd.kernels(),
        )
    }

    /// Dense optimizer update: streams every MLP parameter (read gradient,
    /// read-modify-write weight and state).
    pub fn dense_optimizer(&self) -> Work {
        let params = self.config.mlp_parameter_bytes();
        Work::compute(
            Flops::new(params / F32_BYTES * 4),
            Bytes::new(params * 3),
            4,
        )
    }

    fn dense_stream_bytes(&self, batch: u64, widths: &[usize], input: usize) -> u64 {
        let mut weight_bytes = 0u64;
        let mut act_bytes = 0u64;
        let mut prev = input;
        for &w in widths {
            weight_bytes += (prev * w) as u64 * F32_BYTES;
            act_bytes += w as u64 * F32_BYTES;
            prev = w;
        }
        weight_bytes + act_bytes * batch
    }

    // ------------------------------------------------------------------
    // Embedding traffic
    // ------------------------------------------------------------------

    /// Forward gather work for `gather_bytes` of embedding rows pulled from
    /// `tables` tables with an average size of `avg_table_bytes` (sets
    /// cache-ability), including pooling FLOPs. One kernel launches per
    /// table (SparseLengthsSum-style), which matters for wide models: 128
    /// sparse features cost 128 launches per pass.
    pub fn embedding_gather(&self, gather_bytes: u64, avg_table_bytes: u64, tables: u64) -> Work {
        let boost = self.knobs.gather_boost(avg_table_bytes);
        let effective = (gather_bytes as f64 / boost) as u64;
        // Pooling: one add per gathered float.
        Work::new(
            Flops::new(gather_bytes / F32_BYTES),
            Bytes::new(effective),
            AccessPattern::Random,
            tables.max(1),
        )
    }

    /// Backward scatter + optimizer update at the table's location:
    /// [`CostKnobs::scatter_multiplier`] × the forward gather traffic, with
    /// an extra atomic-contention derate on GPUs
    /// ([`CostKnobs::gpu_scatter_efficiency`]).
    pub fn embedding_scatter(
        &self,
        gather_bytes: u64,
        avg_table_bytes: u64,
        tables: u64,
        device_kind: recsim_hw::DeviceKind,
    ) -> Work {
        let boost = self.knobs.gather_boost(avg_table_bytes);
        let atomic = match device_kind {
            recsim_hw::DeviceKind::Gpu => self.knobs.gpu_scatter_efficiency,
            recsim_hw::DeviceKind::Cpu => 1.0,
        };
        let bytes = (gather_bytes as f64 * self.knobs.scatter_multiplier / (boost * atomic)) as u64;
        Work::new(
            Flops::new(gather_bytes / F32_BYTES * 2),
            Bytes::new(bytes),
            AccessPattern::Random,
            tables.max(1),
        )
    }

    /// Host-CPU staging work for relaying `bytes` through the system memory
    /// of `host` (recv processing, repacking, send): streaming at
    /// [`CostKnobs::staging_fraction`] of the host's memory bandwidth.
    pub fn host_staging(&self, bytes: u64, host: &ComputeDevice) -> Duration {
        host.memory()
            .stream_bandwidth()
            .derated(self.knobs.staging_fraction)
            .transfer_time(Bytes::new(bytes))
    }

    /// Time a compute device needs for MLP-shaped `work` whose FLOPs are
    /// spread over `kernels` roughly equal GEMM kernels. On GPUs the
    /// per-kernel size sets the achieved fraction of the sustained rate
    /// ([`CostKnobs::gemm_half_efficiency_flops`]); CPUs run `work` as-is.
    pub fn dense_time_on(&self, work: &Work, device: &ComputeDevice) -> Duration {
        if device.kind() != recsim_hw::DeviceKind::Gpu || work.flops() == Flops::ZERO {
            return work.time_on(device);
        }
        let kernels = work.kernels().max(1) as f64;
        let eff = self.knobs.gemm_efficiency(work.flops().as_f64() / kernels);
        let compute = device
            .sustained_flop_rate()
            .derated(eff.clamp(1e-6, 1.0))
            .execution_time(work.flops());
        let mem = device.memory().access_time(work.bytes(), work.pattern());
        device.kernel_overhead() * kernels + compute.max(mem)
    }

    /// Time a compute device needs for `work`.
    pub fn time_on(&self, work: &Work, device: &ComputeDevice) -> Duration {
        work.time_on(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_hw::device::v100;

    fn config() -> ModelConfig {
        ModelConfig::test_suite(64, 8, 100_000, &[512, 512, 512])
    }

    #[test]
    fn gather_boost_interpolates_monotonically() {
        let k = CostKnobs::default();
        assert_eq!(k.gather_boost(1 << 20), k.cache_boost);
        assert_eq!(k.gather_boost(8 << 30), 1.0);
        let mid = k.gather_boost(512 << 20);
        assert!(mid > 1.0 && mid < k.cache_boost);
        // Monotone decreasing.
        let mut prev = k.gather_boost(1 << 20);
        for shift in 21..34 {
            let b = k.gather_boost(1u64 << shift);
            assert!(b <= prev + 1e-12, "boost must not increase with size");
            prev = b;
        }
    }

    #[test]
    fn hogwild_utilization_grows_and_saturates() {
        let k = CostKnobs::default();
        let u1 = k.hogwild_machine_utilization(1);
        let u2 = k.hogwild_machine_utilization(2);
        let u8 = k.hogwild_machine_utilization(8);
        assert!(u1 < u2 && u2 <= u8);
        assert!(u1 > 0.0 && u8 <= 1.0);
        assert_eq!(u8, 1.0, "many threads saturate the machine");
        assert_eq!(
            k.hogwild_machine_utilization(0),
            u1,
            "zero threads clamps to one"
        );
    }

    #[test]
    fn default_knobs_validate_cleanly() {
        assert!(CostKnobs::default().check().is_ok());
    }

    #[test]
    fn corrupted_knobs_are_rv024() {
        let bad = CostKnobs {
            staging_fraction: 0.0,
            dram_resident_bytes: CostKnobs::default().cache_resident_bytes,
            hogwild_base_utilization: f64::NAN,
            ..CostKnobs::default()
        };
        let diags = bad.validate();
        assert_eq!(
            diags.len(),
            3,
            "one diagnostic per corrupted knob: {diags:?}"
        );
        assert!(diags.iter().all(|d| d.code() == Code::InvalidCostKnob));
        assert!(diags
            .iter()
            .any(|d| d.location() == "CostKnobs.staging_fraction"));
        let err = bad.check().expect_err("corrupted knobs must be rejected");
        assert!(err.has_code(Code::InvalidCostKnob));
    }

    #[test]
    fn cpu_batch_derate_decreases_with_working_set() {
        let k = CostKnobs::default();
        let small = k.cpu_batch_derate(1 << 20);
        let large = k.cpu_batch_derate(1 << 30);
        assert!(small > large);
        assert!(small <= 1.0 && large > 0.0);
    }

    #[test]
    fn forward_work_scales_with_batch() {
        let cfg = config();
        let costs = IterationCosts::new(&cfg, CostKnobs::default());
        let a = costs.bottom_forward(100);
        let b = costs.bottom_forward(200);
        assert_eq!(b.flops().as_u64(), 2 * a.flops().as_u64());
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let cfg = config();
        let costs = IterationCosts::new(&cfg, CostKnobs::default());
        let gpu = v100(Bytes::from_gib(32));
        let fwd = costs
            .bottom_forward(1600)
            .merge(&costs.interaction_forward(1600))
            .merge(&costs.top_forward(1600));
        let bwd = costs.dense_backward(1600);
        assert!(bwd.time_on(&gpu).as_secs() > fwd.time_on(&gpu).as_secs());
    }

    #[test]
    fn scatter_exceeds_gather() {
        let cfg = config();
        let costs = IterationCosts::new(&cfg, CostKnobs::default());
        let gpu = v100(Bytes::from_gib(32));
        let gather = costs.embedding_gather(1 << 26, 1 << 33, 8);
        let scatter = costs.embedding_scatter(1 << 26, 1 << 33, 8, recsim_hw::DeviceKind::Gpu);
        assert!(scatter.time_on(&gpu).as_secs() > gather.time_on(&gpu).as_secs());
    }

    #[test]
    fn small_tables_gather_faster() {
        let cfg = config();
        let costs = IterationCosts::new(&cfg, CostKnobs::default());
        let gpu = v100(Bytes::from_gib(32));
        let hot = costs.embedding_gather(1 << 26, 1 << 20, 8); // cache-resident
        let cold = costs.embedding_gather(1 << 26, 1 << 34, 8); // DRAM
        assert!(
            cold.time_on(&gpu).as_secs() > 2.0 * hot.time_on(&gpu).as_secs(),
            "cache-ability must matter"
        );
    }

    #[test]
    fn gather_is_random_access() {
        let cfg = config();
        let costs = IterationCosts::new(&cfg, CostKnobs::default());
        assert_eq!(
            costs.embedding_gather(1000, 1 << 30, 4).pattern(),
            AccessPattern::Random
        );
    }
}
