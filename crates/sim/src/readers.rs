//! The reader-server tier (paper Figure 4 and Section IV.B.2).
//!
//! "Readers access model training data in parallel from remote storage …
//! Reader servers are decoupled from trainers to be scaled-up independently
//! and not to stall training. We typically scale up reader servers such
//! that data reading is not a bottleneck. Consequently, for more performant
//! training hardware, we may utilize more readers."
//!
//! This module models one reader's deliverable example rate (bounded by its
//! NIC and its preprocessing CPU) and sizes the tier for a target training
//! throughput.

use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Link;
use recsim_trace::Tracer;
use serde::{Deserialize, Serialize};

/// One reader server's capability model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReaderModel {
    /// Bytes of warehouse data touched per delivered example byte
    /// (decompression, filtering, feature transforms).
    pub preprocess_amplification: f64,
    /// Fraction of the reader's memory bandwidth usable for preprocessing.
    pub preprocess_bandwidth_fraction: f64,
    /// Safety headroom: the tier is sized so readers run at most at this
    /// utilization ("such that data reading is not a bottleneck").
    pub target_utilization: f64,
}

impl Default for ReaderModel {
    fn default() -> Self {
        Self {
            // Warehouse rows are wide and compressed: many bytes touched
            // per delivered example byte.
            preprocess_amplification: 50.0,
            // Feature transforms are CPU-bound, not STREAM-bound.
            preprocess_bandwidth_fraction: 0.02,
            target_utilization: 0.7,
        }
    }
}

impl ReaderModel {
    /// Examples per second one dual-socket reader can deliver for `config`:
    /// the minimum of its NIC-limited and preprocessing-limited rates.
    pub fn examples_per_second(&self, config: &ModelConfig) -> f64 {
        let example_bytes = config.example_bytes() as f64;
        let reader = recsim_hw::device::skylake_dual_socket();
        let nic = Link::ethernet_25g();
        // Egress: delivering examples to trainers.
        let nic_rate = nic.effective_bandwidth().as_bytes_per_s() / example_bytes;
        // Preprocessing: touching amplified warehouse bytes.
        let mem_rate = reader.memory().stream_bandwidth().as_bytes_per_s()
            * self.preprocess_bandwidth_fraction
            / (example_bytes * self.preprocess_amplification);
        nic_rate.min(mem_rate)
    }

    /// Readers needed so the tier serves `target_throughput` examples/s at
    /// no more than [`ReaderModel::target_utilization`].
    ///
    /// # Panics
    ///
    /// Panics if `target_throughput` is not positive and finite.
    pub fn readers_needed(&self, config: &ModelConfig, target_throughput: f64) -> u32 {
        assert!(
            target_throughput > 0.0 && target_throughput.is_finite(),
            "target throughput must be positive"
        );
        let per_reader = self.examples_per_second(config) * self.target_utilization;
        (target_throughput / per_reader).ceil().max(1.0) as u32
    }

    /// Warehouse bytes streamed per second by a tier serving
    /// `target_throughput` examples/s (storage-side provisioning).
    pub fn warehouse_bandwidth(&self, config: &ModelConfig, target_throughput: f64) -> Bytes {
        let bytes =
            target_throughput * config.example_bytes() as f64 * self.preprocess_amplification;
        Bytes::new(bytes as u64)
    }

    /// Emits the tier-sizing numbers as trace counters at `ts_us`:
    /// per-reader deliverable rate, readers needed for `target_throughput`,
    /// and the warehouse bandwidth the tier pulls. A non-positive or
    /// non-finite target emits nothing (no sizing question to answer).
    pub fn emit_counters(
        &self,
        config: &ModelConfig,
        target_throughput: f64,
        ts_us: f64,
        tracer: &mut dyn Tracer,
    ) {
        let usable = target_throughput.is_finite() && target_throughput > 0.0;
        if !tracer.enabled() || !usable {
            return;
        }
        tracer.counter(
            "reader:examples_per_s",
            ts_us,
            self.examples_per_second(config),
        );
        tracer.counter(
            "reader:servers_needed",
            ts_us,
            f64::from(self.readers_needed(config, target_throughput)),
        );
        tracer.counter(
            "reader:warehouse_bytes_per_s",
            ts_us,
            self.warehouse_bandwidth(config, target_throughput).as_f64(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ModelConfig {
        ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512])
    }

    #[test]
    fn per_reader_rate_is_positive_and_bounded() {
        let m = ReaderModel::default();
        let rate = m.examples_per_second(&config());
        assert!(rate > 0.0);
        // Cannot exceed the raw NIC rate.
        let nic_limit = Link::ethernet_25g().effective_bandwidth().as_bytes_per_s()
            / config().example_bytes() as f64;
        assert!(rate <= nic_limit);
    }

    #[test]
    fn faster_hardware_needs_more_readers() {
        // The paper's claim: "for more performant training hardware, we may
        // utilize more readers."
        let m = ReaderModel::default();
        let cfg = config();
        let cpu_tput = 40_000.0;
        let gpu_tput = 700_000.0;
        let cpu_readers = m.readers_needed(&cfg, cpu_tput);
        let gpu_readers = m.readers_needed(&cfg, gpu_tput);
        assert!(
            gpu_readers > cpu_readers,
            "GPU tier needs more readers: {cpu_readers} vs {gpu_readers}"
        );
    }

    #[test]
    fn bigger_examples_need_more_readers() {
        let m = ReaderModel::default();
        let small = ModelConfig::test_suite(64, 4, 1000, &[64]);
        let big = ModelConfig::test_suite(4096, 128, 1000, &[64]);
        assert!(m.readers_needed(&big, 100_000.0) > m.readers_needed(&small, 100_000.0));
    }

    #[test]
    fn readers_scale_linearly_with_throughput() {
        let m = ReaderModel::default();
        let cfg = config();
        // Use targets large enough that ceiling effects are negligible.
        let one = m.readers_needed(&cfg, 200_000.0);
        let ten = m.readers_needed(&cfg, 2_000_000.0);
        assert!(
            ten >= one * 9 && ten <= one * 11,
            "expected ~10x readers: {one} -> {ten}"
        );
    }

    #[test]
    fn counters_emitted_for_valid_targets_only() {
        let m = ReaderModel::default();
        let cfg = config();
        let mut rec = recsim_trace::TraceRecorder::new();
        m.emit_counters(&cfg, -5.0, 0.0, &mut rec);
        m.emit_counters(&cfg, f64::NAN, 0.0, &mut rec);
        m.emit_counters(&cfg, 100_000.0, 0.0, &mut rec);
        let trace = rec.finish();
        assert_eq!(trace.len(), 3, "one emit, three counters");
        let names = trace.counter_names();
        assert!(names.contains(&"reader:servers_needed"));
    }

    #[test]
    fn warehouse_bandwidth_includes_amplification() {
        let m = ReaderModel::default();
        let cfg = config();
        let bw = m.warehouse_bandwidth(&cfg, 100_000.0);
        assert!(bw.as_f64() > 100_000.0 * cfg.example_bytes() as f64);
    }
}
