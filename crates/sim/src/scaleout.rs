//! Multi-node scale-out: embedding tables distributed over the GPU memory
//! of several Big Basin servers.
//!
//! Section VI of the paper considers this option for M3-class models and
//! rejects it: "to be performance efficient, this mode requires fast
//! inter-node GPU-GPU communication … due to the lack of this capability,
//! we were not able to test this model setup", and its analytical model
//! finds Zion "several orders of magnitude more efficient than using
//! multiple Big Basins with embedding tables placed on the GPU memory".
//!
//! This simulator builds that analytical model concretely. Without
//! GPUDirect-RDMA-style networking, every remote lookup's *raw rows* cross
//! node boundaries through host staging and a 100 GbE NIC (pooling happens
//! at the consumer, since no remote-pooling operator exists for GPU-held
//! tables), and the backward pass sends them all back — which is what makes
//! the efficiency gap enormous.

use crate::cost::{CostKnobs, IterationCosts};
use crate::des::{Schedule, SimScratch, TaskGraph, TaskId};
use crate::report::SimReport;
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::{Platform, PowerModel};
use recsim_placement::plan::{gpu_table_capacity, ADAGRAD_STATE_MULTIPLIER};
use recsim_trace::{CriticalPathReport, TaskCategory, Trace};
use recsim_verify::{Code, Diagnostic, Validate, ValidationError};

/// Why a scale-out setup cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleOutError {
    /// Even the requested node count cannot hold the tables.
    Capacity {
        /// Nodes requested.
        nodes: u32,
        /// Minimum nodes whose pooled HBM holds the tables.
        needed: u32,
    },
    /// The model config or the setup parameters failed validation
    /// (RV028/RV029/RV024 diagnostics).
    Invalid(ValidationError),
}

impl std::fmt::Display for ScaleOutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleOutError::Capacity { nodes, needed } => write!(
                f,
                "tables need at least {needed} Big Basin nodes, got {nodes}"
            ),
            ScaleOutError::Invalid(e) => write!(f, "invalid scale-out setup: {e}"),
        }
    }
}

impl std::error::Error for ScaleOutError {}

impl From<ValidationError> for ScaleOutError {
    fn from(e: ValidationError) -> Self {
        Self::Invalid(e)
    }
}

/// Simulator for `nodes` Big Basin servers training data-parallel with
/// embedding tables sharded across all nodes' GPU memory.
///
/// # Example
///
/// ```
/// use recsim_sim::scaleout::ScaleOutSim;
/// use recsim_data::production::{production_model, ProductionModelId};
///
/// let m3 = production_model(ProductionModelId::M3);
/// let sim = ScaleOutSim::new(&m3, 4, 800)?;
/// let report = sim.run();
/// assert!(report.throughput() > 0.0);
/// # Ok::<(), recsim_sim::scaleout::ScaleOutError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScaleOutSim {
    config: ModelConfig,
    nodes: u32,
    batch_per_node: u64,
    knobs: CostKnobs,
}

/// Minimum Big Basin (32 GiB SKU) node count whose pooled HBM holds the
/// model's tables with Adagrad state.
pub fn min_nodes(config: &ModelConfig) -> u32 {
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let per_node = gpu_table_capacity(&bb) * bb.gpus().len() as u64;
    let total = (config.total_embedding_bytes() as f64 * ADAGRAD_STATE_MULTIPLIER) as u64;
    total.div_ceil(per_node).max(1) as u32
}

impl ScaleOutSim {
    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`ScaleOutError::Capacity`] when `nodes` of pooled HBM cannot
    /// hold the tables, and [`ScaleOutError::Invalid`] (RV028/RV029) when
    /// the model config fails validation, `nodes == 0`, or
    /// `batch_per_node == 0`.
    pub fn new(
        config: &ModelConfig,
        nodes: u32,
        batch_per_node: u64,
    ) -> Result<Self, ScaleOutError> {
        let mut diagnostics = config.validate();
        if nodes == 0 {
            diagnostics.push(Diagnostic::error(
                Code::InvalidClusterConfig,
                "ScaleOutSim.nodes",
                "need at least one node",
            ));
        }
        if batch_per_node == 0 {
            diagnostics.push(Diagnostic::error(
                Code::InvalidClusterConfig,
                "ScaleOutSim.batch_per_node",
                "batch must be positive",
            ));
        }
        let errors = crate::collect_errors(diagnostics);
        if !errors.diagnostics().is_empty() {
            return Err(ScaleOutError::Invalid(errors));
        }
        let needed = min_nodes(config);
        if nodes < needed {
            return Err(ScaleOutError::Capacity { nodes, needed });
        }
        Ok(Self {
            config: config.clone(),
            nodes,
            batch_per_node,
            knobs: CostKnobs::default(),
        })
    }

    /// Overrides the cost-model knobs.
    ///
    /// # Errors
    ///
    /// [`ScaleOutError::Invalid`] (RV024) when a knob fails [`Validate`].
    pub fn with_knobs(mut self, knobs: CostKnobs) -> Result<Self, ScaleOutError> {
        knobs.check()?;
        self.knobs = knobs;
        Ok(self)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Simulates steady-state pipelined training across the nodes.
    pub fn run(&self) -> SimReport {
        self.run_in(&mut SimScratch::new())
    }

    /// [`ScaleOutSim::run`] borrowing a caller-owned [`SimScratch`], so a
    /// sweep amortizes the engine's working buffers over its whole grid.
    pub fn run_in(&self, scratch: &mut SimScratch) -> SimReport {
        let single = self.schedule_of(1, scratch);
        let depth = crate::gpu::GpuTrainingSim::PIPELINE_DEPTH;
        let pipelined = self.schedule_of(depth, scratch);
        let steady = pipelined.makespan().saturating_sub(single.makespan()) / (depth - 1) as f64;
        let steady = steady.max(single.makespan() / depth as f64);

        let utilizations = pipelined.utilizations();
        let avg_util =
            utilizations.iter().map(|(_, u)| *u).sum::<f64>() / utilizations.len().max(1) as f64;
        let power = PowerModel::big_basin().draw(avg_util) * self.nodes as f64;
        // Scale the schedule's critical-path breakdown to the reported
        // steady-state iteration time (see GpuTrainingSim::report).
        let makespan = pipelined.makespan().as_secs();
        let scale = if makespan > 0.0 {
            steady.as_secs() / makespan
        } else {
            0.0
        };
        let attribution: Vec<(String, recsim_hw::units::Duration)> = pipelined
            .attribution()
            .into_iter()
            .map(|(label, d)| {
                (
                    label,
                    recsim_hw::units::Duration::from_secs(d.as_secs() * scale),
                )
            })
            .collect();
        let setup = format!(
            "{} Big Basins / sharded GPU memory / batch {}/node",
            self.nodes, self.batch_per_node
        );
        // The validated constructor makes the Err arm unreachable; keep
        // run() total.
        match SimReport::new(
            setup.clone(),
            steady,
            (self.nodes as u64 * self.batch_per_node) as f64,
            utilizations,
            pipelined.bottleneck(),
            power,
        ) {
            Ok(report) => report.with_attribution(attribution),
            Err(_) => SimReport::degenerate(setup),
        }
    }

    /// Execution trace of one un-pipelined scale-out iteration; export with
    /// [`recsim_trace::chrome_trace`] or the text/summary exporters.
    pub fn trace(&self) -> Trace {
        self.schedule_of(1, &mut SimScratch::new()).to_trace()
    }

    /// Critical-path attribution of one un-pipelined scale-out iteration.
    pub fn critical_path(&self, top_k: usize) -> CriticalPathReport {
        self.schedule_of(1, &mut SimScratch::new())
            .critical_path(top_k)
    }

    /// Builds and simulates the scale-out graph; the validated constructor
    /// makes the fallback unreachable (see `GpuTrainingSim`).
    fn schedule_of(&self, iterations: usize, scratch: &mut SimScratch) -> Schedule {
        match self.build_graph(iterations).simulate_in(scratch) {
            Ok(schedule) => schedule,
            Err(_) => TaskGraph::new().execute(),
        }
    }

    fn build_graph(&self, iterations: usize) -> TaskGraph {
        let n = self.nodes as usize;
        let b = self.batch_per_node;
        let big_b = b * n as u64;
        let costs = IterationCosts::new(&self.config, self.knobs);
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let gpu_dev = bb.gpus()[0];
        let host_dev = *bb.host();
        let nic = *bb.network();

        let mut graph = TaskGraph::new();
        // Per node: the 8-GPU complex (capacity 8, per-GPU tasks), the
        // host, and the NIC.
        let gpus: Vec<_> = (0..n)
            .map(|i| graph.add_resource(format!("node{i}_gpus"), 8))
            .collect();
        let hosts: Vec<_> = (0..n)
            .map(|i| graph.add_resource(format!("node{i}_host"), 1))
            .collect();
        let nics: Vec<_> = (0..n)
            .map(|i| graph.add_resource(format!("node{i}_nic"), 1))
            .collect();

        let gather_pe = self.config.embedding_read_bytes_per_example();
        let tables = self.config.num_tables() as u64;
        let avg_table = self.config.total_embedding_bytes() / tables.max(1);
        let example_bytes = self.config.example_bytes();
        let mlp_bytes = self.config.mlp_parameter_bytes();
        let remote_frac = (n as u64 - 1) as f64 / n as f64;

        for _iter in 0..iterations {
            let mut tails: Vec<TaskId> = Vec::new();
            for i in 0..n {
                // Input pipeline.
                let t_read = graph.add_task_in(
                    TaskCategory::ReaderStall,
                    format!("read{i}"),
                    nic.transfer_time(Bytes::new(b * example_bytes), 1),
                    Some(nics[i]),
                    &[],
                );
                let t_stage = graph.add_task_in(
                    TaskCategory::HostStaging,
                    format!("stage{i}"),
                    costs.host_staging(b * example_bytes, &host_dev),
                    Some(hosts[i]),
                    &[t_read],
                );

                // Local gathers: this node owns 1/n of the tables and must
                // gather raw rows for the FULL global batch.
                let t_gather = graph.add_task_in(
                    TaskCategory::EmbeddingLookup,
                    format!("gather{i}"),
                    costs
                        .embedding_gather(
                            big_b * gather_pe / n as u64,
                            avg_table,
                            tables / n as u64,
                        )
                        .time_on(&gpu_dev),
                    Some(gpus[i]),
                    &[t_stage],
                );

                // Export raw rows for other nodes' examples: D2H staging +
                // NIC; import this node's remote rows symmetrically. No
                // GPUDirect RDMA: everything passes host memory, and each
                // table x peer pair is its own message exchange.
                let wire_bytes = ((big_b - b) * gather_pe / n as u64) as f64;
                let import_bytes = (b as f64 * gather_pe as f64 * remote_frac) as u64;
                let messages = (tables * (n as u64 - 1)).max(1);
                let t_import_stage = if n > 1 {
                    let t_export_stage = graph.add_task_in(
                        TaskCategory::HostStaging,
                        format!("export_stage{i}"),
                        costs.host_staging(wire_bytes as u64, &host_dev)
                            + self.knobs.rpc_overhead * messages as f64,
                        Some(hosts[i]),
                        &[t_gather],
                    );
                    let t_wire = graph.add_task_in(
                        TaskCategory::NicTransfer,
                        format!("wire_fwd{i}"),
                        nic.transfer_time(Bytes::new(wire_bytes as u64 + import_bytes), messages),
                        Some(nics[i]),
                        &[t_export_stage],
                    );
                    graph.add_task_in(
                        TaskCategory::HostStaging,
                        format!("import_stage{i}"),
                        costs.host_staging(import_bytes, &host_dev),
                        Some(hosts[i]),
                        &[t_wire],
                    )
                } else {
                    t_gather
                };

                // Consumer-side pooling + the dense stack for this node's
                // shard (8 data-parallel GPU tasks).
                let per_gpu = (b / 8).max(1);
                let mut bwd = Vec::with_capacity(8);
                for g in 0..8 {
                    let fwd_work = costs
                        .bottom_forward(per_gpu)
                        .merge(&costs.interaction_forward(per_gpu))
                        .merge(&costs.top_forward(per_gpu));
                    let t_fwd = graph.add_task_in(
                        TaskCategory::MlpCompute,
                        format!("fwd{i}_{g}"),
                        costs.dense_time_on(&fwd_work, &gpu_dev),
                        Some(gpus[i]),
                        &[t_import_stage],
                    );
                    bwd.push(graph.add_task_in(
                        TaskCategory::MlpCompute,
                        format!("bwd{i}_{g}"),
                        costs.dense_time_on(&costs.dense_backward(per_gpu), &gpu_dev),
                        Some(gpus[i]),
                        &[t_fwd],
                    ));
                }

                // Backward: raw row gradients return over the wire, then
                // scatter/update at the owners.
                let t_grad_ready = if n > 1 {
                    let t_grad_stage = graph.add_task_in(
                        TaskCategory::HostStaging,
                        format!("grad_stage{i}"),
                        costs.host_staging(import_bytes, &host_dev)
                            + self.knobs.rpc_overhead * messages as f64,
                        Some(hosts[i]),
                        &bwd,
                    );
                    vec![graph.add_task_in(
                        TaskCategory::NicTransfer,
                        format!("wire_bwd{i}"),
                        nic.transfer_time(Bytes::new(wire_bytes as u64 + import_bytes), messages),
                        Some(nics[i]),
                        &[t_grad_stage],
                    )]
                } else {
                    bwd.clone()
                };
                let t_scatter = graph.add_task_in(
                    TaskCategory::EmbeddingUpdate,
                    format!("scatter{i}"),
                    costs
                        .embedding_scatter(
                            big_b * gather_pe / n as u64,
                            avg_table,
                            tables / n as u64,
                            recsim_hw::DeviceKind::Gpu,
                        )
                        .time_on(&gpu_dev),
                    Some(gpus[i]),
                    &t_grad_ready,
                );
                tails.push(t_scatter);

                // Dense all-reduce across nodes over the NICs.
                if n > 1 {
                    let ring = (2 * mlp_bytes) as f64 * remote_frac;
                    let t_ar = graph.add_task_in(
                        TaskCategory::AllToAll,
                        format!("allreduce{i}"),
                        nic.transfer_time(
                            Bytes::new((ring as u64).max(1)),
                            (self.config.bottom_mlp().len() + self.config.top_mlp().len() + 1)
                                as u64,
                        ),
                        Some(nics[i]),
                        &bwd,
                    );
                    tails.push(t_ar);
                }
            }
            graph.add_barrier("scaleout_iteration_done", &tails);
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_data::production::{production_model, ProductionModelId};
    use recsim_placement::PlacementStrategy;

    #[test]
    fn m3_needs_multiple_nodes() {
        let m3 = production_model(ProductionModelId::M3);
        let needed = min_nodes(&m3);
        assert!(needed >= 2, "M3 + state exceeds one node's HBM: {needed}");
        assert!(matches!(
            ScaleOutSim::new(&m3, 1, 800),
            Err(ScaleOutError::Capacity { .. })
        ));
        assert!(ScaleOutSim::new(&m3, needed, 800).is_ok());
    }

    #[test]
    fn zero_nodes_are_rejected_with_rv029() {
        let m3 = production_model(ProductionModelId::M3);
        match ScaleOutSim::new(&m3, 0, 800) {
            Err(ScaleOutError::Invalid(v)) => {
                assert!(v.has_code(Code::InvalidClusterConfig));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn zion_is_far_more_efficient_than_multi_big_basin() {
        // Section VI.B's analytical-model claim, regenerated: for M3,
        // training on Zion beats sharded-GPU-memory multi-Big-Basin by a
        // large factor in perf-per-watt.
        let m3 = production_model(ProductionModelId::M3);
        let nodes = min_nodes(&m3).max(2);
        let multi = ScaleOutSim::new(&m3, nodes, 800).expect("fits").run();
        let zion = crate::gpu::GpuTrainingSim::new(
            &m3,
            &Platform::zion_prototype(),
            PlacementStrategy::SystemMemory,
            1600,
        )
        .expect("fits")
        .run();
        let eff_ratio = zion.perf_per_watt() / multi.perf_per_watt();
        assert!(
            eff_ratio > 10.0,
            "Zion should be >10x more efficient, got {eff_ratio:.1}x \
             (zion {:.0} ex/s @ {:.0} W vs multi {:.0} ex/s @ {:.0} W)",
            zion.throughput(),
            zion.power().as_watts(),
            multi.throughput(),
            multi.power().as_watts()
        );
    }

    #[test]
    fn more_nodes_do_not_fix_the_wire_bottleneck() {
        // Adding nodes grows the raw-row exchange, so per-node throughput
        // collapses rather than scales.
        let m3 = production_model(ProductionModelId::M3);
        let base = min_nodes(&m3).max(2);
        let small = ScaleOutSim::new(&m3, base, 800).expect("fits").run();
        let big = ScaleOutSim::new(&m3, base * 2, 800).expect("fits").run();
        let per_node_small = small.throughput() / base as f64;
        let per_node_big = big.throughput() / (base * 2) as f64;
        assert!(
            per_node_big < per_node_small,
            "per-node throughput must fall: {per_node_small:.0} -> {per_node_big:.0}"
        );
    }

    #[test]
    fn small_models_scale_out_fine() {
        // A compute-bound model without heavy embeddings scales acceptably
        // (the pathology is M3-specific).
        let cfg = ModelConfig::test_suite(256, 4, 100_000, &[1024, 1024, 1024]);
        let one = ScaleOutSim::new(&cfg, 1, 800).expect("fits").run();
        let four = ScaleOutSim::new(&cfg, 4, 800).expect("fits").run();
        assert!(
            four.throughput() > one.throughput() * 1.5,
            "compute-bound models gain from nodes: {:.0} -> {:.0}",
            one.throughput(),
            four.throughput()
        );
    }
}
