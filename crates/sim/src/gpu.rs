//! Single-server GPU training pipeline (Big Basin / Zion).
//!
//! Training is data-parallel across the server's GPUs: the global batch is
//! split evenly, every GPU runs the dense stack for its shard, and the
//! embedding path depends on the table placement:
//!
//! * **Replicated tables** — purely local gathers, no exchange.
//! * **Distributed GPU tables** (table- or row-wise) — each owner GPU
//!   gathers and pools *the whole batch* for its tables, then an all-to-all
//!   delivers pooled vectors to the consuming GPUs (over NVLink when the
//!   platform has it, otherwise relayed through host memory — the
//!   prototype-Zion regime the paper measures in Figure 14).
//! * **Host-memory tables** — the host CPU complex gathers and pools, then
//!   PCIe delivers per-GPU slices (host CPU becomes the bottleneck on a
//!   2-socket Big Basin, but not on 8-socket Zion).
//! * **Remote tables** — parameter servers gather, the NIC carries pooled
//!   vectors, the host stages them, PCIe delivers them.
//!
//! The backward pass mirrors every movement and adds the scatter/optimizer
//! traffic at each table's owner, plus a ring all-reduce of dense gradients.

use crate::cost::{CostKnobs, IterationCosts};
use crate::des::{ResourceId, Schedule, SimScratch, TaskGraph, TaskId};
use crate::report::SimReport;
use crate::SimError;
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::{Link, Platform, PowerModel};
use recsim_placement::{Placement, PlacementStrategy, TableAssignment, TableLocation};
use recsim_trace::{CriticalPathReport, TaskCategory, Trace};
use recsim_verify::{Code, Diagnostic, Validate};

/// Simulator for one GPU-server training setup.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct GpuTrainingSim {
    config: ModelConfig,
    platform: Platform,
    placement: Placement,
    batch: u64,
    knobs: CostKnobs,
    cache_hit_rate: f64,
    /// Host-GPU link, extracted once construction has validated that the
    /// platform actually reaches its GPUs.
    pcie: Link,
    /// Direct GPU-GPU interconnect, when the platform has one.
    nvlink: Option<Link>,
}

impl GpuTrainingSim {
    /// Plans the placement (with Adagrad state) and builds the simulator.
    ///
    /// # Errors
    ///
    /// [`SimError::Placement`] when the strategy cannot host the model's
    /// tables; [`SimError::Invalid`] when the model or platform fails
    /// validation.
    pub fn new(
        config: &ModelConfig,
        platform: &Platform,
        strategy: PlacementStrategy,
        batch: u64,
    ) -> Result<Self, SimError> {
        let placement = Placement::plan(
            config,
            platform,
            strategy,
            recsim_placement::plan::ADAGRAD_STATE_MULTIPLIER,
        )?;
        Self::with_placement(config, platform, placement, batch)
    }

    /// Builds the simulator from an existing placement.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] with the collected RV0xx diagnostics when the
    /// model config, platform, or placement fails [`Validate`], when
    /// `batch == 0`, or when the platform has no (reachable) GPUs.
    pub fn with_placement(
        config: &ModelConfig,
        platform: &Platform,
        placement: Placement,
        batch: u64,
    ) -> Result<Self, SimError> {
        let mut diagnostics = config.validate();
        diagnostics.extend(platform.validate());
        diagnostics.extend(placement.validate());
        if batch == 0 {
            diagnostics.push(Diagnostic::error(
                Code::InvalidClusterConfig,
                "GpuTrainingSim.batch",
                "batch must be positive",
            ));
        }
        if !platform.has_gpus() {
            diagnostics.push(Diagnostic::error(
                Code::InvalidPlatform,
                format!("GpuTrainingSim.platform({})", platform.name()),
                "GPU training needs a platform with GPUs",
            ));
        }
        // RV020 from Platform::validate already covers the GPUs-without-a-
        // host-link case, so this only fails alongside it.
        let pcie = match platform.host_gpu_link() {
            Some(link) => *link,
            None => {
                return Err(SimError::Invalid(crate::collect_errors(diagnostics)));
            }
        };
        let errors = crate::collect_errors(diagnostics);
        if !errors.diagnostics().is_empty() {
            return Err(SimError::Invalid(errors));
        }
        Ok(Self {
            config: config.clone(),
            platform: platform.clone(),
            placement,
            batch,
            knobs: CostKnobs::default(),
            cache_hit_rate: 0.0,
            pcie,
            nvlink: platform.gpu_interconnect().copied(),
        })
    }

    /// Adds a GPU-resident hot-row cache in front of host/remote embedding
    /// tables: `hit_rate` of the off-GPU gather traffic (and its pooled
    /// output movement) is served from HBM instead. Obtain realistic hit
    /// rates from `recsim_data::trace::ReuseProfile::lru_hit_rate` — the
    /// caching opportunity the paper's Section III.A.2 points at.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] (RV029) if `hit_rate` is outside `[0, 1]`.
    pub fn with_host_cache_hit_rate(mut self, hit_rate: f64) -> Result<Self, SimError> {
        if !hit_rate.is_finite() || !(0.0..=1.0).contains(&hit_rate) {
            return Err(SimError::Invalid(
                Diagnostic::error(
                    Code::InvalidClusterConfig,
                    "GpuTrainingSim.cache_hit_rate",
                    format!("hit rate must be in [0, 1], got {hit_rate}"),
                )
                .into(),
            ));
        }
        self.cache_hit_rate = hit_rate;
        Ok(self)
    }

    /// Overrides the cost-model knobs (for ablations).
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] (RV024) when a knob fails [`Validate`].
    pub fn with_knobs(mut self, knobs: CostKnobs) -> Result<Self, SimError> {
        knobs.check()?;
        self.knobs = knobs;
        Ok(self)
    }

    /// The planned placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The global batch size.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Number of back-to-back iterations used to measure steady-state
    /// pipelined throughput: production training overlaps the input
    /// pipeline, parameter-server fetches and host-side embedding work of
    /// iteration *i+1* with the GPU compute of iteration *i*; the marginal
    /// cost of one more iteration in a multi-iteration schedule captures
    /// that overlap.
    pub const PIPELINE_DEPTH: usize = 4;

    /// Simulates steady-state pipelined training and reports the marginal
    /// per-iteration time.
    pub fn run(&self) -> SimReport {
        self.run_in(&mut SimScratch::new())
    }

    /// [`GpuTrainingSim::run`] borrowing a caller-owned [`SimScratch`], so a
    /// sweep amortizes the engine's working buffers over its whole grid.
    pub fn run_in(&self, scratch: &mut SimScratch) -> SimReport {
        let single = self.schedule_of(1, scratch);
        let pipelined = self.schedule_of(Self::PIPELINE_DEPTH, scratch);
        let steady = pipelined.makespan().saturating_sub(single.makespan())
            / (Self::PIPELINE_DEPTH - 1) as f64;
        // A fully-overlapped graph could in principle report ~zero marginal
        // time; never report faster than the critical path allows.
        let steady = steady.max(single.makespan() / Self::PIPELINE_DEPTH as f64);
        self.report(steady, &pipelined)
    }

    /// [`GpuTrainingSim::run_in`] with every task duration rewritten through
    /// `perturbation` — how `recsim-fault` measures degraded throughput
    /// (stragglers, derated links) without rebuilding the simulator. With
    /// [`crate::des::NoPerturbation`] this is exactly
    /// [`GpuTrainingSim::run_in`].
    pub fn run_perturbed_in(
        &self,
        scratch: &mut SimScratch,
        perturbation: &dyn crate::des::Perturbation,
    ) -> SimReport {
        let single = self.schedule_perturbed_of(1, scratch, perturbation);
        let pipelined = self.schedule_perturbed_of(Self::PIPELINE_DEPTH, scratch, perturbation);
        let steady = pipelined.makespan().saturating_sub(single.makespan())
            / (Self::PIPELINE_DEPTH - 1) as f64;
        let steady = steady.max(single.makespan() / Self::PIPELINE_DEPTH as f64);
        self.report(steady, &pipelined)
    }

    /// Simulates exactly one un-pipelined iteration (latency view).
    pub fn run_single_iteration(&self) -> SimReport {
        let schedule = self.schedule_of(1, &mut SimScratch::new());
        self.report(schedule.makespan(), &schedule)
    }

    /// Execution trace of one un-pipelined iteration: spans per resource
    /// plus occupancy counters. Export with [`recsim_trace::chrome_trace`]
    /// (Perfetto / `chrome://tracing`), [`recsim_trace::text_timeline`], or
    /// the summary tables.
    pub fn trace(&self) -> Trace {
        self.schedule_of(1, &mut SimScratch::new()).to_trace()
    }

    /// Critical-path attribution of one un-pipelined iteration, with the
    /// `top_k` highest-slack off-path tasks.
    pub fn critical_path(&self, top_k: usize) -> CriticalPathReport {
        self.schedule_of(1, &mut SimScratch::new())
            .critical_path(top_k)
    }

    /// Builds and simulates the iteration graph. Construction validated
    /// every input and `build_graph` only wires ids it just created, so the
    /// graph always passes its own validation; if that invariant ever broke
    /// an empty schedule (zero makespan) is returned rather than a panic.
    fn schedule_of(&self, iterations: usize, scratch: &mut SimScratch) -> Schedule {
        match self.build_graph(iterations).simulate_in(scratch) {
            Ok(schedule) => schedule,
            Err(_) => TaskGraph::new().execute(),
        }
    }

    /// [`GpuTrainingSim::schedule_of`] through a [`crate::des::Perturbation`].
    fn schedule_perturbed_of(
        &self,
        iterations: usize,
        scratch: &mut SimScratch,
        perturbation: &dyn crate::des::Perturbation,
    ) -> Schedule {
        match self
            .build_graph(iterations)
            .simulate_perturbed_in(scratch, perturbation)
        {
            Ok(schedule) => schedule,
            Err(_) => TaskGraph::new().execute(),
        }
    }

    fn build_graph(&self, iterations: usize) -> TaskGraph {
        let g_count = self.platform.gpus().len();
        let big_b = self.batch;
        let small_b = (big_b / g_count as u64).max(1);
        let costs = IterationCosts::new(&self.config, self.knobs);
        let mut graph = TaskGraph::new();

        // ---- Resources -------------------------------------------------
        let gpu_res: Vec<ResourceId> = (0..g_count)
            .map(|g| graph.add_resource(format!("gpu{g}"), 1))
            .collect();
        let host_res = graph.add_resource("host_cpu", 1);
        let pcie_res: Vec<ResourceId> = (0..g_count)
            .map(|g| graph.add_resource(format!("pcie{g}"), 1))
            .collect();
        let nvlink_res = self
            .platform
            .gpu_interconnect()
            .map(|_| graph.add_resource("nvlink", g_count));
        let nic_res = graph.add_resource("nic", 1);
        let remote_servers = self.placement.remote_loads().len();
        let ps_res: Vec<ResourceId> = (0..remote_servers)
            .map(|k| graph.add_resource(format!("sparse_ps{k}"), 1))
            .collect();

        let host_dev = *self.platform.host();
        let gpu_devs: Vec<_> = self.platform.gpus().to_vec();
        let pcie = self.pcie;
        let nic = *self.platform.network();

        // ---- Placement-derived traffic ---------------------------------
        let (mut gather_gpu, mut gather_host, mut gather_remote) = self.placement.gather_split();
        let (mut pooled_gpu, mut pooled_host, mut pooled_remote) = self.placement.pooled_split();
        if self.cache_hit_rate > 0.0 {
            // A hot-row cache on the GPUs serves `hit_rate` of the off-GPU
            // lookups locally (replicated-cache semantics: local gathers,
            // no exchange for hits).
            let hit = self.cache_hit_rate;
            let moved_gather = ((gather_host + gather_remote) as f64 * hit) as u64;
            let moved_pooled = ((pooled_host + pooled_remote) as f64 * hit) as u64;
            gather_host = (gather_host as f64 * (1.0 - hit)) as u64;
            gather_remote = (gather_remote as f64 * (1.0 - hit)) as u64;
            pooled_host = (pooled_host as f64 * (1.0 - hit)) as u64;
            pooled_remote = (pooled_remote as f64 * (1.0 - hit)) as u64;
            gather_gpu += moved_gather;
            pooled_gpu += moved_pooled;
        }
        let replicated = self
            .placement
            .assignments()
            .iter()
            .all(|a| a.location == TableLocation::Replicated)
            || self.placement.assignments().iter().all(|a| {
                !matches!(
                    a.location,
                    TableLocation::Gpu(_) | TableLocation::RowWiseSharded { .. }
                )
            });
        let avg = |class: &dyn Fn(&TableAssignment) -> bool| -> u64 {
            let sel: Vec<&TableAssignment> = self
                .placement
                .assignments()
                .iter()
                .filter(|a| class(a))
                .collect();
            if sel.is_empty() {
                1
            } else {
                sel.iter().map(|a| a.bytes).sum::<u64>() / sel.len() as u64
            }
        };
        let avg_gpu_table = avg(&|a: &TableAssignment| {
            matches!(
                a.location,
                TableLocation::Replicated
                    | TableLocation::Gpu(_)
                    | TableLocation::RowWiseSharded { .. }
            )
        });
        let avg_host_table = avg(&|a: &TableAssignment| a.location == TableLocation::HostMemory);
        let avg_remote_table =
            avg(&|a: &TableAssignment| matches!(a.location, TableLocation::Remote(_)));
        let count = |class: &dyn Fn(&TableAssignment) -> bool| -> u64 {
            self.placement
                .assignments()
                .iter()
                .filter(|a| class(a))
                .count() as u64
        };
        let gpu_tables = count(&|a: &TableAssignment| {
            matches!(
                a.location,
                TableLocation::Replicated
                    | TableLocation::Gpu(_)
                    | TableLocation::RowWiseSharded { .. }
            )
        });
        let host_tables = count(&|a: &TableAssignment| a.location == TableLocation::HostMemory);
        let remote_table_count =
            count(&|a: &TableAssignment| matches!(a.location, TableLocation::Remote(_)));

        // Per-owner gather shares for distributed GPU tables.
        let mut owner_gather = vec![0u64; g_count];
        for a in self.placement.assignments() {
            match a.location {
                TableLocation::Gpu(g) => owner_gather[g] += a.gather_bytes_per_example,
                TableLocation::RowWiseSharded { num_gpus } => {
                    let share = a.gather_bytes_per_example / num_gpus as u64;
                    for og in owner_gather.iter_mut().take(num_gpus) {
                        *og += share;
                    }
                }
                _ => {}
            }
        }

        // ---- Iterations ---------------------------------------------------
        // Tasks of different iterations share resources but have no data
        // dependencies: the DES yields the steady-state overlap.
        let example_bytes = self.config.example_bytes();
        for _iteration in 0..iterations {
            let t_read = graph.add_task_in(
                TaskCategory::ReaderStall,
                "read_batch",
                nic.transfer_time(Bytes::new(big_b * example_bytes), 1),
                Some(nic_res),
                &[],
            );
            let t_stage_in = graph.add_task_in(
                TaskCategory::HostStaging,
                "stage_input",
                costs.host_staging(big_b * example_bytes, &host_dev),
                Some(host_res),
                &[t_read],
            );
            let t_h2d: Vec<TaskId> = (0..g_count)
                .map(|g| {
                    graph.add_task_in(
                        TaskCategory::PcieTransfer,
                        format!("h2d_input{g}"),
                        pcie.transfer_time(Bytes::new(small_b * example_bytes), 1),
                        Some(pcie_res[g]),
                        &[t_stage_in],
                    )
                })
                .collect();

            // ---- Dense forward ----------------------------------------------
            let t_bottom: Vec<TaskId> = (0..g_count)
                .map(|g| {
                    graph.add_task_in(
                        TaskCategory::MlpCompute,
                        format!("bottom_mlp{g}"),
                        costs.dense_time_on(&costs.bottom_forward(small_b), &gpu_devs[g]),
                        Some(gpu_res[g]),
                        &[t_h2d[g]],
                    )
                })
                .collect();

            // ---- Embedding forward ------------------------------------------
            // Collect, per consumer GPU, the tasks that must finish before its
            // pooled embeddings are resident.
            let mut emb_ready: Vec<Vec<TaskId>> = vec![Vec::new(); g_count];

            if gather_gpu > 0 {
                if replicated {
                    for g in 0..g_count {
                        let t = graph.add_task_in(
                            TaskCategory::EmbeddingLookup,
                            format!("local_gather{g}"),
                            costs
                                .embedding_gather(small_b * gather_gpu, avg_gpu_table, gpu_tables)
                                .time_on(&gpu_devs[g]),
                            Some(gpu_res[g]),
                            &[t_h2d[g]],
                        );
                        emb_ready[g].push(t);
                    }
                } else {
                    // Owners gather the full batch for their tables.
                    let gathers: Vec<TaskId> = (0..g_count)
                        .map(|o| {
                            graph.add_task_in(
                                TaskCategory::EmbeddingLookup,
                                format!("owner_gather{o}"),
                                costs
                                    .embedding_gather(
                                        big_b * owner_gather[o],
                                        avg_gpu_table,
                                        gpu_tables.div_ceil(g_count as u64),
                                    )
                                    .time_on(&gpu_devs[o]),
                                Some(gpu_res[o]),
                                &[t_h2d[o]],
                            )
                        })
                        .collect();
                    // All-to-all of pooled vectors: one collective per
                    // distributed table.
                    let distributed_tables = self
                        .placement
                        .assignments()
                        .iter()
                        .filter(|a| {
                            matches!(
                                a.location,
                                TableLocation::Gpu(_) | TableLocation::RowWiseSharded { .. }
                            )
                        })
                        .count() as u64;
                    let a2a = self.add_exchange(
                        &mut graph,
                        "a2a_fwd",
                        &gathers,
                        big_b.saturating_sub(small_b) * pooled_gpu / g_count as u64,
                        small_b * pooled_gpu,
                        distributed_tables,
                        nvlink_res,
                        &pcie_res,
                        host_res,
                        &costs,
                    );
                    for ready in &mut emb_ready {
                        ready.push(a2a);
                    }
                }
            }

            if gather_host > 0 {
                let t_hgather = graph.add_task_in(
                    TaskCategory::EmbeddingLookup,
                    "host_gather",
                    costs
                        .embedding_gather(big_b * gather_host, avg_host_table, host_tables)
                        .time_on(&host_dev),
                    Some(host_res),
                    &[t_stage_in],
                );
                for g in 0..g_count {
                    let t = graph.add_task_in(
                        TaskCategory::PcieTransfer,
                        format!("h2d_pooled{g}"),
                        pcie.transfer_time(Bytes::new(small_b * pooled_host), 1),
                        Some(pcie_res[g]),
                        &[t_hgather],
                    );
                    emb_ready[g].push(t);
                }
            }

            if gather_remote > 0 && remote_servers > 0 {
                // Per-server gather shares.
                let mut server_gather = vec![0u64; remote_servers];
                for a in self.placement.assignments() {
                    if let TableLocation::Remote(s) = a.location {
                        server_gather[s] += a.gather_bytes_per_example;
                    }
                }
                let ps_dev = recsim_hw::device::skylake_dual_socket();
                let ps_tasks: Vec<TaskId> = (0..remote_servers)
                    .map(|k| {
                        graph.add_task_in(
                            TaskCategory::EmbeddingLookup,
                            format!("ps_gather{k}"),
                            costs
                                .embedding_gather(
                                    big_b * server_gather[k],
                                    avg_remote_table,
                                    remote_table_count.div_ceil(remote_servers as u64),
                                )
                                .time_on(&ps_dev)
                                + self.knobs.rpc_overhead,
                            Some(ps_res[k]),
                            &[t_read],
                        )
                    })
                    .collect();
                let remote_tables = self
                    .placement
                    .assignments()
                    .iter()
                    .filter(|a| matches!(a.location, TableLocation::Remote(_)))
                    .count() as u64;
                let t_net = graph.add_task_in(
                    TaskCategory::NicTransfer,
                    "net_pooled",
                    nic.transfer_time(
                        Bytes::new(big_b * pooled_remote),
                        remote_tables * remote_servers as u64,
                    ),
                    Some(nic_res),
                    &ps_tasks,
                );
                // The GPU server's CPUs unpack every response and repack
                // per-GPU buffers — one RPC's worth of software per table per
                // server plus the staging copy ("this setup also creates
                // additional work for the CPUs on the GPU server").
                let t_rstage = graph.add_task_in(
                    TaskCategory::HostStaging,
                    "stage_pooled",
                    costs.host_staging(big_b * pooled_remote, &host_dev)
                        + self.knobs.rpc_overhead * (remote_tables * remote_servers as u64) as f64,
                    Some(host_res),
                    &[t_net],
                );
                for g in 0..g_count {
                    let t = graph.add_task_in(
                        TaskCategory::PcieTransfer,
                        format!("h2d_remote_pooled{g}"),
                        pcie.transfer_time(Bytes::new(small_b * pooled_remote), 1),
                        Some(pcie_res[g]),
                        &[t_rstage],
                    );
                    emb_ready[g].push(t);
                }
            }

            // ---- Interaction, top MLP, dense backward -----------------------
            let mut t_bwd = Vec::with_capacity(g_count);
            for g in 0..g_count {
                let mut deps = vec![t_bottom[g]];
                deps.extend_from_slice(&emb_ready[g]);
                let t_interact = graph.add_task_in(
                    TaskCategory::MlpCompute,
                    format!("interaction{g}"),
                    costs.dense_time_on(&costs.interaction_forward(small_b), &gpu_devs[g]),
                    Some(gpu_res[g]),
                    &deps,
                );
                let t_top = graph.add_task_in(
                    TaskCategory::MlpCompute,
                    format!("top_mlp{g}"),
                    costs.dense_time_on(&costs.top_forward(small_b), &gpu_devs[g]),
                    Some(gpu_res[g]),
                    &[t_interact],
                );
                t_bwd.push(graph.add_task_in(
                    TaskCategory::MlpCompute,
                    format!("dense_backward{g}"),
                    costs.dense_time_on(&costs.dense_backward(small_b), &gpu_devs[g]),
                    Some(gpu_res[g]),
                    &[t_top],
                ));
            }

            // ---- Embedding backward ------------------------------------------
            let mut tail_tasks: Vec<TaskId> = Vec::new();

            if gather_gpu > 0 {
                if replicated {
                    // Replicas must agree: exchange the pooled-embedding
                    // gradients (one collective per table, like the dense
                    // all-reduce), then every GPU applies the FULL batch's
                    // updates to its own copy.
                    let grad_exchange = self.add_exchange(
                        &mut graph,
                        "replica_grad_allreduce",
                        &t_bwd,
                        big_b.saturating_sub(small_b) * pooled_gpu / g_count as u64,
                        small_b * pooled_gpu,
                        gpu_tables,
                        nvlink_res,
                        &pcie_res,
                        host_res,
                        &costs,
                    );
                    for g in 0..g_count {
                        tail_tasks.push(
                            graph.add_task_in(
                                TaskCategory::EmbeddingUpdate,
                                format!("replica_scatter{g}"),
                                costs
                                    .embedding_scatter(
                                        big_b * gather_gpu,
                                        avg_gpu_table,
                                        gpu_tables,
                                        recsim_hw::DeviceKind::Gpu,
                                    )
                                    .time_on(&gpu_devs[g]),
                                Some(gpu_res[g]),
                                &[grad_exchange],
                            ),
                        );
                    }
                } else {
                    let distributed_tables = self
                        .placement
                        .assignments()
                        .iter()
                        .filter(|a| {
                            matches!(
                                a.location,
                                TableLocation::Gpu(_) | TableLocation::RowWiseSharded { .. }
                            )
                        })
                        .count() as u64;
                    let a2a_bwd = self.add_exchange(
                        &mut graph,
                        "a2a_bwd",
                        &t_bwd,
                        big_b.saturating_sub(small_b) * pooled_gpu / g_count as u64,
                        small_b * pooled_gpu,
                        distributed_tables,
                        nvlink_res,
                        &pcie_res,
                        host_res,
                        &costs,
                    );
                    for o in 0..g_count {
                        tail_tasks.push(
                            graph.add_task_in(
                                TaskCategory::EmbeddingUpdate,
                                format!("owner_scatter{o}"),
                                costs
                                    .embedding_scatter(
                                        big_b * owner_gather[o],
                                        avg_gpu_table,
                                        gpu_tables.div_ceil(g_count as u64),
                                        recsim_hw::DeviceKind::Gpu,
                                    )
                                    .time_on(&gpu_devs[o]),
                                Some(gpu_res[o]),
                                &[a2a_bwd],
                            ),
                        );
                    }
                }
            }

            if gather_host > 0 {
                let ups: Vec<TaskId> = (0..g_count)
                    .map(|g| {
                        graph.add_task_in(
                            TaskCategory::PcieTransfer,
                            format!("d2h_emb_grad{g}"),
                            pcie.transfer_time(Bytes::new(small_b * pooled_host), 1),
                            Some(pcie_res[g]),
                            &[t_bwd[g]],
                        )
                    })
                    .collect();
                tail_tasks.push(
                    graph.add_task_in(
                        TaskCategory::EmbeddingUpdate,
                        "host_scatter",
                        costs
                            .embedding_scatter(
                                big_b * gather_host,
                                avg_host_table,
                                host_tables,
                                recsim_hw::DeviceKind::Cpu,
                            )
                            .time_on(&host_dev),
                        Some(host_res),
                        &ups,
                    ),
                );
            }

            if gather_remote > 0 && remote_servers > 0 {
                let mut server_gather = vec![0u64; remote_servers];
                for a in self.placement.assignments() {
                    if let TableLocation::Remote(s) = a.location {
                        server_gather[s] += a.gather_bytes_per_example;
                    }
                }
                let remote_tables = self
                    .placement
                    .assignments()
                    .iter()
                    .filter(|a| matches!(a.location, TableLocation::Remote(_)))
                    .count() as u64;
                // Repack gradient requests on the host, then push them out.
                let t_bstage = graph.add_task_in(
                    TaskCategory::HostStaging,
                    "stage_emb_grads",
                    costs.host_staging(big_b * pooled_remote, &host_dev)
                        + self.knobs.rpc_overhead * (remote_tables * remote_servers as u64) as f64,
                    Some(host_res),
                    &t_bwd,
                );
                let t_up = graph.add_task_in(
                    TaskCategory::NicTransfer,
                    "net_emb_grads",
                    nic.transfer_time(
                        Bytes::new(big_b * pooled_remote),
                        remote_tables * remote_servers as u64,
                    ),
                    Some(nic_res),
                    &[t_bstage],
                );
                let ps_dev = recsim_hw::device::skylake_dual_socket();
                for k in 0..remote_servers {
                    tail_tasks.push(
                        graph.add_task_in(
                            TaskCategory::PsUpdate,
                            format!("ps_scatter{k}"),
                            costs
                                .embedding_scatter(
                                    big_b * server_gather[k],
                                    avg_remote_table,
                                    remote_table_count.div_ceil(remote_servers as u64),
                                    recsim_hw::DeviceKind::Cpu,
                                )
                                .time_on(&ps_dev)
                                + self.knobs.rpc_overhead,
                            Some(ps_res[k]),
                            &[t_up],
                        ),
                    );
                }
            }

            // ---- Dense all-reduce + optimizer --------------------------------
            let mlp_bytes = self.config.mlp_parameter_bytes();
            let opt_deps: Vec<TaskId> = if g_count > 1 {
                let ring_bytes = 2 * mlp_bytes * (g_count as u64 - 1) / g_count as u64;
                let mlp_layers =
                    (self.config.bottom_mlp().len() + self.config.top_mlp().len() + 1) as u64;
                let ar = self.add_exchange(
                    &mut graph,
                    "allreduce_dense",
                    &t_bwd,
                    ring_bytes,
                    ring_bytes,
                    mlp_layers,
                    nvlink_res,
                    &pcie_res,
                    host_res,
                    &costs,
                );
                vec![ar]
            } else {
                t_bwd.clone()
            };
            for g in 0..g_count {
                let t = graph.add_task_in(
                    TaskCategory::Optimizer,
                    format!("dense_optimizer{g}"),
                    costs.dense_optimizer().time_on(&gpu_devs[g]),
                    Some(gpu_res[g]),
                    &opt_deps,
                );
                tail_tasks.push(t);
            }

            graph.add_barrier("iteration_done", &tail_tasks);
        }
        graph
    }

    fn report(&self, iteration_time: recsim_hw::units::Duration, schedule: &Schedule) -> SimReport {
        let g_count = self.platform.gpus().len();
        let small_b = (self.batch / g_count as u64).max(1);
        let remote_servers = self.placement.remote_loads().len();
        let utilizations = schedule.utilizations();
        let platform_util: Vec<f64> = utilizations
            .iter()
            .filter(|(n, _)| !n.starts_with("sparse_ps"))
            .map(|(_, u)| *u)
            .collect();
        let avg_util = platform_util.iter().sum::<f64>() / platform_util.len().max(1) as f64;
        let mut power = self.platform.power().draw(avg_util);
        if remote_servers > 0 {
            let ps_util: f64 = utilizations
                .iter()
                .filter(|(n, _)| n.starts_with("sparse_ps"))
                .map(|(_, u)| *u)
                .sum::<f64>()
                / remote_servers as f64;
            power = power + PowerModel::cpu_server().draw(ps_util) * remote_servers as f64;
        }
        // Attribute the reported (steady-state) iteration time across the
        // schedule's critical-path categories: each category keeps its share
        // of the makespan, scaled so the breakdown sums to iteration_time.
        let makespan = schedule.makespan().as_secs();
        let scale = if makespan > 0.0 {
            iteration_time.as_secs() / makespan
        } else {
            0.0
        };
        let attribution: Vec<(String, recsim_hw::units::Duration)> = schedule
            .attribution()
            .into_iter()
            .map(|(label, d)| {
                (
                    label,
                    recsim_hw::units::Duration::from_secs(d.as_secs() * scale),
                )
            })
            .collect();
        let setup = format!(
            "{} / {} / batch {}",
            self.platform.name(),
            self.placement.strategy(),
            self.batch
        );
        // Construction validated batch > 0 and every task cost is positive,
        // so the Err arm is unreachable in practice; keep run() total.
        match SimReport::new(
            setup.clone(),
            iteration_time,
            (small_b * g_count as u64) as f64,
            utilizations,
            schedule.bottleneck(),
            power,
        ) {
            Ok(report) => report.with_attribution(attribution),
            Err(_) => SimReport::degenerate(setup),
        }
    }

    /// Adds a collective exchange among GPUs: over NVLink when present,
    /// otherwise staged through host memory via PCIe. Returns the barrier
    /// task that completes the exchange.
    #[allow(clippy::too_many_arguments)]
    fn add_exchange(
        &self,
        graph: &mut TaskGraph,
        name: &str,
        deps: &[TaskId],
        egress_bytes_per_gpu: u64,
        ingress_bytes_per_gpu: u64,
        rounds: u64,
        nvlink: Option<ResourceId>,
        pcie_res: &[ResourceId],
        host_res: ResourceId,
        costs: &IterationCosts<'_>,
    ) -> TaskId {
        let g_count = self.platform.gpus().len();
        let rounds = rounds.max(1);
        // Frameworks issue one collective per table (or per layer bucket);
        // each pays a rendezvous barrier and per-peer message latency.
        let barrier_cost = self.knobs.collective_barrier * rounds as f64;
        match nvlink {
            Some(nv) => {
                // The nvlink resource only exists when the link does; the
                // fallback keeps this total without a panicking call.
                let link = self.nvlink.unwrap_or(self.pcie);
                let tasks: Vec<TaskId> = (0..g_count)
                    .map(|g| {
                        graph.add_task_in(
                            TaskCategory::AllToAll,
                            format!("{name}_gpu{g}"),
                            link.transfer_time(
                                Bytes::new(egress_bytes_per_gpu.max(1)),
                                rounds * (g_count as u64 - 1).max(1),
                            ) + barrier_cost,
                            Some(nv),
                            deps,
                        )
                    })
                    .collect();
                graph.add_barrier(format!("{name}_done"), &tasks)
            }
            None => {
                // No direct GPU-GPU path: D2H per GPU, host staging of the
                // full volume, then H2D per GPU. This is the prototype-Zion
                // relay the paper calls out in Section VI.B.
                let pcie = self.pcie;
                let hop = self.knobs.staged_hop_latency * rounds as f64;
                let ups: Vec<TaskId> = (0..g_count)
                    .map(|g| {
                        graph.add_task_in(
                            TaskCategory::PcieTransfer,
                            format!("{name}_d2h{g}"),
                            pcie.transfer_time(Bytes::new(egress_bytes_per_gpu.max(1)), rounds)
                                + hop,
                            Some(pcie_res[g]),
                            deps,
                        )
                    })
                    .collect();
                let stage = graph.add_task_in(
                    TaskCategory::HostStaging,
                    format!("{name}_host_stage"),
                    costs.host_staging(egress_bytes_per_gpu * g_count as u64, self.platform.host())
                        + barrier_cost
                        + self.knobs.rpc_overhead * rounds as f64,
                    Some(host_res),
                    &ups,
                );
                let downs: Vec<TaskId> = (0..g_count)
                    .map(|g| {
                        graph.add_task_in(
                            TaskCategory::PcieTransfer,
                            format!("{name}_h2d{g}"),
                            pcie.transfer_time(Bytes::new(ingress_bytes_per_gpu.max(1)), rounds)
                                + hop,
                            Some(pcie_res[g]),
                            &[stage],
                        )
                    })
                    .collect();
                graph.add_barrier(format!("{name}_done"), &downs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_placement::PartitionScheme;

    fn test_config() -> ModelConfig {
        ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512])
    }

    fn big_basin() -> Platform {
        Platform::big_basin(Bytes::from_gib(32))
    }

    fn run(strategy: PlacementStrategy, batch: u64) -> SimReport {
        GpuTrainingSim::new(&test_config(), &big_basin(), strategy, batch)
            .expect("placement fits")
            .run()
    }

    #[test]
    fn produces_positive_throughput() {
        let r = run(
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        );
        assert!(r.throughput() > 0.0);
        assert!(r.iteration_time().as_secs() > 0.0);
        assert!(r.bottleneck().is_some());
    }

    #[test]
    fn larger_batch_increases_gpu_throughput() {
        // Figure 11's GPU panel: throughput rises with batch size until
        // saturation.
        let strategies = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let small = run(strategies, 128);
        let large = run(strategies, 4096);
        assert!(
            large.throughput() > small.throughput() * 2.0,
            "batch scaling: {} vs {}",
            small.throughput(),
            large.throughput()
        );
    }

    #[test]
    fn gpu_memory_beats_remote_for_small_models() {
        // Figure 14's left side: when tables fit HBM, local placement wins.
        let local = run(
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        );
        let remote = run(PlacementStrategy::RemoteCpu { servers: 8 }, 1600);
        assert!(
            local.throughput() > remote.throughput(),
            "local {} vs remote {}",
            local.throughput(),
            remote.throughput()
        );
    }

    #[test]
    fn zion_system_memory_beats_big_basin_system_memory() {
        // Figure 14: system-memory placement is fast on Zion (1 TB/s, 8
        // sockets) and slow on Big Basin (2 sockets). Use production-scale
        // tables (DRAM-resident, like M2's multi-GB tables).
        let cfg = ModelConfig::test_suite(256, 16, 20_000_000, &[512, 512, 512]);
        let bb = GpuTrainingSim::new(&cfg, &big_basin(), PlacementStrategy::SystemMemory, 1600)
            .unwrap()
            .run();
        let zion = GpuTrainingSim::new(
            &cfg,
            &Platform::zion_prototype(),
            PlacementStrategy::SystemMemory,
            1600,
        )
        .unwrap()
        .run();
        assert!(
            zion.throughput() > bb.throughput(),
            "zion {} vs bb {}",
            zion.throughput(),
            bb.throughput()
        );
    }

    #[test]
    fn zion_gpu_placement_suffers_without_interconnect() {
        // Figure 14: GPU-memory placement is best on Big Basin but poor on
        // prototype Zion (no GPU-GPU link). Use a model big enough that
        // tables cannot be replicated (forces the exchange).
        let cfg = ModelConfig::test_suite(256, 16, 30_000_000, &[512, 512, 512]);
        let bb = GpuTrainingSim::new(
            &cfg,
            &big_basin(),
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        )
        .unwrap()
        .run();
        let zion = GpuTrainingSim::new(
            &cfg,
            &Platform::zion_prototype(),
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        )
        .unwrap()
        .run();
        assert!(
            bb.throughput() > zion.throughput(),
            "bb {} vs zion {}",
            bb.throughput(),
            zion.throughput()
        );
    }

    #[test]
    fn replicated_placement_trades_comm_for_duplicate_updates() {
        let sim = GpuTrainingSim::new(
            &test_config(),
            &big_basin(),
            PlacementStrategy::GpuMemory(PartitionScheme::Replicated),
            1600,
        )
        .unwrap();
        assert!(sim
            .placement()
            .assignments()
            .iter()
            .all(|a| a.location == TableLocation::Replicated));
        let replicated = sim.run();
        let distributed = GpuTrainingSim::new(
            &test_config(),
            &big_basin(),
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        )
        .unwrap()
        .run();
        // Both work; neither is free: replication duplicates the update
        // traffic on every GPU.
        assert!(replicated.throughput() > 0.0);
        assert!(distributed.throughput() > 0.0);
    }

    #[test]
    fn remote_placement_uses_ps_and_nic() {
        let r = run(PlacementStrategy::RemoteCpu { servers: 4 }, 1600);
        assert!(r.utilization_of("sparse_ps0").unwrap() > 0.0);
        assert!(r.utilization_of("nic").unwrap() > 0.0);
        assert!(
            r.power().as_watts()
                > Platform::big_basin(Bytes::from_gib(32))
                    .power()
                    .draw(1.0)
                    .as_watts()
                    * 0.3,
            "remote setup counts PS power"
        );
    }

    #[test]
    fn dgx_a100_outpaces_big_basin() {
        // The related-work generation gap: DGX-A100 trains the same model
        // meaningfully faster than Big Basin.
        let cfg = test_config();
        let strategy = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let bb = GpuTrainingSim::new(&cfg, &big_basin(), strategy, 1600)
            .unwrap()
            .run();
        let dgx = GpuTrainingSim::new(&cfg, &Platform::dgx_a100(), strategy, 1600)
            .unwrap()
            .run();
        assert!(
            dgx.throughput() > bb.throughput() * 1.1,
            "generation gap: {} vs {}",
            bb.throughput(),
            dgx.throughput()
        );
    }

    #[test]
    fn host_cache_recovers_system_memory_throughput() {
        // The caching opportunity: a hot-row cache in HBM serving most
        // lookups pulls system-memory placement toward GPU-memory speed.
        let cfg = ModelConfig::test_suite(256, 16, 5_000_000, &[512, 512, 512]);
        let bb = big_basin();
        let uncached = GpuTrainingSim::new(&cfg, &bb, PlacementStrategy::SystemMemory, 1600)
            .unwrap()
            .run();
        let cached = GpuTrainingSim::new(&cfg, &bb, PlacementStrategy::SystemMemory, 1600)
            .unwrap()
            .with_host_cache_hit_rate(0.9)
            .expect("valid hit rate")
            .run();
        assert!(
            cached.throughput() > uncached.throughput(),
            "cache must help: {} vs {}",
            cached.throughput(),
            uncached.throughput()
        );
    }

    #[test]
    fn cache_hit_rate_validated() {
        let cfg = test_config();
        let err = GpuTrainingSim::new(&cfg, &big_basin(), PlacementStrategy::SystemMemory, 256)
            .unwrap()
            .with_host_cache_hit_rate(1.5)
            .expect_err("hit rate above 1 rejected");
        match err {
            SimError::Invalid(v) => {
                assert!(v.has_code(Code::InvalidClusterConfig));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn zero_batch_is_rejected_with_rv029() {
        let err = GpuTrainingSim::new(
            &test_config(),
            &big_basin(),
            PlacementStrategy::SystemMemory,
            0,
        )
        .expect_err("zero batch rejected");
        match err {
            SimError::Invalid(v) => {
                assert!(v.has_code(Code::InvalidClusterConfig));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn bad_knobs_are_rejected_with_rv024() {
        let mut knobs = CostKnobs::default();
        knobs.staging_fraction = -1.0;
        let err = GpuTrainingSim::new(
            &test_config(),
            &big_basin(),
            PlacementStrategy::SystemMemory,
            256,
        )
        .unwrap()
        .with_knobs(knobs)
        .expect_err("negative staging fraction rejected");
        match err {
            SimError::Invalid(v) => {
                assert!(v.has_code(Code::InvalidCostKnob));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn straggler_gpu_slows_the_whole_iteration() {
        // Data-parallel training paces at the slowest worker (the paper's
        // "system or hardware level variability").
        let cfg = test_config();
        let strategy = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let healthy = GpuTrainingSim::new(&cfg, &big_basin(), strategy, 1600)
            .unwrap()
            .run();
        let degraded = GpuTrainingSim::new(
            &cfg,
            &big_basin().with_straggler_gpu(5, 0.4),
            strategy,
            1600,
        )
        .unwrap()
        .run();
        assert!(
            degraded.throughput() < healthy.throughput() * 0.95,
            "one slow GPU drags the fleet: {} vs {}",
            degraded.throughput(),
            healthy.throughput()
        );
    }

    #[test]
    fn perturbed_run_matches_plain_under_identity_and_slows_otherwise() {
        use crate::des::{NoPerturbation, Perturbation};
        use recsim_hw::units::Duration;

        let sim = GpuTrainingSim::new(
            &test_config(),
            &big_basin(),
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        )
        .unwrap();
        let mut scratch = SimScratch::new();
        let plain = sim.run_in(&mut scratch);
        let identity = sim.run_perturbed_in(&mut scratch, &NoPerturbation);
        assert_eq!(plain, identity);

        struct SlowGpu;
        impl Perturbation for SlowGpu {
            fn perturbed_duration(
                &self,
                resource: Option<&str>,
                _category: TaskCategory,
                base: Duration,
            ) -> Duration {
                if resource == Some("gpu2") {
                    base * 4.0
                } else {
                    base
                }
            }
        }
        let degraded = sim.run_perturbed_in(&mut scratch, &SlowGpu);
        assert!(
            degraded.throughput() < plain.throughput(),
            "straggler perturbation must cost throughput: {} vs {}",
            degraded.throughput(),
            plain.throughput()
        );
    }

    #[test]
    fn report_is_deterministic() {
        let a = run(PlacementStrategy::SystemMemory, 800);
        let b = run(PlacementStrategy::SystemMemory, 800);
        assert_eq!(a, b);
    }
}
