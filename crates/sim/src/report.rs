//! Simulation results: throughput, utilization, power, attribution.

use recsim_hw::units::{Duration, Power};
use recsim_verify::{Code, Diagnostic};
use serde::{Deserialize, Serialize};

/// The outcome of simulating one training iteration of a setup.
///
/// Throughput is examples per second; utilizations are per named resource
/// in `[0, 1]`; power is the setup's total draw (all servers involved),
/// which is what divides throughput for the paper's perf-per-watt numbers.
/// The optional `attribution` partitions the iteration time across
/// critical-path task categories (see `recsim-trace`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    setup: String,
    iteration_time: Duration,
    examples_per_iteration: f64,
    utilizations: Vec<(String, f64)>,
    bottleneck: Option<(String, f64)>,
    power: Power,
    /// Critical-path attribution: `(category label, time)` pairs summing to
    /// `iteration_time`. Empty when the simulator did not attach one.
    #[serde(default)]
    attribution: Vec<(String, Duration)>,
}

impl SimReport {
    /// Assembles a report.
    ///
    /// # Errors
    ///
    /// Returns `RV030` if the iteration time is not positive and `RV031`
    /// if the example count is not positive.
    pub fn new(
        setup: impl Into<String>,
        iteration_time: Duration,
        examples_per_iteration: f64,
        utilizations: Vec<(String, f64)>,
        bottleneck: Option<(String, f64)>,
        power: Power,
    ) -> Result<Self, Diagnostic> {
        let setup = setup.into();
        if iteration_time.as_secs().is_nan() || iteration_time.as_secs() <= 0.0 {
            return Err(Diagnostic::error(
                Code::NonPositiveIterationTime,
                format!("SimReport::new({setup})"),
                format!(
                    "iteration time must be positive, got {} s",
                    iteration_time.as_secs()
                ),
            ));
        }
        if examples_per_iteration.is_nan() || examples_per_iteration <= 0.0 {
            return Err(Diagnostic::error(
                Code::NonPositiveExampleCount,
                format!("SimReport::new({setup})"),
                format!("examples per iteration must be positive, got {examples_per_iteration}"),
            ));
        }
        let report = Self {
            setup,
            iteration_time,
            examples_per_iteration,
            utilizations,
            bottleneck,
            power,
            attribution: Vec::new(),
        };
        if recsim_detsan::enabled() {
            recsim_detsan::record("sim/report", report.state_digest());
        }
        Ok(report)
    }

    /// Digest of every reported field, recorded as stage `sim/report` when
    /// the determinism sanitizer is armed. This is the last per-point stage
    /// before driver folds, so a clean `sim/report` stream with a divergent
    /// artifact points the finger at the fold.
    fn state_digest(&self) -> u64 {
        let mut d = recsim_detsan::StateDigest::new();
        d.write_str(&self.setup);
        d.write_f64(self.iteration_time.as_secs());
        d.write_f64(self.examples_per_iteration);
        d.write_usize(self.utilizations.len());
        for (name, u) in &self.utilizations {
            d.write_str(name);
            d.write_f64(*u);
        }
        match &self.bottleneck {
            Some((name, u)) => {
                d.write_bool(true);
                d.write_str(name);
                d.write_f64(*u);
            }
            None => d.write_bool(false),
        }
        d.write_f64(self.power.as_watts());
        d.finish()
    }

    /// Infallible degenerate report (1 µs, 1 example, no resources). The
    /// simulators fall back to this on paths their construction-time
    /// validation makes unreachable, so their `run()` stays total without a
    /// panicking call.
    pub fn degenerate(setup: impl Into<String>) -> Self {
        Self {
            setup: setup.into(),
            iteration_time: Duration::from_secs(1e-6),
            examples_per_iteration: 1.0,
            utilizations: Vec::new(),
            bottleneck: None,
            power: Power::from_watts(1.0),
            attribution: Vec::new(),
        }
    }

    /// Attaches a critical-path attribution breakdown (builder style).
    #[must_use]
    pub fn with_attribution(mut self, attribution: Vec<(String, Duration)>) -> Self {
        self.attribution = attribution;
        self
    }

    /// A human-readable description of the simulated setup.
    pub fn setup(&self) -> &str {
        &self.setup
    }

    /// Wall-clock time of one training iteration.
    pub fn iteration_time(&self) -> Duration {
        self.iteration_time
    }

    /// Examples consumed per iteration (across all data-parallel workers).
    pub fn examples_per_iteration(&self) -> f64 {
        self.examples_per_iteration
    }

    /// Training throughput in examples per second.
    pub fn throughput(&self) -> f64 {
        self.examples_per_iteration / self.iteration_time.as_secs()
    }

    /// Per-resource utilization in `[0, 1]`.
    pub fn utilizations(&self) -> &[(String, f64)] {
        &self.utilizations
    }

    /// Utilization of a resource by name, if present.
    pub fn utilization_of(&self, name: &str) -> Option<f64> {
        self.utilizations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, u)| *u)
    }

    /// Mean utilization over resources whose name passes `keep`, or `None`
    /// when no resource matches. This is what the paper's utilization
    /// distributions (fig. 5) aggregate per resource class.
    pub fn mean_utilization(&self, keep: impl Fn(&str) -> bool) -> Option<f64> {
        let picked: Vec<f64> = self
            .utilizations
            .iter()
            .filter(|(n, _)| keep(n))
            .map(|(_, u)| *u)
            .collect();
        if picked.is_empty() {
            None
        } else {
            Some(picked.iter().sum::<f64>() / picked.len() as f64)
        }
    }

    /// The busiest resource and its utilization.
    pub fn bottleneck(&self) -> Option<(&str, f64)> {
        self.bottleneck.as_ref().map(|(n, u)| (n.as_str(), *u))
    }

    /// Total power draw of every server in the setup.
    pub fn power(&self) -> Power {
        self.power
    }

    /// Examples per joule.
    pub fn perf_per_watt(&self) -> f64 {
        self.throughput() / self.power.as_watts()
    }

    /// Critical-path attribution: `(category label, time)` pairs summing to
    /// [`Self::iteration_time`]. Empty when no attribution was attached.
    pub fn attribution(&self) -> &[(String, Duration)] {
        &self.attribution
    }

    /// Time attributed to one category label, if present.
    pub fn attributed_to(&self, label: &str) -> Option<Duration> {
        self.attribution
            .iter()
            .find(|(n, _)| n == label)
            .map(|(_, d)| *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport::new(
            "test",
            Duration::from_millis(2.0),
            1600.0,
            vec![("gpu".into(), 0.8), ("nic".into(), 0.1)],
            Some(("gpu".into(), 0.8)),
            Power::from_watts(4380.0),
        )
        .expect("valid report")
    }

    #[test]
    fn throughput_is_examples_over_time() {
        let r = report();
        assert!((r.throughput() - 800_000.0).abs() < 1e-6);
    }

    #[test]
    fn perf_per_watt() {
        let r = report();
        assert!((r.perf_per_watt() - 800_000.0 / 4380.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_lookup() {
        let r = report();
        assert_eq!(r.utilization_of("nic"), Some(0.1));
        assert_eq!(r.utilization_of("missing"), None);
        assert_eq!(r.bottleneck(), Some(("gpu", 0.8)));
    }

    #[test]
    fn mean_utilization_filters_by_name() {
        let r = report();
        let gpu = r.mean_utilization(|n| n.contains("gpu")).expect("gpu");
        assert!((gpu - 0.8).abs() < 1e-12);
        let all = r.mean_utilization(|_| true).expect("all");
        assert!((all - 0.45).abs() < 1e-12);
        assert_eq!(r.mean_utilization(|n| n == "missing"), None);
    }

    #[test]
    fn zero_iteration_rejected() {
        let err = SimReport::new(
            "bad",
            Duration::ZERO,
            1.0,
            vec![],
            None,
            Power::from_watts(1.0),
        )
        .expect_err("zero iteration time must be rejected");
        assert_eq!(err.code(), Code::NonPositiveIterationTime);
    }

    #[test]
    fn zero_examples_rejected() {
        let err = SimReport::new(
            "bad",
            Duration::from_millis(1.0),
            0.0,
            vec![],
            None,
            Power::from_watts(1.0),
        )
        .expect_err("zero examples must be rejected");
        assert_eq!(err.code(), Code::NonPositiveExampleCount);
    }

    #[test]
    fn attribution_round_trips() {
        let r = report().with_attribution(vec![
            ("mlp compute".into(), Duration::from_millis(1.5)),
            ("reader stall".into(), Duration::from_millis(0.5)),
        ]);
        assert_eq!(r.attribution().len(), 2);
        let mlp = r.attributed_to("mlp compute").expect("mlp");
        assert!((mlp.as_secs() - 0.0015).abs() < 1e-12);
        assert_eq!(r.attributed_to("nope"), None);
    }
}
