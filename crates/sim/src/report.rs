//! Simulation results: throughput, utilization, power.

use recsim_hw::units::{Duration, Power};
use serde::{Deserialize, Serialize};

/// The outcome of simulating one training iteration of a setup.
///
/// Throughput is examples per second; utilizations are per named resource
/// in `[0, 1]`; power is the setup's total draw (all servers involved),
/// which is what divides throughput for the paper's perf-per-watt numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    setup: String,
    iteration_time: Duration,
    examples_per_iteration: f64,
    utilizations: Vec<(String, f64)>,
    bottleneck: Option<(String, f64)>,
    power: Power,
}

impl SimReport {
    /// Assembles a report.
    ///
    /// # Panics
    ///
    /// Panics if the iteration time or example count is not positive.
    pub fn new(
        setup: impl Into<String>,
        iteration_time: Duration,
        examples_per_iteration: f64,
        utilizations: Vec<(String, f64)>,
        bottleneck: Option<(String, f64)>,
        power: Power,
    ) -> Self {
        assert!(iteration_time.as_secs() > 0.0, "iteration time must be positive");
        assert!(examples_per_iteration > 0.0, "examples must be positive");
        Self {
            setup: setup.into(),
            iteration_time,
            examples_per_iteration,
            utilizations,
            bottleneck,
            power,
        }
    }

    /// A human-readable description of the simulated setup.
    pub fn setup(&self) -> &str {
        &self.setup
    }

    /// Wall-clock time of one training iteration.
    pub fn iteration_time(&self) -> Duration {
        self.iteration_time
    }

    /// Examples consumed per iteration (across all data-parallel workers).
    pub fn examples_per_iteration(&self) -> f64 {
        self.examples_per_iteration
    }

    /// Training throughput in examples per second.
    pub fn throughput(&self) -> f64 {
        self.examples_per_iteration / self.iteration_time.as_secs()
    }

    /// Per-resource utilization in `[0, 1]`.
    pub fn utilizations(&self) -> &[(String, f64)] {
        &self.utilizations
    }

    /// Utilization of a resource by name, if present.
    pub fn utilization_of(&self, name: &str) -> Option<f64> {
        self.utilizations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, u)| *u)
    }

    /// The busiest resource and its utilization.
    pub fn bottleneck(&self) -> Option<(&str, f64)> {
        self.bottleneck.as_ref().map(|(n, u)| (n.as_str(), *u))
    }

    /// Total power draw of every server in the setup.
    pub fn power(&self) -> Power {
        self.power
    }

    /// Examples per joule.
    pub fn perf_per_watt(&self) -> f64 {
        self.throughput() / self.power.as_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport::new(
            "test",
            Duration::from_millis(2.0),
            1600.0,
            vec![("gpu".into(), 0.8), ("nic".into(), 0.1)],
            Some(("gpu".into(), 0.8)),
            Power::from_watts(4380.0),
        )
    }

    #[test]
    fn throughput_is_examples_over_time() {
        let r = report();
        assert!((r.throughput() - 800_000.0).abs() < 1e-6);
    }

    #[test]
    fn perf_per_watt() {
        let r = report();
        assert!((r.perf_per_watt() - 800_000.0 / 4380.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_lookup() {
        let r = report();
        assert_eq!(r.utilization_of("nic"), Some(0.1));
        assert_eq!(r.utilization_of("missing"), None);
        assert_eq!(r.bottleneck(), Some(("gpu", 0.8)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_iteration_rejected() {
        SimReport::new(
            "bad",
            Duration::ZERO,
            1.0,
            vec![],
            None,
            Power::from_watts(1.0),
        );
    }
}
