//! A deterministic discrete-event executor for resource-constrained task
//! graphs.
//!
//! One training iteration compiles into a DAG of tasks (kernels, gathers,
//! link transfers, parameter-server work), each optionally bound to a
//! resource (a GPU, the host CPU complex, a PCIe lane, the NIC). The
//! engine schedules tasks as their dependencies complete and their resources
//! free up, yielding the iteration makespan and per-resource busy time —
//! which is exactly what throughput and utilization figures need.
//!
//! Scheduling is FIFO per resource with deterministic tie-breaking, so a
//! given graph always produces the same schedule.

use recsim_hw::units::Duration;
use recsim_trace::{CriticalPathReport, ScheduledTask, TaskCategory, Trace, TraceRecorder, Tracer};
use recsim_verify::{Code, Diagnostic, Validate, ValidationError};
use std::collections::BinaryHeap;

/// Identifies a resource in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Identifies a task in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

#[derive(Debug, Clone)]
struct Resource {
    name: String,
    capacity: usize,
}

#[derive(Debug, Clone)]
struct Task {
    name: String,
    category: TaskCategory,
    duration: Duration,
    resource: Option<ResourceId>,
    deps: Vec<TaskId>,
}

/// A task graph under construction.
///
/// # Example
///
/// ```
/// use recsim_sim::des::TaskGraph;
/// use recsim_hw::units::Duration;
///
/// let mut g = TaskGraph::new();
/// let gpu = g.add_resource("gpu", 1);
/// let a = g.add_task("kernel_a", Duration::from_millis(1.0), Some(gpu), &[]);
/// let b = g.add_task("kernel_b", Duration::from_millis(2.0), Some(gpu), &[a]);
/// let _ = b;
/// let schedule = g.simulate().expect("valid graph");
/// assert!((schedule.makespan().as_millis() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    resources: Vec<Resource>,
    tasks: Vec<Task>,
    /// Structural problems recorded by the infallible builder methods;
    /// surfaced by [`Validate::validate`] and rejected by [`TaskGraph::simulate`].
    violations: Vec<Diagnostic>,
}

/// The result of simulating a [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct Schedule {
    makespan: Duration,
    start: Vec<Duration>,
    finish: Vec<Duration>,
    busy: Vec<Duration>,
    resource_names: Vec<String>,
    resource_capacity: Vec<usize>,
    task_names: Vec<String>,
    task_category: Vec<TaskCategory>,
    task_resource: Vec<Option<usize>>,
    task_deps: Vec<Vec<usize>>,
}

/// Completion event in the engine's min-heap: (time, seq, task).
#[derive(Debug, PartialEq)]
struct Event(f64, u64, usize);
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap; total_cmp keeps the ordering total
        // even if a task duration degenerates to NaN.
        other
            .0
            .total_cmp(&self.0)
            .then(other.1.cmp(&self.1))
            .then(other.2.cmp(&self.2))
    }
}

/// A deterministic rewrite of task durations applied as a graph executes —
/// the seam `recsim-fault` uses to model stragglers and degraded links
/// without rebuilding the iteration graph.
///
/// The engine calls [`Perturbation::perturbed_duration`] exactly once per
/// task, *before* the event loop starts, so a perturbed duration may depend
/// on the task's resource binding and category but never on simulated time
/// or scheduling order. That restriction is what keeps perturbed runs as
/// deterministic as unperturbed ones: the same graph and perturbation always
/// produce the same schedule, on any thread of any sweep.
pub trait Perturbation {
    /// The effective duration of a task given its resource binding
    /// (`None` for unbound tasks), attribution category, and nominal
    /// duration. Implementations must return a non-negative, finite
    /// duration; returning `base` leaves the task untouched.
    fn perturbed_duration(
        &self,
        resource: Option<&str>,
        category: TaskCategory,
        base: Duration,
    ) -> Duration;
}

/// The identity [`Perturbation`]: every task keeps its nominal duration.
/// [`TaskGraph::simulate_perturbed_in`] with `NoPerturbation` is exactly
/// [`TaskGraph::simulate_in`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPerturbation;

impl Perturbation for NoPerturbation {
    fn perturbed_duration(
        &self,
        _resource: Option<&str>,
        _category: TaskCategory,
        base: Duration,
    ) -> Duration {
        base
    }
}

/// Reusable arena for the engine's per-run state.
///
/// Every [`TaskGraph::execute`] call needs an event heap, per-resource FIFO
/// queues, an indegree vector, a CSR adjacency of dependents and a handful
/// of per-task flag vectors. A sweep simulates thousands of graphs
/// back-to-back, so allocating those afresh per call is pure hot-path
/// waste: [`TaskGraph::simulate_in`] borrows a `SimScratch` instead and
/// only ever grows its buffers. Reuse is purely an allocation optimization
/// — a run never observes a previous run's state (everything is reset on
/// entry), so `simulate()` and `simulate_in()` produce identical schedules.
///
/// A scratch is not shared between threads; in a parallel sweep each worker
/// owns one (e.g. one per `recsim_pool::par_map` item, or one per simulator
/// `run()` call).
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Unsatisfied dependency count per task.
    remaining_deps: Vec<usize>,
    /// CSR row offsets into `dep_targets`: the dependents of task `i` are
    /// `dep_targets[dep_offsets[i]..dep_offsets[i + 1]]`.
    dep_offsets: Vec<usize>,
    /// CSR adjacency: all dependent-task ids, grouped by dependency.
    dep_targets: Vec<usize>,
    /// Fill cursor per task while building the CSR rows.
    dep_cursor: Vec<usize>,
    /// Occupied slots per resource.
    in_use: Vec<usize>,
    /// FIFO wait queue per resource.
    queues: Vec<std::collections::VecDeque<usize>>,
    /// Pending completion events.
    heap: BinaryHeap<Event>,
    /// Whether each task has started / completed.
    started: Vec<bool>,
    done: Vec<bool>,
    /// Effective per-task durations for this run (nominal or perturbed).
    durations: Vec<Duration>,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all state and sizes every buffer for a graph with `n_tasks`
    /// tasks and `n_resources` resources, keeping existing capacity.
    fn reset(&mut self, n_tasks: usize, n_resources: usize) {
        self.remaining_deps.clear();
        self.remaining_deps.resize(n_tasks, 0);
        self.dep_offsets.clear();
        self.dep_offsets.resize(n_tasks + 1, 0);
        self.dep_targets.clear();
        self.dep_cursor.clear();
        self.in_use.clear();
        self.in_use.resize(n_resources, 0);
        if self.queues.len() < n_resources {
            self.queues
                .resize_with(n_resources, std::collections::VecDeque::new);
        }
        for queue in &mut self.queues {
            queue.clear();
        }
        self.heap.clear();
        self.started.clear();
        self.started.resize(n_tasks, false);
        self.done.clear();
        self.done.resize(n_tasks, false);
        self.durations.clear();
    }
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with `capacity` concurrent slots, rejecting a
    /// zero capacity with an [`Code::ZeroCapacityResource`] diagnostic
    /// (RV027) instead of registering anything.
    pub fn try_add_resource(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
    ) -> Result<ResourceId, Diagnostic> {
        let name = name.into();
        if capacity == 0 {
            return Err(Diagnostic::error(
                Code::ZeroCapacityResource,
                format!("TaskGraph.resource({name})"),
                "resource capacity must be positive",
            ));
        }
        self.resources.push(Resource { name, capacity });
        Ok(ResourceId(self.resources.len() - 1))
    }

    /// Registers a resource with `capacity` concurrent slots.
    ///
    /// A zero `capacity` is recorded as a violation (RV027) that makes
    /// [`TaskGraph::simulate`] fail; the resource is still registered (with
    /// a single slot, so later ids stay aligned) and a usable id returned.
    /// Builders that want the error at the call site use
    /// [`TaskGraph::try_add_resource`].
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: usize) -> ResourceId {
        let name = name.into();
        match self.try_add_resource(name.clone(), capacity) {
            Ok(id) => id,
            Err(violation) => {
                self.violations.push(violation);
                self.resources.push(Resource { name, capacity: 1 });
                ResourceId(self.resources.len() - 1)
            }
        }
    }

    /// [`TaskGraph::try_add_task_in`] with [`TaskCategory::Other`] — for
    /// generic graphs built outside the simulators, where attribution does
    /// not apply. Simulator builders use the categorized variant (lint
    /// RV011 enforces this).
    pub fn try_add_task(
        &mut self,
        name: impl Into<String>,
        duration: Duration,
        resource: Option<ResourceId>,
        deps: &[TaskId],
    ) -> Result<TaskId, Diagnostic> {
        self.try_add_task_in(TaskCategory::Other, name, duration, resource, deps)
    }

    /// Adds a task with an attribution category, a fixed duration, an
    /// optional resource binding, and dependencies that must finish before
    /// it starts, rejecting an unknown resource
    /// ([`Code::UnknownTaskResource`], RV025) or a dependency created after
    /// its dependent ([`Code::DependencyCycle`], RV026 — insertion order is
    /// the builder's acyclicity proof) without adding anything.
    pub fn try_add_task_in(
        &mut self,
        category: TaskCategory,
        name: impl Into<String>,
        duration: Duration,
        resource: Option<ResourceId>,
        deps: &[TaskId],
    ) -> Result<TaskId, Diagnostic> {
        let name = name.into();
        if let Some(r) = resource {
            if r.0 >= self.resources.len() {
                return Err(Diagnostic::error(
                    Code::UnknownTaskResource,
                    format!("TaskGraph.task({name})"),
                    format!("bound to unknown resource #{}", r.0),
                ));
            }
        }
        for d in deps {
            if d.0 >= self.tasks.len() {
                return Err(Diagnostic::error(
                    Code::DependencyCycle,
                    format!("TaskGraph.task({name})"),
                    format!(
                        "dependency #{} does not exist yet (dependencies must be \
                         created before dependents)",
                        d.0
                    ),
                ));
            }
        }
        self.tasks.push(Task {
            name,
            category,
            duration,
            resource,
            deps: deps.to_vec(),
        });
        Ok(TaskId(self.tasks.len() - 1))
    }

    /// [`TaskGraph::add_task_in`] with [`TaskCategory::Other`] — for generic
    /// graphs built outside the simulators. Simulator builders use the
    /// categorized variant (lint RV011 enforces this).
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        duration: Duration,
        resource: Option<ResourceId>,
        deps: &[TaskId],
    ) -> TaskId {
        self.add_task_in(TaskCategory::Other, name, duration, resource, deps)
    }

    /// Adds a task with an attribution category, a fixed duration, an
    /// optional resource binding, and dependencies that must finish before
    /// it starts.
    ///
    /// An unknown resource or dependency id is recorded as a violation
    /// (RV025/RV026) that makes [`TaskGraph::simulate`] fail; the task is
    /// still added (with the offending references dropped, so later ids stay
    /// aligned) and a usable id returned. Builders that want the error at
    /// the call site use [`TaskGraph::try_add_task_in`].
    pub fn add_task_in(
        &mut self,
        category: TaskCategory,
        name: impl Into<String>,
        duration: Duration,
        resource: Option<ResourceId>,
        deps: &[TaskId],
    ) -> TaskId {
        let name = name.into();
        match self.try_add_task_in(category, name.clone(), duration, resource, deps) {
            Ok(id) => id,
            Err(violation) => {
                self.violations.push(violation);
                let resource = resource.filter(|r| r.0 < self.resources.len());
                let deps = deps
                    .iter()
                    .copied()
                    .filter(|d| d.0 < self.tasks.len())
                    .collect();
                self.tasks.push(Task {
                    name,
                    category,
                    duration,
                    resource,
                    deps,
                });
                TaskId(self.tasks.len() - 1)
            }
        }
    }

    /// Adds an extra dependency edge between two existing tasks.
    ///
    /// Unlike the deps passed to [`TaskGraph::add_task`] — whose insertion
    /// order proves acyclicity — a late edge can close a cycle. The cycle is
    /// not checked here; [`TaskGraph::simulate`] rejects cyclic graphs with
    /// RV026. An edge referencing a task outside the graph is recorded as a
    /// violation instead of being added.
    pub fn add_dependency(&mut self, task: TaskId, dep: TaskId) {
        if task.0 >= self.tasks.len() || dep.0 >= self.tasks.len() {
            self.violations.push(Diagnostic::error(
                Code::DependencyCycle,
                format!("TaskGraph.edge({} <- {})", task.0, dep.0),
                "dependency edge references a task outside the graph",
            ));
            return;
        }
        self.tasks[task.0].deps.push(dep);
    }

    /// A zero-duration joining task depending on all of `deps` — a barrier.
    /// Attributed to [`TaskCategory::Framework`] (it never carries time).
    pub fn add_barrier(&mut self, name: impl Into<String>, deps: &[TaskId]) -> TaskId {
        self.add_task_in(TaskCategory::Framework, name, Duration::ZERO, None, deps)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Runs the discrete-event simulation and returns the schedule.
    ///
    /// The graph is validated first ([`Validate::check`]): violations
    /// recorded by the builder methods, plus a full Kahn topological pass
    /// that catches cycles closed by [`TaskGraph::add_dependency`]
    /// ([`Code::DependencyCycle`], RV026).
    pub fn simulate(&self) -> Result<Schedule, ValidationError> {
        self.simulate_in(&mut SimScratch::new())
    }

    /// Digest of the graph structure, recorded as stage `sim/taskgraph`
    /// when the determinism sanitizer is armed — a divergence here means
    /// iteration *compilation* (not the event loop) went nondeterministic.
    fn state_digest(&self) -> u64 {
        let mut d = recsim_detsan::StateDigest::new();
        d.write_usize(self.resources.len());
        for r in &self.resources {
            d.write_str(&r.name);
            d.write_usize(r.capacity);
        }
        d.write_usize(self.tasks.len());
        for t in &self.tasks {
            d.write_str(&t.name);
            d.write_str(t.category.label());
            d.write_f64(t.duration.as_secs());
            match t.resource {
                Some(ResourceId(r)) => {
                    d.write_bool(true);
                    d.write_usize(r);
                }
                None => d.write_bool(false),
            }
            d.write_usize(t.deps.len());
            for &TaskId(dep) in &t.deps {
                d.write_usize(dep);
            }
        }
        d.finish()
    }

    /// [`TaskGraph::simulate`] borrowing a caller-owned [`SimScratch`] so
    /// back-to-back simulations reuse the engine's working buffers instead
    /// of reallocating them. Produces the identical schedule.
    pub fn simulate_in(&self, scratch: &mut SimScratch) -> Result<Schedule, ValidationError> {
        self.check()?;
        let armed = recsim_detsan::enabled();
        if armed {
            recsim_detsan::record("sim/taskgraph", self.state_digest());
        }
        let schedule = self.execute_in(scratch);
        if armed {
            recsim_detsan::record("sim/schedule", schedule.state_digest());
        }
        Ok(schedule)
    }

    /// [`TaskGraph::simulate_in`] with every task duration rewritten through
    /// `perturbation` before the event loop runs — the fault-injection entry
    /// point. `NoPerturbation` reproduces [`TaskGraph::simulate_in`] exactly.
    pub fn simulate_perturbed_in(
        &self,
        scratch: &mut SimScratch,
        perturbation: &dyn Perturbation,
    ) -> Result<Schedule, ValidationError> {
        self.check()?;
        let armed = recsim_detsan::enabled();
        if armed {
            recsim_detsan::record("sim/taskgraph", self.state_digest());
        }
        let schedule = self.execute_perturbed_in(scratch, perturbation);
        if armed {
            recsim_detsan::record("sim/schedule", schedule.state_digest());
        }
        Ok(schedule)
    }

    /// [`TaskGraph::simulate`], additionally emitting the finished schedule
    /// into `tracer` (spans per task, per-resource occupancy counters, a
    /// makespan instant). With a disabled tracer this is exactly
    /// [`TaskGraph::simulate`].
    pub fn simulate_traced(&self, tracer: &mut dyn Tracer) -> Result<Schedule, ValidationError> {
        self.simulate_traced_in(&mut SimScratch::new(), tracer)
    }

    /// [`TaskGraph::simulate_traced`] with scratch reuse, for traced sweeps.
    pub fn simulate_traced_in(
        &self,
        scratch: &mut SimScratch,
        tracer: &mut dyn Tracer,
    ) -> Result<Schedule, ValidationError> {
        let schedule = self.simulate_in(scratch)?;
        schedule.emit_into(tracer);
        Ok(schedule)
    }

    /// The discrete-event engine proper. Only called on a validated graph:
    /// every resource binding is in range and the dependency relation is
    /// acyclic, so the event loop completes every task.
    pub(crate) fn execute(&self) -> Schedule {
        self.execute_in(&mut SimScratch::new())
    }

    /// [`TaskGraph::execute`] against a reusable [`SimScratch`]. The scratch
    /// is fully reset before use, so the schedule is identical to a
    /// fresh-allocation run; only `start`/`finish`/`busy` are allocated here
    /// (the returned [`Schedule`] owns them).
    pub(crate) fn execute_in(&self, scratch: &mut SimScratch) -> Schedule {
        self.execute_perturbed_in(scratch, &NoPerturbation)
    }

    /// [`TaskGraph::execute_in`] with per-task durations rewritten through
    /// `perturbation` in one pre-pass (scheduling itself is unchanged, so
    /// determinism is too).
    pub(crate) fn execute_perturbed_in(
        &self,
        scratch: &mut SimScratch,
        perturbation: &dyn Perturbation,
    ) -> Schedule {
        let n = self.tasks.len();
        scratch.reset(n, self.resources.len());
        for t in &self.tasks {
            let resource = t.resource.map(|r| self.resources[r.0].name.as_str());
            scratch
                .durations
                .push(perturbation.perturbed_duration(resource, t.category, t.duration));
        }
        for (i, t) in self.tasks.iter().enumerate() {
            scratch.remaining_deps[i] = t.deps.len();
            for d in &t.deps {
                scratch.dep_offsets[d.0 + 1] += 1;
            }
        }
        for i in 0..n {
            scratch.dep_offsets[i + 1] += scratch.dep_offsets[i];
        }
        // Filling in task-id order keeps each CSR row ascending — the same
        // dependent order the old Vec<Vec<_>> build produced.
        scratch
            .dep_cursor
            .extend_from_slice(&scratch.dep_offsets[..n]);
        scratch.dep_targets.resize(scratch.dep_offsets[n], 0);
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                scratch.dep_targets[scratch.dep_cursor[d.0]] = i;
                scratch.dep_cursor[d.0] += 1;
            }
        }

        let mut start = vec![Duration::ZERO; n];
        let mut finish = vec![Duration::ZERO; n];
        let mut busy = vec![Duration::ZERO; self.resources.len()];

        let mut seq = 0u64;
        let mut now = Duration::ZERO;

        // Local helper invoked whenever a task becomes ready or a resource
        // frees: try to start tasks. The scratch's disjoint fields are
        // borrowed individually so the CSR rows can stay borrowed in the
        // event loop below.
        #[allow(clippy::too_many_arguments)]
        fn try_start(
            task: usize,
            tasks: &[Task],
            durations: &[Duration],
            now: Duration,
            in_use: &mut [usize],
            resources: &[Resource],
            queues: &mut [std::collections::VecDeque<usize>],
            start: &mut [Duration],
            finish: &mut [Duration],
            busy: &mut [Duration],
            started: &mut [bool],
            heap: &mut BinaryHeap<Event>,
            seq: &mut u64,
        ) {
            if started[task] {
                return;
            }
            match tasks[task].resource {
                None => {
                    started[task] = true;
                    start[task] = now;
                    finish[task] = now + durations[task];
                    *seq += 1;
                    heap.push(Event(finish[task].as_secs(), *seq, task));
                }
                Some(r) => {
                    if in_use[r.0] < resources[r.0].capacity {
                        in_use[r.0] += 1;
                        started[task] = true;
                        start[task] = now;
                        finish[task] = now + durations[task];
                        busy[r.0] += durations[task];
                        *seq += 1;
                        heap.push(Event(finish[task].as_secs(), *seq, task));
                    } else {
                        queues[r.0].push_back(task);
                    }
                }
            }
        }

        // Seed with dependency-free tasks, in id order.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if scratch.remaining_deps[i] == 0 {
                try_start(
                    i,
                    &self.tasks,
                    &scratch.durations,
                    now,
                    &mut scratch.in_use,
                    &self.resources,
                    &mut scratch.queues,
                    &mut start,
                    &mut finish,
                    &mut busy,
                    &mut scratch.started,
                    &mut scratch.heap,
                    &mut seq,
                );
            }
        }

        while let Some(Event(t, _, task)) = scratch.heap.pop() {
            now = Duration::from_secs(t);
            if scratch.done[task] {
                continue;
            }
            scratch.done[task] = true;
            // Release the resource and start the next queued task.
            if let Some(r) = self.tasks[task].resource {
                scratch.in_use[r.0] -= 1;
                if let Some(next) = scratch.queues[r.0].pop_front() {
                    try_start(
                        next,
                        &self.tasks,
                        &scratch.durations,
                        now,
                        &mut scratch.in_use,
                        &self.resources,
                        &mut scratch.queues,
                        &mut start,
                        &mut finish,
                        &mut busy,
                        &mut scratch.started,
                        &mut scratch.heap,
                        &mut seq,
                    );
                }
            }
            // Unblock dependents.
            for slot in scratch.dep_offsets[task]..scratch.dep_offsets[task + 1] {
                let dep = scratch.dep_targets[slot];
                scratch.remaining_deps[dep] -= 1;
                if scratch.remaining_deps[dep] == 0 {
                    try_start(
                        dep,
                        &self.tasks,
                        &scratch.durations,
                        now,
                        &mut scratch.in_use,
                        &self.resources,
                        &mut scratch.queues,
                        &mut start,
                        &mut finish,
                        &mut busy,
                        &mut scratch.started,
                        &mut scratch.heap,
                        &mut seq,
                    );
                }
            }
        }

        // Validation guarantees acyclicity, so every task has completed;
        // the fold below would simply ignore unreached (zero-time) tasks if
        // that invariant were ever broken.
        let makespan = finish.iter().copied().fold(Duration::ZERO, Duration::max);
        Schedule {
            makespan,
            start,
            finish,
            busy,
            resource_names: self.resources.iter().map(|r| r.name.clone()).collect(),
            resource_capacity: self.resources.iter().map(|r| r.capacity).collect(),
            task_names: self.tasks.iter().map(|t| t.name.clone()).collect(),
            task_category: self.tasks.iter().map(|t| t.category).collect(),
            task_resource: self.tasks.iter().map(|t| t.resource.map(|r| r.0)).collect(),
            task_deps: self
                .tasks
                .iter()
                .map(|t| t.deps.iter().map(|d| d.0).filter(|&d| d < n).collect())
                .collect(),
        }
    }
}

impl Validate for TaskGraph {
    /// Violations recorded while building (RV025/RV026/RV027) plus a Kahn
    /// topological pass over the final dependency relation — the only way
    /// to catch cycles closed after the fact by
    /// [`TaskGraph::add_dependency`].
    fn validate(&self) -> Vec<Diagnostic> {
        let mut out = self.violations.clone();

        let n = self.tasks.len();
        let mut remaining: Vec<usize> = vec![0; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                if d.0 < n {
                    remaining[i] += 1;
                    dependents[d.0].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut settled = 0usize;
        while let Some(i) = queue.pop() {
            settled += 1;
            for &dep in &dependents[i] {
                remaining[dep] -= 1;
                if remaining[dep] == 0 {
                    queue.push(dep);
                }
            }
        }
        if settled < n {
            let stuck: Vec<&str> = self
                .tasks
                .iter()
                .enumerate()
                .filter(|&(i, _)| remaining[i] > 0)
                .take(4)
                .map(|(_, t)| t.name.as_str())
                .collect();
            out.push(Diagnostic::error(
                Code::DependencyCycle,
                "TaskGraph",
                format!(
                    "{} task(s) are trapped in a dependency cycle (e.g. {})",
                    n - settled,
                    stuck.join(", ")
                ),
            ));
        }
        out
    }
}

impl Schedule {
    /// Total time from first start to last finish.
    pub fn makespan(&self) -> Duration {
        self.makespan
    }

    /// Digest of the full schedule (per-task start/finish, per-resource
    /// busy time), recorded as stage `sim/schedule` when the determinism
    /// sanitizer is armed.
    fn state_digest(&self) -> u64 {
        let mut d = recsim_detsan::StateDigest::new();
        d.write_f64(self.makespan.as_secs());
        for times in [&self.start, &self.finish, &self.busy] {
            d.write_usize(times.len());
            for t in times {
                d.write_f64(t.as_secs());
            }
        }
        d.finish()
    }

    /// When `task` started.
    pub fn start_of(&self, task: TaskId) -> Duration {
        self.start[task.0]
    }

    /// When `task` finished.
    pub fn finish_of(&self, task: TaskId) -> Duration {
        self.finish[task.0]
    }

    /// Busy time accumulated on `resource` (summed over capacity slots).
    pub fn busy_time(&self, resource: ResourceId) -> Duration {
        self.busy[resource.0]
    }

    /// Utilization of `resource` in `[0, 1]`: busy time divided by
    /// `capacity × makespan`. Zero when the makespan is zero.
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        let cap = self.resource_capacity[resource.0] as f64;
        if self.makespan.as_secs() == 0.0 {
            return 0.0;
        }
        (self.busy[resource.0].as_secs() / (self.makespan.as_secs() * cap)).min(1.0)
    }

    /// `(name, utilization)` pairs for every resource.
    pub fn utilizations(&self) -> Vec<(String, f64)> {
        (0..self.resource_names.len())
            .map(|i| {
                (
                    self.resource_names[i].clone(),
                    self.utilization(ResourceId(i)),
                )
            })
            .collect()
    }

    /// The resource with the highest utilization, if any have non-zero busy
    /// time — the bottleneck.
    pub fn bottleneck(&self) -> Option<(String, f64)> {
        self.utilizations()
            .into_iter()
            .filter(|(_, u)| *u > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Name of a task (diagnostics).
    pub fn task_name(&self, task: TaskId) -> &str {
        &self.task_names[task.0]
    }

    /// Attribution category of a task.
    pub fn task_category_of(&self, task: TaskId) -> TaskCategory {
        self.task_category[task.0]
    }

    /// Emits the schedule into a [`Tracer`]: one span per non-zero-duration
    /// task on its resource's track (unbound tasks on `(unbound)`), a
    /// `running:<resource>` occupancy counter sampled at every start/finish
    /// edge, and a `makespan` instant marking the end of the iteration.
    /// A disabled tracer returns immediately.
    pub fn emit_into(&self, tracer: &mut dyn Tracer) {
        if !tracer.enabled() {
            return;
        }
        for t in 0..self.task_names.len() {
            let start_us = self.start[t].as_micros();
            let dur_us = self.finish[t].as_micros() - start_us;
            if dur_us <= 0.0 {
                continue;
            }
            let track = match self.task_resource[t] {
                Some(r) => self.resource_names[r].as_str(),
                None => "(unbound)",
            };
            tracer.span(
                track,
                &self.task_names[t],
                self.task_category[t],
                start_us,
                dur_us,
            );
        }
        for (r, name) in self.resource_names.iter().enumerate() {
            let mut edges: Vec<(f64, f64)> = Vec::new();
            for t in 0..self.task_names.len() {
                if self.task_resource[t] == Some(r) && self.finish[t] > self.start[t] {
                    edges.push((self.start[t].as_micros(), 1.0));
                    edges.push((self.finish[t].as_micros(), -1.0));
                }
            }
            edges.sort_by(|a, b| a.0.total_cmp(&b.0));
            let counter = format!("running:{name}");
            let mut level = 0.0;
            let mut i = 0;
            while i < edges.len() {
                let ts = edges[i].0;
                while i < edges.len() && edges[i].0 == ts {
                    level += edges[i].1;
                    i += 1;
                }
                tracer.counter(&counter, ts, level);
            }
        }
        tracer.instant("(schedule)", "makespan", self.makespan.as_micros());
    }

    /// The schedule as a recorded [`Trace`], ready for the `recsim-trace`
    /// exporters (Chrome trace-event JSON via `recsim_trace::chrome_trace`,
    /// text timeline, summary tables).
    pub fn to_trace(&self) -> Trace {
        let mut recorder = TraceRecorder::new();
        self.emit_into(&mut recorder);
        recorder.finish()
    }

    /// The schedule's tasks in the form the critical-path analysis consumes.
    pub fn scheduled_tasks(&self) -> Vec<ScheduledTask> {
        (0..self.task_names.len())
            .map(|t| ScheduledTask {
                name: self.task_names[t].clone(),
                category: self.task_category[t],
                start: self.start[t].as_secs(),
                finish: self.finish[t].as_secs(),
                resource: self.task_resource[t],
                deps: self.task_deps[t].clone(),
            })
            .collect()
    }

    /// Critical-path attribution: partitions `[0, makespan]` across task
    /// categories by walking the dependency/resource-wait chain backwards
    /// from the last-finishing task, with a top-`top_k` slack report. The
    /// per-category durations sum to the makespan exactly.
    pub fn critical_path(&self, top_k: usize) -> CriticalPathReport {
        recsim_trace::critical_path(&self.scheduled_tasks(), top_k)
    }

    /// The critical-path breakdown as `(category label, time)` pairs — the
    /// shape `SimReport` carries. Durations sum to the makespan.
    pub fn attribution(&self) -> Vec<(String, Duration)> {
        self.critical_path(0)
            .breakdown
            .into_iter()
            .map(|(category, secs)| (category.label().to_string(), Duration::from_secs(secs)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn serial_chain_sums() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.add_task("a", ms(1.0), Some(r), &[]);
        let b = g.add_task("b", ms(2.0), Some(r), &[a]);
        let c = g.add_task("c", ms(3.0), Some(r), &[b]);
        let s = g.simulate().expect("valid graph");
        assert!((s.makespan().as_millis() - 6.0).abs() < 1e-9);
        assert!((s.finish_of(c).as_millis() - 6.0).abs() < 1e-9);
        assert!((s.utilization(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("r1", 1);
        let r2 = g.add_resource("r2", 1);
        g.add_task("a", ms(5.0), Some(r1), &[]);
        g.add_task("b", ms(5.0), Some(r2), &[]);
        let s = g.simulate().expect("valid graph");
        assert!((s.makespan().as_millis() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn resource_contention_serializes() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.add_task("a", ms(5.0), Some(r), &[]);
        g.add_task("b", ms(5.0), Some(r), &[]);
        let s = g.simulate().expect("valid graph");
        assert!((s.makespan().as_millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_two_runs_pairs() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 2);
        for i in 0..4 {
            g.add_task(format!("t{i}"), ms(1.0), Some(r), &[]);
        }
        let s = g.simulate().expect("valid graph");
        assert!((s.makespan().as_millis() - 2.0).abs() < 1e-9);
        assert!((s.utilization(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_gate_start() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("r1", 1);
        let r2 = g.add_resource("r2", 1);
        let a = g.add_task("a", ms(3.0), Some(r1), &[]);
        let b = g.add_task("b", ms(1.0), Some(r2), &[a]);
        let s = g.simulate().expect("valid graph");
        assert!((s.start_of(b).as_millis() - 3.0).abs() < 1e-9);
        assert!((s.makespan().as_millis() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_joins_branches() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("r1", 1);
        let r2 = g.add_resource("r2", 1);
        let a = g.add_task("a", ms(2.0), Some(r1), &[]);
        let b = g.add_task("b", ms(7.0), Some(r2), &[]);
        let j = g.add_barrier("join", &[a, b]);
        let s = g.simulate().expect("valid graph");
        assert!((s.finish_of(j).as_millis() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_order_is_deterministic() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let first = g.add_task("first", ms(1.0), Some(r), &[]);
        let second = g.add_task("second", ms(1.0), Some(r), &[]);
        let s = g.simulate().expect("valid graph");
        assert!(s.finish_of(first).as_secs() < s.finish_of(second).as_secs());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_allocation() {
        // Three differently-shaped graphs simulated back-to-back through one
        // scratch must reproduce the fresh-allocation schedules exactly,
        // including after the scratch has been stretched by a larger graph.
        let mut graphs = Vec::new();
        for shape in 0..3 {
            let mut g = TaskGraph::new();
            let r1 = g.add_resource("r1", 1);
            let r2 = g.add_resource("r2", 2);
            let mut prev = Vec::new();
            for i in 0..(5 + shape * 20) {
                let res = if i % 3 == 0 { Some(r1) } else { Some(r2) };
                let deps: Vec<TaskId> = prev.iter().rev().take(2).copied().collect();
                let t = g.add_task(format!("t{i}"), ms(0.5 + (i % 7) as f64), res, &deps);
                prev.push(t);
            }
            graphs.push(g);
        }
        let mut scratch = SimScratch::new();
        // Interleave orders so reuse crosses both growing and shrinking sizes.
        for &idx in &[0usize, 2, 1, 0, 2] {
            let fresh = graphs[idx].simulate().expect("valid graph");
            let reused = graphs[idx].simulate_in(&mut scratch).expect("valid graph");
            assert_eq!(fresh.makespan().as_secs(), reused.makespan().as_secs());
            for task in 0..graphs[idx].len() {
                let id = TaskId(task);
                assert_eq!(fresh.start_of(id).as_secs(), reused.start_of(id).as_secs());
                assert_eq!(
                    fresh.finish_of(id).as_secs(),
                    reused.finish_of(id).as_secs()
                );
            }
        }
    }

    #[test]
    fn utilization_reflects_idle_time() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("r1", 1);
        let r2 = g.add_resource("r2", 1);
        let a = g.add_task("a", ms(8.0), Some(r1), &[]);
        g.add_task("b", ms(2.0), Some(r2), &[a]);
        let s = g.simulate().expect("valid graph");
        assert!((s.utilization(r1) - 0.8).abs() < 1e-9);
        assert!((s.utilization(r2) - 0.2).abs() < 1e-9);
        let (name, _) = s.bottleneck().expect("has bottleneck");
        assert_eq!(name, "r1");
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = TaskGraph::new();
        let s = g.simulate().expect("valid graph");
        assert_eq!(s.makespan(), Duration::ZERO);
        assert!(s.bottleneck().is_none());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("gpu \"zero\"", 1);
        let a = g.add_task("kernel_a", ms(1.0), Some(r), &[]);
        let b = g.add_task("kernel_b", ms(2.0), Some(r), &[a]);
        let _ = b;
        g.add_task("free_task", ms(0.5), None, &[]);
        g.add_barrier("done", &[a]); // zero-duration: skipped in the trace
        let trace = recsim_trace::chrome_trace(&g.simulate().expect("valid graph").to_trace());
        let parsed: serde_json::Value =
            serde_json::from_str(&trace).expect("valid JSON despite quoted names");
        let events = parsed["traceEvents"].as_array().expect("array");
        let durations: Vec<f64> = events
            .iter()
            .filter(|e| e["ph"] == "X")
            .map(|e| e["dur"].as_f64().expect("dur"))
            .collect();
        assert_eq!(durations.len(), 3, "{trace}");
        assert!(durations.iter().any(|&d| (d - 1000.0).abs() < 1e-6));
        assert!(durations.iter().any(|&d| (d - 2000.0).abs() < 1e-6));
        // Resource + unbound + schedule-marker thread metadata.
        let metas = events.iter().filter(|e| e["ph"] == "M").count();
        assert_eq!(metas, 3, "{trace}");
        // Occupancy counter samples for the one real resource.
        assert!(events.iter().any(|e| e["ph"] == "C"));
        // The makespan instant survives.
        assert!(events
            .iter()
            .any(|e| e["ph"] == "i" && e["name"] == "makespan"));
    }

    #[test]
    fn categories_flow_from_builder_to_schedule() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.add_task_in(
            TaskCategory::EmbeddingLookup,
            "gather",
            ms(1.0),
            Some(r),
            &[],
        );
        let b = g.add_task("anything", ms(1.0), Some(r), &[a]);
        let barrier = g.add_barrier("join", &[b]);
        let s = g.simulate().expect("valid graph");
        assert_eq!(s.task_category_of(a), TaskCategory::EmbeddingLookup);
        assert_eq!(s.task_category_of(b), TaskCategory::Other);
        assert_eq!(s.task_category_of(barrier), TaskCategory::Framework);
    }

    #[test]
    fn attribution_partitions_the_makespan() {
        let mut g = TaskGraph::new();
        let nic = g.add_resource("nic", 1);
        let gpu = g.add_resource("gpu", 1);
        let read = g.add_task_in(TaskCategory::ReaderStall, "read", ms(2.0), Some(nic), &[]);
        let mlp = g.add_task_in(TaskCategory::MlpCompute, "mlp", ms(5.0), Some(gpu), &[read]);
        let opt = g.add_task_in(TaskCategory::Optimizer, "opt", ms(1.0), Some(gpu), &[mlp]);
        let _ = opt;
        let s = g.simulate().expect("valid graph");
        let report = s.critical_path(8);
        assert!((report.makespan - s.makespan().as_secs()).abs() < 1e-12);
        let total: f64 = report.breakdown.iter().map(|(_, t)| t).sum();
        assert!((total - report.makespan).abs() < 1e-12);
        assert!((report.share_of(TaskCategory::MlpCompute) - 0.005).abs() < 1e-12);
        let attribution = s.attribution();
        let attr_total: f64 = attribution.iter().map(|(_, d)| d.as_secs()).sum();
        assert!((attr_total - s.makespan().as_secs()).abs() < 1e-12);
        assert!(attribution.iter().any(|(l, _)| l == "reader stall"));
    }

    #[test]
    fn simulate_traced_records_spans() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.add_task_in(TaskCategory::PsUpdate, "scatter", ms(1.0), Some(r), &[]);
        let mut recorder = TraceRecorder::new();
        g.simulate_traced(&mut recorder).expect("valid graph");
        let trace = recorder.finish();
        assert!(!trace.is_empty());
        let totals = trace.category_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].0, TaskCategory::PsUpdate);
        // A disabled tracer records nothing and changes nothing.
        let mut noop = recsim_trace::NoopTracer;
        let s = g.simulate_traced(&mut noop).expect("valid graph");
        assert!((s.makespan().as_millis() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unbound_tasks_run_immediately() {
        let mut g = TaskGraph::new();
        let a = g.add_task("free", ms(4.0), None, &[]);
        let s = g.simulate().expect("valid graph");
        assert!((s.finish_of(a).as_millis() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_resource_is_rv027() {
        let mut g = TaskGraph::new();
        assert!(g.try_add_resource("broken", 0).is_err());
        let r = g.add_resource("broken", 0); // recorded, id still usable
        g.add_task("t", ms(1.0), Some(r), &[]);
        let err = g.simulate().expect_err("zero capacity rejected");
        assert!(err.has_code(Code::ZeroCapacityResource));
    }

    #[test]
    fn unknown_resource_binding_is_rv025() {
        let mut g = TaskGraph::new();
        g.add_resource("real", 1);
        let phantom = ResourceId(7);
        assert!(g.try_add_task("t", ms(1.0), Some(phantom), &[]).is_err());
        g.add_task("t", ms(1.0), Some(phantom), &[]);
        let err = g.simulate().expect_err("unknown resource rejected");
        assert!(err.has_code(Code::UnknownTaskResource));
    }

    #[test]
    fn forward_dependency_is_rv026() {
        let mut g = TaskGraph::new();
        let future = TaskId(3);
        assert!(g.try_add_task("t", ms(1.0), None, &[future]).is_err());
        g.add_task("t", ms(1.0), None, &[future]);
        let err = g.simulate().expect_err("forward dependency rejected");
        assert!(err.has_code(Code::DependencyCycle));
    }

    #[test]
    fn injected_cycle_is_rv026() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.add_task("a", ms(1.0), Some(r), &[]);
        let b = g.add_task("b", ms(1.0), Some(r), &[a]);
        let c = g.add_task("c", ms(1.0), Some(r), &[b]);
        g.add_dependency(a, c); // closes the a -> b -> c -> a cycle
        let err = g.simulate().expect_err("cycle rejected");
        assert!(err.has_code(Code::DependencyCycle));
        assert!(err.to_string().contains("RV026"), "{err}");
    }

    /// Stretches tasks bound to one named resource by a constant factor.
    struct Stretch<'a>(&'a str, f64);
    impl Perturbation for Stretch<'_> {
        fn perturbed_duration(
            &self,
            resource: Option<&str>,
            _category: TaskCategory,
            base: Duration,
        ) -> Duration {
            if resource == Some(self.0) {
                base * self.1
            } else {
                base
            }
        }
    }

    #[test]
    fn no_perturbation_reproduces_the_plain_schedule() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("r1", 1);
        let r2 = g.add_resource("r2", 2);
        let mut prev = Vec::new();
        for i in 0..20 {
            let res = if i % 3 == 0 { Some(r1) } else { Some(r2) };
            let deps: Vec<TaskId> = prev.iter().rev().take(2).copied().collect();
            prev.push(g.add_task(format!("t{i}"), ms(0.5 + (i % 5) as f64), res, &deps));
        }
        let mut scratch = SimScratch::new();
        let plain = g.simulate().expect("valid graph");
        let identity = g
            .simulate_perturbed_in(&mut scratch, &NoPerturbation)
            .expect("valid graph");
        assert_eq!(plain.makespan().as_secs(), identity.makespan().as_secs());
        for t in 0..g.len() {
            let id = TaskId(t);
            assert_eq!(
                plain.start_of(id).as_secs(),
                identity.start_of(id).as_secs()
            );
            assert_eq!(
                plain.finish_of(id).as_secs(),
                identity.finish_of(id).as_secs()
            );
        }
    }

    #[test]
    fn perturbation_stretches_only_its_resource() {
        let mut g = TaskGraph::new();
        let slow = g.add_resource("gpu0", 1);
        let fast = g.add_resource("gpu1", 1);
        let a = g.add_task("a", ms(2.0), Some(slow), &[]);
        let b = g.add_task("b", ms(2.0), Some(fast), &[]);
        let mut scratch = SimScratch::new();
        let s = g
            .simulate_perturbed_in(&mut scratch, &Stretch("gpu0", 3.0))
            .expect("valid graph");
        assert!((s.finish_of(a).as_millis() - 6.0).abs() < 1e-9);
        assert!((s.finish_of(b).as_millis() - 2.0).abs() < 1e-9);
        assert!((s.makespan().as_millis() - 6.0).abs() < 1e-9);
        // Busy time reflects the stretched duration too.
        assert!((s.busy_time(slow).as_millis() - 6.0).abs() < 1e-9);
        assert!((s.busy_time(fast).as_millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn diamond_dag() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 2);
        let src = g.add_task("src", ms(1.0), Some(r), &[]);
        let left = g.add_task("left", ms(2.0), Some(r), &[src]);
        let right = g.add_task("right", ms(3.0), Some(r), &[src]);
        let sink = g.add_task("sink", ms(1.0), Some(r), &[left, right]);
        let s = g.simulate().expect("valid graph");
        // 1 + max(2,3) + 1 = 5.
        assert!((s.finish_of(sink).as_millis() - 5.0).abs() < 1e-9);
    }
}
