//! Property-based tests for the simulator: schedule invariants and
//! monotonicity of the cost model.

use proptest::prelude::*;
use recsim_data::schema::ModelConfig;
use recsim_hw::units::{Bytes, Duration};
use recsim_hw::Platform;
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::des::TaskGraph;
use recsim_sim::{CostKnobs, CpuClusterSetup, CpuTrainingSim, GpuTrainingSim};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn des_makespan_bounds(
        durations in prop::collection::vec(0.0f64..10.0, 1..30),
        chain in prop::bool::ANY,
    ) {
        // Makespan is at least the longest task and at most the sum.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let mut prev = None;
        for (i, &d) in durations.iter().enumerate() {
            let deps: Vec<_> = match (chain, prev) {
                (true, Some(p)) => vec![p],
                _ => vec![],
            };
            prev = Some(g.add_task(format!("t{i}"), Duration::from_secs(d), Some(r), &deps));
        }
        let s = g.simulate();
        let max = durations.iter().copied().fold(0.0, f64::max);
        let sum: f64 = durations.iter().sum();
        prop_assert!(s.makespan().as_secs() >= max - 1e-9);
        prop_assert!(s.makespan().as_secs() <= sum + 1e-9);
        // Single capacity-1 resource: makespan equals the sum exactly.
        prop_assert!((s.makespan().as_secs() - sum).abs() < 1e-6);
    }

    #[test]
    fn des_capacity_never_hurts(
        durations in prop::collection::vec(0.01f64..5.0, 2..20),
        cap in 1usize..4,
    ) {
        let build = |capacity: usize| {
            let mut g = TaskGraph::new();
            let r = g.add_resource("r", capacity);
            for (i, &d) in durations.iter().enumerate() {
                g.add_task(format!("t{i}"), Duration::from_secs(d), Some(r), &[]);
            }
            g.simulate().makespan().as_secs()
        };
        prop_assert!(build(cap + 1) <= build(cap) + 1e-9);
    }

    #[test]
    fn des_utilization_in_unit_interval(
        durations in prop::collection::vec(0.0f64..3.0, 1..20),
    ) {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a", 1);
        let r2 = g.add_resource("b", 2);
        for (i, &d) in durations.iter().enumerate() {
            let r = if i % 2 == 0 { r1 } else { r2 };
            g.add_task(format!("t{i}"), Duration::from_secs(d), Some(r), &[]);
        }
        let s = g.simulate();
        for (_, u) in s.utilizations() {
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn gpu_iteration_time_monotone_in_batch(
        b1 in 64u64..4096,
        extra in 64u64..4096,
    ) {
        let cfg = ModelConfig::test_suite(64, 8, 100_000, &[256, 256]);
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let strat = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let small = GpuTrainingSim::new(&cfg, &bb, strat, b1).unwrap().run();
        let large = GpuTrainingSim::new(&cfg, &bb, strat, b1 + extra).unwrap().run();
        prop_assert!(
            large.iteration_time().as_secs() >= small.iteration_time().as_secs() - 1e-9,
            "iteration time must grow with batch"
        );
    }

    #[test]
    fn cpu_throughput_positive_for_any_setup(
        trainers in 1u32..8,
        dense_ps in 1u32..4,
        sparse_ps in 1u32..4,
        hogwild in 1u32..6,
        batch in 16u64..1024,
    ) {
        let cfg = ModelConfig::test_suite(32, 4, 10_000, &[64, 64]);
        let r = CpuTrainingSim::new(
            &cfg,
            CpuClusterSetup {
                trainers,
                dense_ps,
                sparse_ps,
                hogwild_threads: hogwild,
                batch_per_thread: batch,
                sync_period: 16,
            },
        )
        .run();
        prop_assert!(r.throughput() > 0.0);
        prop_assert!(r.power().as_watts() > 0.0);
        for (_, u) in r.utilizations() {
            prop_assert!((0.0..=1.0).contains(u));
        }
    }

    #[test]
    fn removing_random_penalty_never_slows_gpu(b in 128u64..4096) {
        let cfg = ModelConfig::test_suite(64, 16, 5_000_000, &[256, 256]);
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let strat = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let base = GpuTrainingSim::new(&cfg, &bb, strat, b).unwrap().run();
        let ablated = GpuTrainingSim::new(
            &cfg,
            &bb.without_random_access_penalty(),
            strat,
            b,
        )
        .unwrap()
        .run();
        prop_assert!(ablated.throughput() >= base.throughput() - 1e-6);
    }

    #[test]
    fn zero_kernel_overhead_never_slows_gpu(b in 64u64..2048) {
        let cfg = ModelConfig::test_suite(64, 16, 100_000, &[256, 256]);
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let strat = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let base = GpuTrainingSim::new(&cfg, &bb, strat, b).unwrap().run();
        let ablated = GpuTrainingSim::new(&cfg, &bb.without_kernel_overhead(), strat, b)
            .unwrap()
            .run();
        prop_assert!(ablated.throughput() >= base.throughput() - 1e-6);
    }

    #[test]
    fn des_schedules_are_valid(
        specs in prop::collection::vec(
            (0.0f64..5.0, 0usize..3, prop::collection::vec(prop::num::usize::ANY, 0..3)),
            1..40,
        ),
    ) {
        // Build a random DAG: task i may depend on earlier tasks only.
        let mut g = TaskGraph::new();
        let resources = [
            g.add_resource("r0", 1),
            g.add_resource("r1", 2),
            g.add_resource("r2", 3),
        ];
        let mut ids = Vec::new();
        let mut meta = Vec::new(); // (duration, resource_idx, deps)
        for (i, (dur, res_idx, raw_deps)) in specs.iter().enumerate() {
            let deps: Vec<_> = raw_deps
                .iter()
                .filter(|_| i > 0)
                .map(|&d| ids[d % i])
                .collect();
            let id = g.add_task(
                format!("t{i}"),
                Duration::from_secs(*dur),
                Some(resources[*res_idx]),
                &deps,
            );
            meta.push((*dur, *res_idx, deps.clone()));
            ids.push(id);
        }
        let s = g.simulate();
        // 1. Durations respected.
        for (i, id) in ids.iter().enumerate() {
            let span = s.finish_of(*id).as_secs() - s.start_of(*id).as_secs();
            prop_assert!((span - meta[i].0).abs() < 1e-9);
        }
        // 2. Dependencies respected: a task starts no earlier than every
        //    dependency's finish.
        for (i, id) in ids.iter().enumerate() {
            for dep in &meta[i].2 {
                prop_assert!(
                    s.start_of(*id).as_secs() >= s.finish_of(*dep).as_secs() - 1e-9
                );
            }
        }
        // 3. Resource capacity respected: at any task start, the number of
        //    overlapping tasks on the same resource stays within capacity.
        let caps = [1usize, 2, 3];
        for (i, id) in ids.iter().enumerate() {
            if meta[i].0 == 0.0 {
                continue;
            }
            let t = s.start_of(*id).as_secs() + 1e-12;
            let overlapping = ids
                .iter()
                .enumerate()
                .filter(|(j, other)| {
                    meta[*j].1 == meta[i].1
                        && s.start_of(**other).as_secs() <= t
                        && s.finish_of(**other).as_secs() > t
                })
                .count();
            prop_assert!(
                overlapping <= caps[meta[i].1],
                "resource r{} over capacity at t={t}: {overlapping}",
                meta[i].1
            );
        }
        // 4. Makespan equals the max finish.
        let max_finish = ids
            .iter()
            .map(|id| s.finish_of(*id).as_secs())
            .fold(0.0, f64::max);
        prop_assert!((s.makespan().as_secs() - max_finish).abs() < 1e-9);
    }

    #[test]
    fn gather_boost_monotone(a in 1u64..1u64 << 36, b in 1u64..1u64 << 36) {
        let k = CostKnobs::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(k.gather_boost(lo) >= k.gather_boost(hi) - 1e-12);
    }
}
