//! Property-based tests for the simulator: schedule invariants and
//! monotonicity of the cost model.

use proptest::prelude::*;
use recsim_data::schema::ModelConfig;
use recsim_hw::units::{Bytes, Duration};
use recsim_hw::Platform;
use recsim_placement::{
    PartitionScheme, Placement, PlacementStrategy, TableAssignment, TableLocation,
};
use recsim_sim::des::TaskGraph;
use recsim_sim::{CostKnobs, CpuClusterSetup, CpuTrainingSim, GpuTrainingSim, TaskCategory};
use recsim_verify::{Code, Validate};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn des_makespan_bounds(
        durations in prop::collection::vec(0.0f64..10.0, 1..30),
        chain in prop::bool::ANY,
    ) {
        // Makespan is at least the longest task and at most the sum.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let mut prev = None;
        for (i, &d) in durations.iter().enumerate() {
            let deps: Vec<_> = match (chain, prev) {
                (true, Some(p)) => vec![p],
                _ => vec![],
            };
            prev = Some(g.add_task(format!("t{i}"), Duration::from_secs(d), Some(r), &deps));
        }
        let s = g.simulate().expect("valid graph");
        let max = durations.iter().copied().fold(0.0, f64::max);
        let sum: f64 = durations.iter().sum();
        prop_assert!(s.makespan().as_secs() >= max - 1e-9);
        prop_assert!(s.makespan().as_secs() <= sum + 1e-9);
        // Single capacity-1 resource: makespan equals the sum exactly.
        prop_assert!((s.makespan().as_secs() - sum).abs() < 1e-6);
    }

    #[test]
    fn des_capacity_never_hurts(
        durations in prop::collection::vec(0.01f64..5.0, 2..20),
        cap in 1usize..4,
    ) {
        let build = |capacity: usize| {
            let mut g = TaskGraph::new();
            let r = g.add_resource("r", capacity);
            for (i, &d) in durations.iter().enumerate() {
                g.add_task(format!("t{i}"), Duration::from_secs(d), Some(r), &[]);
            }
            g.simulate().expect("valid graph").makespan().as_secs()
        };
        prop_assert!(build(cap + 1) <= build(cap) + 1e-9);
    }

    #[test]
    fn des_utilization_in_unit_interval(
        durations in prop::collection::vec(0.0f64..3.0, 1..20),
    ) {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a", 1);
        let r2 = g.add_resource("b", 2);
        for (i, &d) in durations.iter().enumerate() {
            let r = if i % 2 == 0 { r1 } else { r2 };
            g.add_task(format!("t{i}"), Duration::from_secs(d), Some(r), &[]);
        }
        let s = g.simulate().expect("valid graph");
        for (_, u) in s.utilizations() {
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn gpu_iteration_time_monotone_in_batch(
        b1 in 64u64..4096,
        extra in 64u64..4096,
    ) {
        let cfg = ModelConfig::test_suite(64, 8, 100_000, &[256, 256]);
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let strat = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let small = GpuTrainingSim::new(&cfg, &bb, strat, b1).unwrap().run();
        let large = GpuTrainingSim::new(&cfg, &bb, strat, b1 + extra).unwrap().run();
        prop_assert!(
            large.iteration_time().as_secs() >= small.iteration_time().as_secs() - 1e-9,
            "iteration time must grow with batch"
        );
    }

    #[test]
    fn cpu_throughput_positive_for_any_setup(
        trainers in 1u32..8,
        dense_ps in 1u32..4,
        sparse_ps in 1u32..4,
        hogwild in 1u32..6,
        batch in 16u64..1024,
    ) {
        let cfg = ModelConfig::test_suite(32, 4, 10_000, &[64, 64]);
        let r = CpuTrainingSim::new(
            &cfg,
            CpuClusterSetup {
                trainers,
                dense_ps,
                sparse_ps,
                hogwild_threads: hogwild,
                batch_per_thread: batch,
                sync_period: 16,
            },
        )
        .expect("valid setup")
        .run();
        prop_assert!(r.throughput() > 0.0);
        prop_assert!(r.power().as_watts() > 0.0);
        for (_, u) in r.utilizations() {
            prop_assert!((0.0..=1.0).contains(u));
        }
    }

    #[test]
    fn removing_random_penalty_never_slows_gpu(b in 128u64..4096) {
        let cfg = ModelConfig::test_suite(64, 16, 5_000_000, &[256, 256]);
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let strat = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let base = GpuTrainingSim::new(&cfg, &bb, strat, b).unwrap().run();
        let ablated = GpuTrainingSim::new(
            &cfg,
            &bb.without_random_access_penalty(),
            strat,
            b,
        )
        .unwrap()
        .run();
        prop_assert!(ablated.throughput() >= base.throughput() - 1e-6);
    }

    #[test]
    fn zero_kernel_overhead_never_slows_gpu(b in 64u64..2048) {
        let cfg = ModelConfig::test_suite(64, 16, 100_000, &[256, 256]);
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let strat = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
        let base = GpuTrainingSim::new(&cfg, &bb, strat, b).unwrap().run();
        let ablated = GpuTrainingSim::new(&cfg, &bb.without_kernel_overhead(), strat, b)
            .unwrap()
            .run();
        prop_assert!(ablated.throughput() >= base.throughput() - 1e-6);
    }

    #[test]
    fn des_schedules_are_valid(
        specs in prop::collection::vec(
            (0.0f64..5.0, 0usize..3, prop::collection::vec(prop::num::usize::ANY, 0..3)),
            1..40,
        ),
    ) {
        // Build a random DAG: task i may depend on earlier tasks only.
        let mut g = TaskGraph::new();
        let resources = [
            g.add_resource("r0", 1),
            g.add_resource("r1", 2),
            g.add_resource("r2", 3),
        ];
        let mut ids = Vec::new();
        let mut meta = Vec::new(); // (duration, resource_idx, deps)
        for (i, (dur, res_idx, raw_deps)) in specs.iter().enumerate() {
            let deps: Vec<_> = raw_deps
                .iter()
                .filter(|_| i > 0)
                .map(|&d| ids[d % i])
                .collect();
            let id = g.add_task(
                format!("t{i}"),
                Duration::from_secs(*dur),
                Some(resources[*res_idx]),
                &deps,
            );
            meta.push((*dur, *res_idx, deps.clone()));
            ids.push(id);
        }
        let s = g.simulate().expect("valid graph");
        // 1. Durations respected.
        for (i, id) in ids.iter().enumerate() {
            let span = s.finish_of(*id).as_secs() - s.start_of(*id).as_secs();
            prop_assert!((span - meta[i].0).abs() < 1e-9);
        }
        // 2. Dependencies respected: a task starts no earlier than every
        //    dependency's finish.
        for (i, id) in ids.iter().enumerate() {
            for dep in &meta[i].2 {
                prop_assert!(
                    s.start_of(*id).as_secs() >= s.finish_of(*dep).as_secs() - 1e-9
                );
            }
        }
        // 3. Resource capacity respected: at any task start, the number of
        //    overlapping tasks on the same resource stays within capacity.
        let caps = [1usize, 2, 3];
        for (i, id) in ids.iter().enumerate() {
            if meta[i].0 == 0.0 {
                continue;
            }
            let t = s.start_of(*id).as_secs() + 1e-12;
            let overlapping = ids
                .iter()
                .enumerate()
                .filter(|(j, other)| {
                    meta[*j].1 == meta[i].1
                        && s.start_of(**other).as_secs() <= t
                        && s.finish_of(**other).as_secs() > t
                })
                .count();
            prop_assert!(
                overlapping <= caps[meta[i].1],
                "resource r{} over capacity at t={t}: {overlapping}",
                meta[i].1
            );
        }
        // 4. Makespan equals the max finish.
        let max_finish = ids
            .iter()
            .map(|id| s.finish_of(*id).as_secs())
            .fold(0.0, f64::max);
        prop_assert!((s.makespan().as_secs() - max_finish).abs() < 1e-9);
    }

    #[test]
    fn gather_boost_monotone(a in 1u64..1u64 << 36, b in 1u64..1u64 << 36) {
        let k = CostKnobs::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(k.gather_boost(lo) >= k.gather_boost(hi) - 1e-12);
    }

    #[test]
    fn capacity_respecting_plans_validate(
        sizes in prop::collection::vec(1u64..1000, 1..16),
        num_gpus in 1usize..8,
    ) {
        // Round-robin the tables over the GPUs and set every capacity just
        // large enough: Validate must accept the plan.
        let assignments: Vec<TableAssignment> = sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| TableAssignment {
                table: i,
                bytes,
                gather_bytes_per_example: 8,
                pooled_bytes_per_example: 8,
                location: TableLocation::Gpu(i % num_gpus),
            })
            .collect();
        let max_load = (0..num_gpus)
            .map(|g| {
                assignments
                    .iter()
                    .filter(|a| a.location == TableLocation::Gpu(g))
                    .map(|a| a.bytes)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        let plan = Placement::from_parts(
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            assignments,
            num_gpus,
            max_load,
            0,
            0,
        );
        prop_assert!(plan.check().is_ok());
    }

    #[test]
    fn injected_overflow_is_always_rv021(
        sizes in prop::collection::vec(1u64..1000, 1..16),
        shrink in 1u64..50,
    ) {
        // Same round-robin plan, but the GPU capacity is strictly below the
        // heaviest load: Validate must reject with RV021 specifically.
        let num_gpus = 2usize;
        let assignments: Vec<TableAssignment> = sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| TableAssignment {
                table: i,
                bytes,
                gather_bytes_per_example: 8,
                pooled_bytes_per_example: 8,
                location: TableLocation::Gpu(i % num_gpus),
            })
            .collect();
        let max_load = (0..num_gpus)
            .map(|g| {
                assignments
                    .iter()
                    .filter(|a| a.location == TableLocation::Gpu(g))
                    .map(|a| a.bytes)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        prop_assume!(max_load > shrink);
        let plan = Placement::from_parts(
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            assignments,
            num_gpus,
            max_load - shrink,
            0,
            0,
        );
        let err = plan.check().expect_err("over capacity");
        prop_assert!(err.has_code(Code::PlacementOverCapacity));
        prop_assert!(!err.has_code(Code::DanglingResource));
    }

    #[test]
    fn injected_dangling_gpu_is_always_rv022(
        num_gpus in 1usize..6,
        beyond in 0usize..4,
    ) {
        let a = TableAssignment {
            table: 0,
            bytes: 64,
            gather_bytes_per_example: 8,
            pooled_bytes_per_example: 8,
            location: TableLocation::Gpu(num_gpus + beyond),
        };
        let plan = Placement::from_parts(
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            vec![a],
            num_gpus,
            1 << 30,
            0,
            0,
        );
        let err = plan.check().expect_err("references a GPU past the end");
        prop_assert!(err.has_code(Code::DanglingResource));
    }

    #[test]
    fn injected_cycle_is_always_rv026(
        prefix in prop::collection::vec(0.1f64..2.0, 0..6),
        cycle_len in 2usize..5,
    ) {
        // A clean chain of `prefix` tasks followed by a forced cycle: the
        // graph must be rejected with RV026, never executed.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let mut prev = None;
        for (i, &d) in prefix.iter().enumerate() {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add_task(format!("p{i}"), Duration::from_secs(d), Some(r), &deps));
        }
        let mut ring = Vec::new();
        for i in 0..cycle_len {
            let deps: Vec<_> = ring.last().copied().into_iter().collect();
            ring.push(g.add_task(format!("c{i}"), Duration::from_secs(1.0), Some(r), &deps));
        }
        g.add_dependency(ring[0], ring[cycle_len - 1]);
        let err = g.simulate().expect_err("cycle must be rejected");
        prop_assert!(err.has_code(Code::DependencyCycle));
    }

    #[test]
    fn attribution_partitions_makespan(
        specs in prop::collection::vec(
            (0.01f64..5.0, 0usize..3, 0usize..12, prop::collection::vec(prop::num::usize::ANY, 0..3)),
            1..40,
        ),
    ) {
        // Random DAG with random categories: the critical-path breakdown
        // must partition [0, makespan] exactly, using only known labels.
        let mut g = TaskGraph::new();
        let resources = [
            g.add_resource("r0", 1),
            g.add_resource("r1", 2),
            g.add_resource("r2", 3),
        ];
        let mut ids = Vec::new();
        for (i, (dur, res_idx, cat_idx, raw_deps)) in specs.iter().enumerate() {
            let deps: Vec<_> = raw_deps
                .iter()
                .filter(|_| i > 0)
                .map(|&d| ids[d % i])
                .collect();
            ids.push(g.add_task_in(
                TaskCategory::ALL[*cat_idx],
                format!("t{i}"),
                Duration::from_secs(*dur),
                Some(resources[*res_idx]),
                &deps,
            ));
        }
        let s = g.simulate().expect("valid graph");
        let report = s.critical_path(5);
        prop_assert!((report.attributed_total() - report.makespan).abs() <= 1e-9 * report.makespan.max(1.0));
        prop_assert!((report.makespan - s.makespan().as_secs()).abs() < 1e-9);
        for (category, secs) in &report.breakdown {
            prop_assert!(*secs >= 0.0);
            prop_assert!(TaskCategory::from_label(category.label()) == Some(*category));
        }
        // The schedule-level label/duration view agrees with the report.
        let by_label: f64 = s.attribution().iter().map(|(_, d)| d.as_secs()).sum();
        prop_assert!((by_label - report.makespan).abs() <= 1e-9 * report.makespan.max(1.0));
    }

    #[test]
    fn cpu_attribution_sums_to_iteration_time(
        trainers in 1u32..5,
        sparse_ps in 1u32..3,
        batch in 16u64..512,
    ) {
        let cfg = ModelConfig::test_suite(32, 4, 10_000, &[64, 64]);
        let r = CpuTrainingSim::new(
            &cfg,
            CpuClusterSetup {
                trainers,
                dense_ps: 1,
                sparse_ps,
                hogwild_threads: 2,
                batch_per_thread: batch,
                sync_period: 16,
            },
        )
        .expect("valid setup")
        .run();
        let total = r.iteration_time().as_secs();
        let sum: f64 = r.attribution().iter().map(|(_, d)| d.as_secs()).sum();
        prop_assert!(!r.attribution().is_empty());
        prop_assert!((sum - total).abs() < 1e-6 * total);
        for (label, _) in r.attribution() {
            prop_assert!(TaskCategory::from_label(label).is_some(), "unknown label {label:?}");
        }
    }
}
