//! End-to-end test of the determinism sanitizer's runtime half: the
//! planted bug in `detsan_demo` must be localized to its exact stage and
//! sweep point, and a real sweep-refactored driver must compare clean.
//!
//! Everything lives in ONE `#[test]` because the digest recorder and the
//! pool's thread override are process-global — Rust runs `#[test]` fns in
//! one process on shared threads, so two concurrent comparisons would
//! interleave their streams.

use recsim_core::detsan_check::compare_driver;
use recsim_core::experiments::{detsan_demo, fig10, serve};
use recsim_core::Effort;

#[test]
fn detsan_localizes_the_planted_bug_and_passes_clean_drivers() {
    // The demo driver's worker-count-dependent f32 reduction: the sanitizer
    // must name the planted stage and the one sweep point whose values are
    // order-sensitive — not just "something diverged".
    let demo = compare_driver("detsan_demo", detsan_demo::run, Effort::Quick, 4);
    let d = demo
        .divergence
        .as_ref()
        .expect("the demo driver must diverge at 1 vs 4 threads");
    assert_eq!(d.stage, detsan_demo::POINT_STAGE, "wrong stage: {d}");
    assert_eq!(
        d.point,
        Some(detsan_demo::DIVERGENT_POINT),
        "wrong sweep point: {d}"
    );
    assert!(!demo.is_clean());
    assert!(demo.describe().contains(detsan_demo::POINT_STAGE));

    // A real driver refactored onto `sweep`: identical digest streams and
    // byte-identical artifacts at any worker count.
    let clean = compare_driver("fig10", fig10::run, Effort::Quick, 4);
    assert!(clean.is_clean(), "{}", clean.describe());
    assert!(
        clean.serial_entries > 0,
        "the instrumented pipeline must have recorded stages"
    );

    // The serving tier under the same contract: the DES loop's stage
    // digests (`serve/arrivals`, `serve/cache`, `serve/latency`) and the
    // real-execution score digest must match at 1 vs 4 workers.
    let serve = compare_driver("serve", serve::run, Effort::Quick, 4);
    assert!(serve.is_clean(), "{}", serve.describe());
    assert!(
        serve.serial_entries > 0,
        "the serving loop must have recorded stages"
    );

    // The sanitizer leaves the process disarmed and the pool width restored.
    assert!(!recsim_detsan::enabled());
    assert!(recsim_detsan::drain().is_empty());
}
