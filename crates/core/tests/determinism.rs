//! Determinism contract of the parallel sweep engine: every driver routed
//! through `recsim_core::sweep` must produce byte-identical structured
//! output at any thread count. These tests pin the pool width with
//! `recsim_pool::set_thread_override`, which is process-global — every test
//! that touches it serializes on [`OVERRIDE_LOCK`] and restores the
//! default before releasing it.

use recsim_core::{experiments, Effort};
use std::sync::Mutex;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// The drivers that reach `recsim-pool`: grid sweeps routed through
/// `recsim_core::sweep`, plus the training-loop drivers (`automl`, `fig15`)
/// whose parallelism is the batch-shard fan-out inside the trainer.
const PARALLEL_DRIVERS: [&str; 15] = [
    "autoshard",
    "rowshard",
    "faults",
    "serve",
    "automl",
    "fig15",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table3",
    "scaleout",
    "locality",
    "compression",
];

fn driver(id: &str) -> experiments::Driver {
    experiments::registry()
        .into_iter()
        .find(|(rid, _)| *rid == id)
        .unwrap_or_else(|| panic!("driver `{id}` not registered"))
        .1
}

#[test]
fn refactored_drivers_are_thread_count_invariant() {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for id in PARALLEL_DRIVERS {
        let run = driver(id);
        let mut baseline: Option<String> = None;
        for threads in [1usize, 2, 8] {
            recsim_pool::set_thread_override(Some(threads));
            let out = run(Effort::Quick);
            let json = serde_json::to_string(&out).expect("experiment outputs serialize");
            match &baseline {
                None => baseline = Some(json),
                Some(serial) => assert_eq!(
                    serial, &json,
                    "`{id}` output at {threads} threads differs from the 1-thread run"
                ),
            }
        }
    }
    recsim_pool::set_thread_override(None);
}

#[test]
fn run_all_matches_serial_registry_order() {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);

    recsim_pool::set_thread_override(Some(1));
    let serial = experiments::run_all(Effort::Quick);

    recsim_pool::set_thread_override(Some(4));
    let parallel = experiments::run_all(Effort::Quick);
    recsim_pool::set_thread_override(None);

    let registry_ids: Vec<&str> = experiments::registry().iter().map(|&(id, _)| id).collect();
    let parallel_ids: Vec<&str> = parallel.iter().map(|&(id, _)| id).collect();
    assert_eq!(
        registry_ids, parallel_ids,
        "run_all must preserve registry order"
    );

    for ((sid, sout), (_, pout)) in serial.iter().zip(&parallel) {
        let s = serde_json::to_string(sout).expect("serializes");
        let p = serde_json::to_string(pout).expect("serializes");
        assert_eq!(
            s, p,
            "`{sid}` differs between 1-thread and 4-thread run_all"
        );
    }
}
