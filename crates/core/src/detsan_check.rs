//! Runtime half of the determinism sanitizer: run a driver twice — serial
//! and parallel — with the per-stage digest recorder armed, and localize
//! the first divergence (DESIGN.md §11).
//!
//! While armed, the instrumented pipeline records a [`StageEntry`] at the
//! end of every stage (`data/batch`, `sim/taskgraph`, `sim/schedule`,
//! `sim/report`, `train/run`, …) and the pool re-emits each sweep point's
//! captured entries serially in submission order, tagged with the point
//! index. Two runs of a determinism-respecting driver therefore produce
//! *identical* digest streams at any worker count, and the first
//! mismatching entry of a violating driver names the exact stage and sweep
//! point where state diverged — instead of the artifact-level "bytes
//! differ somewhere" a JSON diff gives.
//!
//! The recorder and the pool's thread override are process-global, so
//! comparisons must not run concurrently; the CLI runs drivers one at a
//! time, and the integration test keeps everything in one `#[test]`.

use crate::experiments::Driver;
use crate::{Effort, ExperimentOutput};
use recsim_detsan::{first_divergence, Divergence, StageEntry};

/// The outcome of one serial-vs-parallel comparison.
#[derive(Debug)]
pub struct DetsanComparison {
    /// Driver id, e.g. `"fig10"`.
    pub driver: String,
    /// Parallel worker count the serial run was compared against.
    pub threads: usize,
    /// Digest-stream length of the serial run.
    pub serial_entries: usize,
    /// First divergence between the two streams, if any.
    pub divergence: Option<Divergence>,
    /// Whether the serialized artifacts were byte-identical.
    pub artifacts_match: bool,
    /// Serialized artifact of the serial run.
    pub json_serial: String,
    /// Serialized artifact of the parallel run.
    pub json_parallel: String,
}

impl DetsanComparison {
    /// True when the digest streams and the artifacts both matched.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none() && self.artifacts_match
    }

    /// One-line verdict for the CLI.
    pub fn describe(&self) -> String {
        match &self.divergence {
            Some(d) => format!("detsan {}: 1 vs {} threads: {d}", self.driver, self.threads),
            None if !self.artifacts_match => format!(
                "detsan {}: digest streams match ({} entries) but artifacts differ — \
                 an un-instrumented stage diverged; add a digest hook to narrow it",
                self.driver, self.serial_entries
            ),
            None => format!(
                "detsan {}: ok — {} stage entries identical at 1 vs {} threads",
                self.driver, self.serial_entries, self.threads
            ),
        }
    }
}

/// Runs `driver` once at `threads` workers with the recorder armed and
/// returns its digest stream and serialized artifact. The artifact itself
/// is digested as a final `driver/artifact` stage so the stream also covers
/// fold and formatting code after the last instrumented stage.
fn traced_run(driver: Driver, effort: Effort, threads: usize) -> (Vec<StageEntry>, String) {
    recsim_pool::set_thread_override(Some(threads));
    recsim_detsan::set_enabled(true);
    let _ = recsim_detsan::drain();
    let out: ExperimentOutput = driver(effort);
    let json = serde_json::to_string(&out).unwrap_or_default();
    let mut d = recsim_detsan::StateDigest::new();
    d.write_str(&json);
    recsim_detsan::record("driver/artifact", d.finish());
    let stream = recsim_detsan::drain();
    recsim_detsan::set_enabled(false);
    recsim_pool::set_thread_override(None);
    (stream, json)
}

/// Compares one driver's digest streams at 1 worker vs `threads` workers.
pub fn compare_driver(
    id: &str,
    driver: Driver,
    effort: Effort,
    threads: usize,
) -> DetsanComparison {
    let threads = threads.max(2);
    let (serial, json_serial) = traced_run(driver, effort, 1);
    let (parallel, json_parallel) = traced_run(driver, effort, threads);
    let divergence = first_divergence(&serial, &parallel);
    let artifacts_match = json_serial == json_parallel;
    DetsanComparison {
        driver: id.to_string(),
        threads,
        serial_entries: serial.len(),
        divergence,
        artifacts_match,
        json_serial,
        json_parallel,
    }
}
