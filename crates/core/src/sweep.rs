//! Parallel configuration sweeps for the experiment drivers.
//!
//! The paper's figures are design-space sweeps: dozens of independent
//! (dense, sparse, hash-size, MLP, batch) simulations whose results are
//! folded into one table. [`sweep`] fans those points across cores via
//! `recsim-pool` while keeping the driver code shaped exactly like the old
//! serial loop: map each grid point to a plain result struct, then fold the
//! returned (submission-ordered) vector serially.
//!
//! # Determinism contract
//!
//! A driver refactored onto [`sweep`] must produce **byte-identical**
//! [`crate::ExperimentOutput`] JSON at any thread count. That holds as long
//! as the per-point closure is a pure function of its grid point (the pool
//! guarantees submission ordering, so the fold sees results in the same
//! order the serial loop did). Anything order-sensitive — accumulators,
//! claim thresholds, formatting — belongs in the fold, not the closure.
//! `crates/core/tests/determinism.rs` enforces this for every refactored
//! driver at 1, 2 and 8 threads, and `recsim verify --detsan` (DESIGN.md
//! §11) localizes a violation to the first divergent stage and sweep point:
//! when the sanitizer is armed, the pool runs each point inside a digest
//! scope and re-emits the captured per-stage digests serially in
//! submission order.

/// Maps `f` over the sweep points on all available cores (see
/// `recsim_pool::thread_count` for the `RECSIM_THREADS` / `--threads`
/// override chain), returning results in submission order.
pub fn sweep<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    recsim_pool::par_map(points, f)
}

/// Serial variant of [`sweep`] for sub-threshold grids.
///
/// Dispatching a sweep through the pool costs worker spawns and a result
/// channel per call; for grid drivers whose whole serial runtime is under
/// ~20ms (fig10–fig14, table3, scaleout, compression at quick effort) that
/// overhead exceeds the work and `recsim run --all` regressed below 1x.
/// Those drivers iterate inline instead — same closure contract, same
/// submission-order results, trivially thread-count invariant — while
/// `run_all` still fans the *drivers themselves* across the pool. Sweeps
/// with real per-point work (locality, autoshard, faults) stay on [`sweep`].
pub fn sweep_compact<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    F: Fn(&T) -> R,
{
    points.iter().map(f).collect()
}

/// The cartesian product of two axes, row-major (`a` outer, `b` inner) —
/// the iteration order of the nested loops the grid drivers started from.
pub fn grid2<A: Copy, B: Copy>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            out.push((x, y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_submission_order() {
        let points: Vec<u32> = (0..97).collect();
        let out = sweep(&points, |&p| p * 3);
        assert_eq!(out, points.iter().map(|&p| p * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_compact_matches_sweep() {
        let points: Vec<u32> = (0..97).collect();
        assert_eq!(
            sweep_compact(&points, |&p| p * 3),
            sweep(&points, |&p| p * 3)
        );
    }

    #[test]
    fn grid2_is_row_major() {
        assert_eq!(
            grid2(&[1, 2], &["a", "b", "c"]),
            vec![(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (2, "c")]
        );
    }
}
