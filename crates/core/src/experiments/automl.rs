//! Section VI.C — AutoML re-tuning recovers (and can beat) the small-batch
//! baseline's model quality.
//!
//! The paper re-tunes the GPU setups' hyper-parameters from scratch with a
//! Bayesian sweep and reports *better* NE than the CPU baselines (−0.2% for
//! M1, −0.1% for M2). We reproduce the protocol with random search: a
//! large-batch configuration whose manually scaled learning rate loses
//! quality gets re-tuned and closes (or flips) the gap.

use crate::experiments::fig15::{accuracy_model, baseline_config};
use crate::{Claim, Effort, ExperimentOutput};
use recsim_metrics::Table;
use recsim_train::{AutoTuner, BatchScalingStudy};

/// Runs the re-tuning study at a large batch size.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "automl",
        "AutoML hyper-parameter re-tuning at large batch (paper Section VI.C)",
    );
    let model = accuracy_model();
    let baseline = baseline_config(effort);
    let big_batch = effort.pick(1600, 3200);
    let trials = effort.pick(8, 24);

    let study = BatchScalingStudy::new(&model, baseline);
    let baseline_ne = study.baseline_ne();
    let manual = study.sweep(&[big_batch])[0];

    let tuner = AutoTuner::new(
        &model,
        baseline
            .with_batch_size(big_batch)
            .with_learning_rate(manual.learning_rate),
        0xA070,
    )
    .with_lr_range(1e-3, 0.8);
    let tuned = tuner.tune(trials);

    let mut table = Table::new(vec!["configuration", "LR", "NE", "gap vs baseline"]);
    table.push_row(vec![
        format!("baseline (batch {})", baseline.batch_size),
        format!("{:.4}", baseline.learning_rate),
        format!("{baseline_ne:.4}"),
        "-".into(),
    ]);
    table.push_row(vec![
        format!("batch {big_batch}, manual linear-scaling LR"),
        format!("{:.4}", manual.learning_rate),
        format!("{:.4}", manual.ne),
        format!("{:+.2}%", manual.ne_gap_percent),
    ]);
    table.push_row(vec![
        format!(
            "batch {big_batch}, AutoML re-tuned ({} trials)",
            tuned.trials
        ),
        format!("{:.4}", tuned.learning_rate),
        format!("{:.4}", tuned.ne),
        format!("{:+.2}%", (tuned.ne - baseline_ne) / baseline_ne * 100.0),
    ]);
    out.tables.push(table);

    out.claims.push(Claim::new(
        "Manual linear-scaling LR at large batch loses quality vs the baseline",
        format!("manual gap {:+.2}%", manual.ne_gap_percent),
        manual.ne_gap_percent > 0.0,
    ));
    out.claims.push(Claim::new(
        "Automated re-tuning substantially closes the gap (the paper's sweep ended \
         slightly *better* than the CPU baseline)",
        format!(
            "tuned NE {:.4} vs manual {:.4} (recovered {:.0}% of the gap)",
            tuned.ne,
            manual.ne,
            (manual.ne - tuned.ne) / (manual.ne - baseline_ne).max(1e-9) * 100.0
        ),
        tuned.ne < manual.ne && (manual.ne - tuned.ne) / (manual.ne - baseline_ne).max(1e-9) > 0.3,
    ));
    out.notes.push(
        "Random search stands in for FBLearner's Bayesian optimization; the paper notes \
         the production sweep took about a week — ours takes seconds at this scale."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
