//! Figure 13 — throughput under varying MLP dimensions.

use crate::design_space::TestSuite;
use crate::sweep::sweep_compact;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::{Figure, Series, Table};
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::{CpuClusterSetup, CpuTrainingSim, GpuTrainingSim, SimScratch};

/// Sweeps MLP width/depth on both platforms, reporting normalized relative
/// throughput like the paper.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig13",
        "Throughput under varying MLP dimensions (paper Figure 13)",
    );
    let suite = TestSuite::default();
    let axis = effort.pick(vec![(64, 2), (512, 3), (2048, 4)], TestSuite::mlp_axis());
    let bb = Platform::big_basin(Bytes::from_gib(32));

    // Parallel phase: one MLP shape per sweep point.
    let points = sweep_compact(&axis, |&(width, layers)| {
        let mlp = vec![width; layers];
        let model = ModelConfig::test_suite(256, 16, suite.hash_size, &mlp);
        let mut scratch = SimScratch::new();
        let cpu = CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(suite.cpu_batch))
            .expect("single-trainer setup is valid")
            .run_in(&mut scratch);
        let gpu = GpuTrainingSim::new(
            &model,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            suite.gpu_batch,
        )
        .expect("fits")
        .run_in(&mut scratch);
        (cpu.throughput(), gpu.throughput())
    });

    let mut cpu_series = Series::new("CPU (normalized)");
    let mut gpu_series = Series::new("GPU (normalized)");
    let mut table = Table::new(vec!["MLP", "CPU ex/s", "GPU ex/s"]);
    for (i, (&(width, layers), (cpu_tput, gpu_tput))) in axis.iter().zip(&points).enumerate() {
        cpu_series.push(i as f64, *cpu_tput);
        gpu_series.push(i as f64, *gpu_tput);
        table.push_row(vec![
            format!("{width}^{layers}"),
            format!("{cpu_tput:.0}"),
            format!("{gpu_tput:.0}"),
        ]);
    }
    out.tables.push(table);

    let cpu_norm = cpu_series.normalized_to_first();
    let gpu_norm = gpu_series.normalized_to_first();
    let cpu_final = cpu_norm.points().last().expect("non-empty").1;
    let gpu_final = gpu_norm.points().last().expect("non-empty").1;
    out.claims.push(Claim::new(
        "Growing MLP dimensions reduce CPU throughput more than GPU throughput",
        format!(
            "largest MLP retains {:.1}% on CPU vs {:.1}% on GPU",
            cpu_final * 100.0,
            gpu_final * 100.0
        ),
        cpu_final < gpu_final,
    ));
    // The paper: throughput does not drop much until the MLP grows past
    // 256^3 (index 2 of the full axis).
    if axis.len() >= 3 {
        let gpu_early = gpu_norm.points()[1].1;
        out.claims.push(Claim::new(
            "Throughput does not decrease significantly until the MLP grows large",
            format!(
                "second point retains {:.0}% of the smallest's GPU throughput",
                gpu_early * 100.0
            ),
            gpu_early > 0.5,
        ));
    }
    out.figures.push(
        Figure::new(
            "MLP scaling (normalized)",
            "MLP size index",
            "relative throughput",
        )
        .with_series(cpu_norm)
        .with_series(gpu_norm),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
