//! faults — fault injection and recovery-policy goodput (ISSUE 5
//! tentpole).
//!
//! Production training at the paper's scale treats failures as routine:
//! the relevant metric is *goodput* — useful training throughput after
//! checkpoint overheads, lost work, restarts, and shrunken fleets. For
//! each setup (M1 on a single Big Basin, M1 sharded across a Big Basin
//! scale-out) the driver expands a deterministic fault schedule per MTBF
//! point, prices the environment with `recsim-fault` (degraded throughput
//! from a perturbed DES run, shrink ladder from re-sharding survivors,
//! checkpoint IO from the platform's link model), and sweeps the three
//! recovery policies — fail-stop, checkpoint-restart, elastic
//! shrink-and-rebalance — plus the classic checkpoint-interval curve with
//! its interior (Young) optimum.

use crate::sweep::sweep;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_fault::{
    policy_by_name, CheckpointRestart, FaultConfig, FaultContext, FaultSchedule, RecoveryPolicy,
    SlowdownField, POLICY_NAMES,
};
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::Table;
use recsim_shard::{GreedySharder, Sharder};
use recsim_sim::scaleout::{min_nodes, ScaleOutSim};
use recsim_sim::{GpuTrainingSim, SimScratch};
use recsim_trace::TaskCategory;

/// The two fault-swept setups.
const SETUPS: [&str; 2] = ["big-basin", "scale-out"];

/// One sweep point: one setup at one device MTBF — the priced context,
/// every policy's goodput, the checkpoint-interval curve, and the horizon
/// attribution of the best policy's day.
struct Point {
    setup: &'static str,
    mtbf_secs: f64,
    failures: usize,
    /// `(policy name, goodput samples/s, useful fraction)`; checkpoint
    /// runs at Young's optimal interval for this MTBF.
    goodputs: Vec<(String, f64, f64)>,
    /// `(interval secs, goodput samples/s)` for checkpoint-restart.
    interval_curve: Vec<(f64, f64)>,
    /// Critical-path shares of the degraded iteration, rescaled to the
    /// useful part of the horizon, plus a `recovery` share for the rest.
    attribution: Vec<(String, f64)>,
    error: Option<String>,
}

/// Prices one setup at one MTBF and evaluates every policy on it.
fn price_point(setup: &'static str, mtbf_secs: f64, intervals: usize) -> Point {
    let mut point = Point {
        setup,
        mtbf_secs,
        failures: 0,
        goodputs: Vec::new(),
        interval_curve: Vec::new(),
        attribution: Vec::new(),
        error: None,
    };
    let fault_cfg = FaultConfig::default().with_device_mtbf(mtbf_secs);
    let config = production_model(ProductionModelId::M1);
    let mut scratch = SimScratch::new();

    let built = match setup {
        "big-basin" => {
            let platform = Platform::big_basin(Bytes::from_gib(32));
            let batch = 1600;
            FaultSchedule::generate(&fault_cfg, platform.gpus().len())
                .map_err(recsim_fault::FaultError::from)
                .and_then(|schedule| {
                    let ctx = FaultContext::for_gpu_training(
                        &config, &platform, batch, &fault_cfg, &schedule,
                    )?;
                    // Attribution of the degraded iteration itself.
                    let plan = GreedySharder.shard(&config, &platform, batch)?;
                    let sim = GpuTrainingSim::with_placement(
                        &config,
                        &platform,
                        plan.placement().clone(),
                        batch,
                    )?;
                    let report = sim
                        .run_perturbed_in(&mut scratch, &SlowdownField::from_schedule(&schedule));
                    Ok((schedule, ctx, attribution_shares(&report)))
                })
        }
        _ => {
            let nodes = min_nodes(&config) + 2;
            let batch_per_node = 800;
            FaultSchedule::generate(&fault_cfg, nodes as usize * 8)
                .map_err(recsim_fault::FaultError::from)
                .and_then(|schedule| {
                    let ctx = FaultContext::for_scale_out(
                        &config,
                        nodes,
                        batch_per_node,
                        &fault_cfg,
                        &schedule,
                    )?;
                    let report = ScaleOutSim::new(&config, nodes, batch_per_node)?.run();
                    Ok((schedule, ctx, attribution_shares(&report)))
                })
        }
    };
    let (schedule, ctx, sim_shares) = match built {
        Ok(parts) => parts,
        Err(e) => {
            point.error = Some(e.to_string());
            return point;
        }
    };
    point.failures = schedule.device_failures();

    let optimal = CheckpointRestart::optimal_interval(&ctx, mtbf_secs);
    let mut best_fraction = 0.0_f64;
    for name in POLICY_NAMES {
        let Some(policy) = policy_by_name(name, optimal) else {
            continue;
        };
        let g = policy.goodput(&ctx, point.failures);
        if g.useful_fraction > best_fraction {
            best_fraction = g.useful_fraction;
        }
        point.goodputs.push((
            name.to_string(),
            g.goodput_samples_per_sec,
            g.useful_fraction,
        ));
    }

    // The interval curve, geometric around Young's optimum and deduped
    // after clamping so ties cannot mask the interior maximum.
    let lo = ctx.checkpoint_write_secs().max(60.0);
    let hi = ctx.horizon_secs();
    let mut grid: Vec<f64> = (0..intervals)
        .map(|i| {
            let spread = 2.0_f64.powi(i as i32 - intervals as i32 / 2);
            (optimal * spread).clamp(lo, hi)
        })
        .collect();
    grid.dedup();
    for tau in grid {
        let g = CheckpointRestart { interval_secs: tau }.goodput(&ctx, point.failures);
        point.interval_curve.push((tau, g.goodput_samples_per_sec));
    }

    // Horizon attribution: the degraded iteration's critical-path shares
    // scaled by the best policy's useful fraction, with the remainder
    // charged to recovery (checkpoints, restarts, rebalances, lost work).
    point.attribution = sim_shares
        .into_iter()
        .map(|(label, share)| (label, share * best_fraction))
        .collect();
    point.attribution.push((
        TaskCategory::Recovery.label().to_string(),
        1.0 - best_fraction,
    ));
    point
}

/// A report's critical-path attribution as fractional shares.
fn attribution_shares(report: &recsim_sim::SimReport) -> Vec<(String, f64)> {
    let total: f64 = report.attribution().iter().map(|(_, d)| d.as_secs()).sum();
    report
        .attribution()
        .iter()
        .filter(|(_, d)| d.as_secs() > 0.0)
        .map(|(label, d)| {
            let share = if total > 0.0 {
                d.as_secs() / total
            } else {
                0.0
            };
            (label.clone(), share)
        })
        .collect()
}

/// Sweeps MTBF × checkpoint interval × recovery policy on Big Basin and
/// the Big Basin scale-out.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "faults",
        "Fault injection and recovery: goodput under device failures for \
         fail-stop, checkpoint-restart, and elastic shrink (M1 on Big Basin \
         and scale-out)",
    );
    let mtbfs: &[f64] = if matches!(effort, Effort::Quick) {
        &[7_200.0, 21_600.0, 86_400.0]
    } else {
        &[3_600.0, 7_200.0, 14_400.0, 21_600.0, 43_200.0, 86_400.0]
    };
    let intervals = effort.pick(7, 11);

    let setups: Vec<(&'static str, f64)> = SETUPS
        .iter()
        .flat_map(|&setup| mtbfs.iter().map(move |&m| (setup, m)))
        .collect();
    let points: Vec<Point> = sweep(&setups, |&(setup, mtbf)| {
        price_point(setup, mtbf, intervals)
    });

    let mut all_built = true;
    let mut monotone = true;
    let mut interior = true;
    let mut recovery_wins = true;
    let mut monotone_rows: Vec<String> = Vec::new();
    let mut interior_rows: Vec<String> = Vec::new();
    let mut win_rows: Vec<String> = Vec::new();

    for setup in SETUPS {
        let mut table = Table::new(vec![
            "MTBF h",
            "failures",
            "checkpoint ex/s",
            "elastic ex/s",
            "fail-stop ex/s",
        ]);
        let setup_points: Vec<&Point> = points.iter().filter(|p| p.setup == setup).collect();
        for point in &setup_points {
            if let Some(e) = &point.error {
                all_built = false;
                out.notes
                    .push(format!("{setup} mtbf {}: {e}", point.mtbf_secs));
                continue;
            }
            let col = |name: &str| {
                point
                    .goodputs
                    .iter()
                    .find(|(n, _, _)| n == name)
                    .map_or_else(String::new, |(_, g, _)| format!("{g:.0}"))
            };
            table.push_row(vec![
                format!("{:.1}", point.mtbf_secs / 3_600.0),
                format!("{}", point.failures),
                col("checkpoint"),
                col("elastic"),
                col("fail-stop"),
            ]);
        }
        out.notes.push(format!(
            "{setup}: goodput per policy (checkpoint at Young's optimal interval)"
        ));
        out.tables.push(table);

        // Monotonicity: ascending MTBF must not reduce any policy's
        // goodput (fewer failures can only help).
        for name in POLICY_NAMES {
            let series: Vec<f64> = setup_points
                .iter()
                .filter(|p| p.error.is_none())
                .filter_map(|p| {
                    p.goodputs
                        .iter()
                        .find(|(n, _, _)| n == name)
                        .map(|(_, g, _)| *g)
                })
                .collect();
            let ok = series.windows(2).all(|w| w[1] >= w[0] - 1e-9);
            if !ok {
                monotone = false;
            }
            monotone_rows.push(format!(
                "{setup}/{name}: {}",
                if ok { "ok" } else { "ROSE" }
            ));
        }

        // The interval curve at the shortest MTBF: interior optimum, plus
        // the per-point horizon attribution.
        if let Some(point) = setup_points.iter().find(|p| p.error.is_none()) {
            let mut curve = Table::new(vec!["checkpoint interval s", "goodput ex/s"]);
            for (tau, g) in &point.interval_curve {
                curve.push_row(vec![format!("{tau:.0}"), format!("{g:.0}")]);
            }
            out.notes.push(format!(
                "{setup}: checkpoint-interval curve at MTBF {:.1} h ({} failures)",
                point.mtbf_secs / 3_600.0,
                point.failures
            ));
            out.tables.push(curve);

            let best = point
                .interval_curve
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .map_or(0, |(i, _)| i);
            let is_interior = point.interval_curve.len() >= 3
                && best > 0
                && best < point.interval_curve.len() - 1;
            if !is_interior {
                interior = false;
            }
            interior_rows.push(format!(
                "{setup}: optimum at grid index {best}/{}",
                point.interval_curve.len() - 1
            ));

            let mut attr = Table::new(vec!["horizon attribution", "share"]);
            for (label, share) in point.attribution.iter().take(5) {
                attr.push_row(vec![label.clone(), format!("{:.1}%", share * 100.0)]);
            }
            out.tables.push(attr);

            // At the shortest MTBF both real policies must beat fail-stop.
            let g = |name: &str| {
                point
                    .goodputs
                    .iter()
                    .find(|(n, _, _)| n == name)
                    .map_or(0.0, |(_, g, _)| *g)
            };
            let wins = g("checkpoint") > g("fail-stop") && g("elastic") > g("fail-stop");
            if !wins {
                recovery_wins = false;
            }
            win_rows.push(format!(
                "{setup}: ckpt {:.0} / elastic {:.0} vs fail-stop {:.0}",
                g("checkpoint"),
                g("elastic"),
                g("fail-stop")
            ));
        } else {
            interior = false;
            recovery_wins = false;
        }
    }

    out.claims.push(Claim::new(
        "Every fault context builds: schedules expand, placements shard, and \
         perturbed simulations run on both setups at every MTBF",
        format!("{} sweep points", points.len()),
        all_built,
    ));
    out.claims.push(Claim::new(
        "Goodput is monotone non-increasing in the failure rate for every \
         recovery policy on every setup",
        monotone_rows.join("; "),
        monotone,
    ));
    out.claims.push(Claim::new(
        "The checkpoint-interval sweep exhibits an interior goodput optimum \
         (short intervals pay checkpoint writes, long intervals lose work — \
         Young's trade-off)",
        interior_rows.join("; "),
        interior,
    ));
    out.claims.push(Claim::new(
        "At the shortest MTBF both checkpoint-restart and elastic shrink \
         beat the fail-stop baseline",
        win_rows.join("; "),
        recovery_wins,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }

    #[test]
    fn attribution_includes_a_recovery_share() {
        let point = price_point("big-basin", 7_200.0, 7);
        assert!(point.error.is_none(), "{:?}", point.error);
        let recovery = point
            .attribution
            .iter()
            .find(|(label, _)| label == TaskCategory::Recovery.label())
            .map(|(_, share)| *share);
        match recovery {
            Some(share) => assert!(share > 0.0 && share < 1.0, "share {share}"),
            None => panic!("no recovery share in attribution"),
        }
    }
}
