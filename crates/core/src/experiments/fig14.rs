//! Figure 14 — embedding placements on Big Basin vs Zion for M2.

use crate::sweep::sweep_compact;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::Table;
use recsim_placement::PlacementStrategy;
use recsim_sim::{GpuTrainingSim, SimReport, SimScratch};

/// Simulates M2 under every placement on both GPU platforms.
pub fn run(_effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig14",
        "Embedding placements on Big Basin vs Zion for M2 (paper Figure 14)",
    );
    let m2 = production_model(ProductionModelId::M2);
    let batch = 3200;
    let platforms = [
        ("Big Basin", Platform::big_basin(Bytes::from_gib(32))),
        ("Zion", Platform::zion_prototype()),
    ];

    // Parallel phase: one placement strategy per sweep point (both
    // platforms simulated inside the point, sharing one scratch).
    let lineup = PlacementStrategy::figure8_lineup();
    let cells: Vec<Vec<Result<SimReport, String>>> = sweep_compact(&lineup, |&strategy| {
        let mut scratch = SimScratch::new();
        platforms
            .iter()
            .map(|(_, platform)| {
                GpuTrainingSim::new(&m2, platform, strategy, batch)
                    .map(|sim| sim.run_in(&mut scratch))
                    .map_err(|e| e.to_string())
            })
            .collect()
    });

    let mut table = Table::new(vec!["placement", "Big Basin ex/s", "Zion ex/s"]);
    let mut results: Vec<(PlacementStrategy, Vec<f64>)> = Vec::new();
    // Full reports for the GPU-memory placement, kept so the exchange-cost
    // claim below reads the critical-path attribution instead of
    // recomputing anything from raw busy-times.
    let mut gpu_reports: Vec<Option<SimReport>> = vec![None, None];
    for (&strategy, platform_cells) in lineup.iter().zip(cells) {
        let mut row = vec![strategy.label()];
        let mut tputs = Vec::new();
        for (pi, cell) in platform_cells.into_iter().enumerate() {
            match cell {
                Ok(report) => {
                    let t = report.throughput();
                    tputs.push(t);
                    row.push(format!("{t:.0}"));
                    if matches!(strategy, PlacementStrategy::GpuMemory(_))
                        && gpu_reports[pi].is_none()
                    {
                        gpu_reports[pi] = Some(report);
                    }
                }
                Err(e) => {
                    tputs.push(0.0);
                    row.push(format!("({e})"));
                }
            }
        }
        table.push_row(row);
        results.push((strategy, tputs));
    }
    out.tables.push(table);

    // Where each platform's GPU-memory iteration goes, per the simulators'
    // critical-path attribution.
    let share = |report: &Option<SimReport>, labels: &[&str]| -> f64 {
        match report {
            Some(r) => {
                let total = r.iteration_time().as_secs();
                let picked: f64 = labels
                    .iter()
                    .filter_map(|l| r.attributed_to(l))
                    .map(recsim_hw::units::Duration::as_secs)
                    .sum();
                if total > 0.0 {
                    picked / total
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    };
    let relay_labels = ["pcie transfer", "host staging"];
    let bb_relay = share(&gpu_reports[0], &relay_labels);
    let zion_relay = share(&gpu_reports[1], &relay_labels);
    let bb_a2a = share(&gpu_reports[0], &["all-to-all"]);
    let zion_a2a = share(&gpu_reports[1], &["all-to-all"]);
    let mut attr_table = Table::new(vec!["GPU-memory attribution share", "Big Basin", "Zion"]);
    attr_table.push_row(vec![
        "all-to-all (direct interconnect)".into(),
        format!("{:.1}%", bb_a2a * 100.0),
        format!("{:.1}%", zion_a2a * 100.0),
    ]);
    attr_table.push_row(vec![
        "PCIe + host staging (CPU relay)".into(),
        format!("{:.1}%", bb_relay * 100.0),
        format!("{:.1}%", zion_relay * 100.0),
    ]);
    out.tables.push(attr_table);

    let get = |pred: &dyn Fn(PlacementStrategy) -> bool, platform: usize| -> f64 {
        results
            .iter()
            .find(|(s, _)| pred(*s))
            .map_or(0.0, |(_, t)| t[platform])
    };
    let is_gpu_mem = |s: PlacementStrategy| matches!(s, PlacementStrategy::GpuMemory(_));
    let is_system = |s: PlacementStrategy| s == PlacementStrategy::SystemMemory;
    let is_remote = |s: PlacementStrategy| matches!(s, PlacementStrategy::RemoteCpu { .. });

    let bb_gpu = get(&is_gpu_mem, 0);
    let bb_sys = get(&is_system, 0);
    let bb_remote = get(&is_remote, 0);
    let zion_gpu = get(&is_gpu_mem, 1);
    let zion_sys = get(&is_system, 1);
    let zion_remote = get(&is_remote, 1);

    out.claims.push(Claim::new(
        "With GPU-memory placement, Big Basin shows the best performance; Zion's is lower \
         because GPU traffic is relayed through the CPUs",
        format!("BB {bb_gpu:.0} vs Zion {zion_gpu:.0}"),
        bb_gpu > zion_gpu,
    ));
    out.claims.push(Claim::new(
        "Critical-path attribution pins Zion's GPU-memory deficit on the CPU relay: \
         PCIe transfers plus host staging charge a larger share of the iteration than \
         on Big Basin, whose exchange rides the direct interconnect",
        format!(
            "relay share: Zion {:.0}% vs BB {:.0}%",
            zion_relay * 100.0,
            bb_relay * 100.0
        ),
        zion_relay > bb_relay,
    ));
    out.claims.push(Claim::new(
        "With system-memory placement, Zion performs best; Big Basin is about four times \
         below its own GPU-memory throughput",
        format!(
            "Zion sys {zion_sys:.0} >= all Zion options; BB sys/BB gpu = {:.2}",
            bb_sys / bb_gpu
        ),
        zion_sys >= zion_gpu && zion_sys >= zion_remote && bb_sys / bb_gpu < 0.4,
    ));
    out.claims.push(Claim::new(
        "Remote-memory placement cannot exceed the other approaches on either platform, \
         and Zion's remote throughput is only slightly better than Big Basin's",
        format!(
            "BB remote {bb_remote:.0} vs BB best {:.0}; Zion remote {zion_remote:.0} vs \
             Zion best {:.0}; Zion/BB remote = {:.2}",
            bb_gpu.max(bb_sys),
            zion_gpu.max(zion_sys),
            zion_remote / bb_remote
        ),
        bb_remote < bb_gpu.max(bb_sys)
            && zion_remote < zion_gpu.max(zion_sys)
            && zion_remote > bb_remote
            && zion_remote / bb_remote < 1.5,
    ));
    out.notes.push(
        "Deviation: on Big Basin our remote placement outruns system-memory placement \
         (the pipelined parameter servers overlap well); the paper places remote at or \
         below system memory. The best-placement conclusions are unaffected."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
