//! Section VI.B's scale-out comparison: M3 on multiple Big Basins with
//! sharded GPU-memory tables versus one Zion.
//!
//! The paper could not run this setup ("due to the lack of [fast inter-node
//! GPU-GPU communication] we were not able to test this model setup") and
//! instead reports from an analytical model that Zion is "several orders of
//! magnitude more efficient". This driver regenerates that analysis with
//! the concrete multi-node simulator.

use crate::sweep::sweep;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_hw::Platform;
use recsim_metrics::Table;
use recsim_placement::PlacementStrategy;
use recsim_sim::scaleout::{min_nodes, ScaleOutSim};
use recsim_sim::{GpuTrainingSim, SimScratch};

/// Runs the multi-Big-Basin vs Zion comparison for M3.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "scaleout",
        "M3 on multiple Big Basins (sharded GPU memory) vs one Zion (paper §VI.B)",
    );
    let m3 = production_model(ProductionModelId::M3);
    let base_nodes = min_nodes(&m3);
    let node_counts: Vec<u32> = effort.pick(
        vec![base_nodes, base_nodes * 2],
        vec![base_nodes, base_nodes + 1, base_nodes * 2, base_nodes * 4],
    );

    let zion = GpuTrainingSim::new(
        &m3,
        &Platform::zion_prototype(),
        PlacementStrategy::SystemMemory,
        1600,
    )
    .expect("Zion holds M3")
    .run();

    let mut table = Table::new(vec![
        "setup",
        "ex/s",
        "power",
        "ex/J",
        "Zion efficiency advantage",
    ]);
    table.push_row(vec![
        "1 Zion (system memory)".into(),
        format!("{:.0}", zion.throughput()),
        zion.power().to_string(),
        format!("{:.1}", zion.perf_per_watt()),
        "1.0x".into(),
    ]);
    // Parallel phase: one node count per sweep point.
    let multis = sweep(&node_counts, |&nodes| {
        let mut scratch = SimScratch::new();
        ScaleOutSim::new(&m3, nodes, 800)
            .expect("enough nodes")
            .run_in(&mut scratch)
    });

    let mut min_advantage = f64::INFINITY;
    for (&nodes, multi) in node_counts.iter().zip(&multis) {
        let advantage = zion.perf_per_watt() / multi.perf_per_watt();
        min_advantage = min_advantage.min(advantage);
        table.push_row(vec![
            format!("{nodes} Big Basins (sharded GPU memory)"),
            format!("{:.0}", multi.throughput()),
            multi.power().to_string(),
            format!("{:.1}", multi.perf_per_watt()),
            format!("{advantage:.0}x"),
        ]);
    }
    out.tables.push(table);

    out.claims.push(Claim::new(
        "Training M3 on Zion is over an order of magnitude more power-efficient than \
         multi-Big-Basin sharded GPU memory (the paper's analytical model: 'several \
         orders of magnitude')",
        format!("minimum Zion advantage across node counts: {min_advantage:.0}x"),
        min_advantage > 10.0,
    ));
    out.claims.push(Claim::new(
        "M3's tables require more than one Big Basin's worth of HBM",
        format!("min nodes = {base_nodes}"),
        base_nodes >= 2,
    ));
    out.notes.push(
        "Mechanism: without inter-node GPU-GPU networking every remote lookup's raw rows \
         cross host memory and a 100 GbE NIC twice per iteration; M3's ~1.6 MB of rows \
         per example makes the wire the bottleneck regardless of node count."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
