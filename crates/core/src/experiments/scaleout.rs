//! Section VI.B's scale-out comparison: M3 on multiple Big Basins with
//! sharded GPU-memory tables versus one Zion.
//!
//! The paper could not run this setup ("due to the lack of [fast inter-node
//! GPU-GPU communication] we were not able to test this model setup") and
//! instead reports from an analytical model that Zion is "several orders of
//! magnitude more efficient". This driver regenerates that analysis with
//! the concrete multi-node simulator.

use crate::sweep::sweep_compact;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_hw::Platform;
use recsim_metrics::Table;
use recsim_placement::PlacementStrategy;
use recsim_sim::scaleout::{min_nodes, ScaleOutSim};
use recsim_sim::{GpuTrainingSim, SimScratch, TaskCategory};

/// Runs the multi-Big-Basin vs Zion comparison for M3.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "scaleout",
        "M3 on multiple Big Basins (sharded GPU memory) vs one Zion (paper §VI.B)",
    );
    let m3 = production_model(ProductionModelId::M3);
    let base_nodes = min_nodes(&m3);
    let node_counts: Vec<u32> = effort.pick(
        vec![base_nodes, base_nodes * 2],
        vec![base_nodes, base_nodes + 1, base_nodes * 2, base_nodes * 4],
    );

    let zion = GpuTrainingSim::new(
        &m3,
        &Platform::zion_prototype(),
        PlacementStrategy::SystemMemory,
        1600,
    )
    .expect("Zion holds M3")
    .run();

    let mut table = Table::new(vec![
        "setup",
        "ex/s",
        "power",
        "ex/J",
        "Zion efficiency advantage",
    ]);
    table.push_row(vec![
        "1 Zion (system memory)".into(),
        format!("{:.0}", zion.throughput()),
        zion.power().to_string(),
        format!("{:.1}", zion.perf_per_watt()),
        "1.0x".into(),
    ]);
    // Parallel phase: one node count per sweep point. The critical-path
    // walk of each (large) scale-out schedule happens inside the closure,
    // so grid-wide attribution fans out with the sweep instead of running
    // serially afterwards (ROADMAP: parallel critical-path analysis).
    let multis = sweep_compact(&node_counts, |&nodes| {
        let mut scratch = SimScratch::new();
        let sim = ScaleOutSim::new(&m3, nodes, 800).expect("enough nodes");
        let report = sim.run_in(&mut scratch);
        let cp = sim.critical_path(1);
        let wire_share = (cp.share_of(TaskCategory::NicTransfer)
            + cp.share_of(TaskCategory::HostStaging))
            / cp.makespan.max(f64::MIN_POSITIVE);
        let top = cp
            .breakdown
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c.label().to_string())
            .unwrap_or_default();
        (report, wire_share, top)
    });

    let mut attr_table = Table::new(vec![
        "nodes",
        "critical path dominated by",
        "NIC+staging share",
    ]);
    let mut min_wire_share = f64::INFINITY;
    for (&nodes, (_, wire_share, top)) in node_counts.iter().zip(&multis) {
        min_wire_share = min_wire_share.min(*wire_share);
        attr_table.push_row(vec![
            nodes.to_string(),
            top.clone(),
            format!("{:.0}%", wire_share * 100.0),
        ]);
    }

    let mut min_advantage = f64::INFINITY;
    for (&nodes, (multi, _, _)) in node_counts.iter().zip(&multis) {
        let advantage = zion.perf_per_watt() / multi.perf_per_watt();
        min_advantage = min_advantage.min(advantage);
        table.push_row(vec![
            format!("{nodes} Big Basins (sharded GPU memory)"),
            format!("{:.0}", multi.throughput()),
            multi.power().to_string(),
            format!("{:.1}", multi.perf_per_watt()),
            format!("{advantage:.0}x"),
        ]);
    }
    out.tables.push(table);
    out.tables.push(attr_table);

    out.claims.push(Claim::new(
        "Per-point critical-path attribution confirms the mechanism: the NIC wire \
         plus host staging charge the majority of every scale-out iteration, at \
         every node count",
        format!(
            "minimum NIC+staging share across node counts: {:.0}%",
            min_wire_share * 100.0
        ),
        min_wire_share > 0.5,
    ));
    out.claims.push(Claim::new(
        "Training M3 on Zion is over an order of magnitude more power-efficient than \
         multi-Big-Basin sharded GPU memory (the paper's analytical model: 'several \
         orders of magnitude')",
        format!("minimum Zion advantage across node counts: {min_advantage:.0}x"),
        min_advantage > 10.0,
    ));
    out.claims.push(Claim::new(
        "M3's tables require more than one Big Basin's worth of HBM",
        format!("min nodes = {base_nodes}"),
        base_nodes >= 2,
    ));
    out.notes.push(
        "Mechanism: without inter-node GPU-GPU networking every remote lookup's raw rows \
         cross host memory and a 100 GbE NIC twice per iteration; M3's ~1.6 MB of rows \
         per example makes the wire the bottleneck regardless of node count."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
