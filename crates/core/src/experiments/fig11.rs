//! Figure 11 — batch-size scaling on CPU and GPU.

use crate::design_space::TestSuite;
use crate::sweep::sweep_compact;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::{Figure, Series, Table};
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::{CpuClusterSetup, CpuTrainingSim, GpuTrainingSim, SimScratch};

/// Sweeps the batch size on both platforms at the test-suite anchor model.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig11",
        "Batch-size scaling on CPU and GPU (paper Figure 11)",
    );
    let suite = TestSuite::default();
    let model = suite.model(256, 16);
    let batches = effort.pick(vec![64, 400, 1600, 6400], TestSuite::batch_axis());
    let bb = Platform::big_basin(Bytes::from_gib(32));

    // Parallel phase: one (cpu, gpu) simulation pair per batch size.
    let points = sweep_compact(&batches, |&batch| {
        let mut scratch = SimScratch::new();
        let cpu = CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(batch))
            .expect("single-trainer setup is valid")
            .run_in(&mut scratch);
        let gpu = GpuTrainingSim::new(
            &model,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            batch,
        )
        .expect("fits")
        .run_in(&mut scratch);
        let gpu_bottleneck = gpu
            .bottleneck()
            .map(|(n, _)| n.to_string())
            .unwrap_or_default();
        (cpu.throughput(), gpu.throughput(), gpu_bottleneck)
    });

    let mut cpu_series = Series::new("CPU");
    let mut gpu_series = Series::new("GPU");
    let mut table = Table::new(vec!["batch", "CPU ex/s", "GPU ex/s", "GPU bottleneck"]);
    for (&batch, (cpu_tput, gpu_tput, gpu_bottleneck)) in batches.iter().zip(&points) {
        cpu_series.push(batch as f64, *cpu_tput);
        gpu_series.push(batch as f64, *gpu_tput);
        table.push_row(vec![
            batch.to_string(),
            format!("{cpu_tput:.0}"),
            format!("{gpu_tput:.0}"),
            gpu_bottleneck.clone(),
        ]);
    }
    out.tables.push(table);

    let gpu_first = gpu_series.points().first().expect("non-empty").1;
    let gpu_last = gpu_series.points().last().expect("non-empty").1;
    let gpu_mid = gpu_series.points()[gpu_series.len() / 2].1;
    out.claims.push(Claim::new(
        "GPU throughput increases roughly linearly with batch size, then saturates",
        format!(
            "rise {:.1}x to midpoint, then {:.2}x further (sublinear tail)",
            gpu_mid / gpu_first,
            gpu_last / gpu_mid
        ),
        gpu_series.is_non_decreasing()
            && gpu_mid / gpu_first > 2.0
            && (gpu_last / gpu_mid)
                < (batches[batches.len() - 1] as f64 / batches[batches.len() / 2] as f64),
    ));
    let (cpu_best_batch, _) = cpu_series.argmax().expect("non-empty");
    let cpu_last = cpu_series.points().last().expect("non-empty").1;
    let cpu_best = cpu_series.argmax().unwrap().1;
    out.claims.push(Claim::new(
        "Higher batch sizes can be detrimental to CPU training speed",
        format!(
            "CPU peaks at batch {cpu_best_batch:.0} and loses {:.0}% by the largest batch",
            (1.0 - cpu_last / cpu_best) * 100.0
        ),
        cpu_best_batch <= 800.0 && cpu_last < cpu_best,
    ));
    out.figures.push(
        Figure::new("batch scaling", "batch size", "examples/s")
            .with_series(cpu_series)
            .with_series(gpu_series),
    );
    out.notes
        .push("Anchor model: 256 dense x 16 sparse, MLP 512^3, hash 100000.".into());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
