//! Figure 9 — histograms of trainer and parameter-server counts over a
//! month of workflows.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::fleet::FleetSampler;
use recsim_metrics::{Histogram, Table};

/// Samples a month of training workflows and histograms their server
/// counts.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig09",
        "Trainer / parameter-server count histograms over a month (paper Figure 9)",
    );
    let runs = effort.pick(500, 5000);
    let mut fleet = FleetSampler::new(0x0F16_0009);
    let samples = fleet.sample_month_of_runs(runs);

    let mut trainer_hist = Histogram::with_range(0.0, 41.0, 41);
    let mut ps_hist = Histogram::with_range(0.0, 80.0, 40);
    let mut trainer_vals = Vec::with_capacity(runs);
    let mut ps_vals = Vec::with_capacity(runs);
    for s in &samples {
        trainer_hist.record(s.trainers as f64);
        ps_hist.record(s.parameter_servers as f64);
        trainer_vals.push(s.trainers as f64);
        ps_vals.push(s.parameter_servers as f64);
    }

    let cv = |xs: &[f64]| {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        var.sqrt() / mean
    };
    let trainer_cv = cv(&trainer_vals);
    let ps_cv = cv(&ps_vals);
    let mode_fraction = trainer_hist.mode_fraction();

    let mut table = Table::new(vec!["statistic", "trainers", "parameter servers"]);
    table.push_row(vec![
        "mode bin fraction".into(),
        format!("{:.2}", mode_fraction),
        format!("{:.2}", ps_hist.mode_fraction()),
    ]);
    table.push_row(vec![
        "coefficient of variation".into(),
        format!("{trainer_cv:.2}"),
        format!("{ps_cv:.2}"),
    ]);
    table.push_row(vec![
        "distinct counts used".into(),
        format!(
            "{}",
            (0..trainer_hist.bins())
                .filter(|&i| trainer_hist.count(i) > 0)
                .count()
        ),
        format!(
            "{}",
            (0..ps_hist.bins())
                .filter(|&i| ps_hist.count(i) > 0)
                .count()
        ),
    ]);
    out.tables.push(table);

    out.claims.push(Claim::new(
        "Over 40% of workflows use the same number of trainers",
        format!("mode bin holds {:.0}% of runs", mode_fraction * 100.0),
        mode_fraction > 0.40,
    ));
    out.claims.push(Claim::new(
        "The number of parameter servers varies greatly, in contrast to trainers",
        format!("PS cv {ps_cv:.2} vs trainer cv {trainer_cv:.2}"),
        ps_cv > trainer_cv,
    ));
    out.notes.push(format!("{runs} workflows sampled"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
