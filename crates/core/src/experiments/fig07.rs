//! Figure 7 — mean sparse-feature-length distributions with KDE overlays.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_metrics::{Figure, Histogram, Kde, Series, Table};

/// Regenerates the per-model feature-length distributions and their kernel
/// density estimates.
pub fn run(_effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig07",
        "Mean sparse feature length distributions with KDE (paper Figure 7)",
    );
    let mut kde_figure = Figure::new("feature-length KDE", "mean lookups per feature", "density");
    let mut table = Table::new(vec![
        "model",
        "mean",
        "median",
        "p95",
        "max",
        "skew (mean/median)",
    ]);
    let mut all_right_skewed = true;
    for id in ProductionModelId::ALL {
        let model = production_model(id);
        let lengths: Vec<f64> = model
            .sparse_features()
            .iter()
            .map(recsim_data::SparseFeatureSpec::mean_lookups)
            .collect();
        let mut hist = Histogram::with_range(0.0, 200.0, 20);
        for &l in &lengths {
            hist.record(l);
        }
        let kde = Kde::fit(&lengths);
        let mut series = Series::new(id.name());
        series.extend(kde.curve(64));
        kde_figure.push_series(series);

        let mut sorted = lengths.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = lengths.iter().sum::<f64>() / lengths.len() as f64;
        let median = recsim_metrics::quantile(&sorted, 0.5);
        let p95 = recsim_metrics::quantile(&sorted, 0.95);
        let max = recsim_metrics::quantile(&sorted, 1.0);
        let skew = mean / median.max(1e-9);
        all_right_skewed &= skew > 1.0;
        table.push_row(vec![
            id.name().to_string(),
            format!("{mean:.1}"),
            format!("{median:.1}"),
            format!("{p95:.1}"),
            format!("{max:.1}"),
            format!("{skew:.2}"),
        ]);
    }
    out.tables.push(table);
    out.figures.push(kde_figure);

    out.claims.push(Claim::new(
        "Feature length distribution resembles a power law: a small number of tables are \
         accessed much more frequently than others",
        "mean/median > 1 (right-skewed) for all three models",
        all_right_skewed,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
        assert_eq!(out.figures[0].series().len(), 3);
    }
}
