//! One driver per paper artifact. Every driver has the shape
//! `pub fn run(effort: Effort) -> ExperimentOutput`.

pub mod automl;
pub mod autoshard;
pub mod compression;
pub mod detsan_demo;
pub mod faults;
pub mod fig01;
pub mod fig02;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod locality;
pub mod readers;
pub mod rowshard;
pub mod scaleout;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::{Effort, ExperimentOutput};

/// An experiment driver: scale in, structured output out.
pub type Driver = fn(Effort) -> ExperimentOutput;

/// Every driver, as `(id, function)` pairs — the registry used by the
/// `all_experiments` binary and the integration tests.
pub fn registry() -> Vec<(&'static str, Driver)> {
    vec![
        ("table1", table1::run as Driver),
        ("table2", table2::run),
        ("table3", table3::run),
        ("fig01", fig01::run),
        ("fig02", fig02::run),
        ("fig05", fig05::run),
        ("fig06", fig06::run),
        ("fig07", fig07::run),
        ("fig09", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("automl", automl::run),
        ("autoshard", autoshard::run),
        ("locality", locality::run),
        ("scaleout", scaleout::run),
        ("readers", readers::run),
        ("compression", compression::run),
        ("faults", faults::run),
        ("serve", serve::run),
        ("rowshard", rowshard::run),
    ]
}

/// Runs every registered driver at `effort`, fanning whole drivers across
/// cores (`recsim-pool`), and returns `(id, output)` pairs in registry
/// order. Each driver is a pure function of `effort`, and any sweep *inside*
/// a driver is itself order-preserving, so the outputs are identical to a
/// serial `registry()` loop at any thread count.
pub fn run_all(effort: Effort) -> Vec<(&'static str, ExperimentOutput)> {
    let entries = registry();
    crate::sweep::sweep(&entries, |&(id, driver)| (id, driver(effort)))
}
