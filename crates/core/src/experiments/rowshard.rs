//! rowshard — per-row hot/cold sharding vs the whole-table baseline over
//! a heterogeneous HBM / host DDR / SCM hierarchy (ISSUE 10 tentpole).
//!
//! RecShard's observation: embedding-row popularity inside a table is
//! Zipf-skewed, so splitting tables into hot/warm/cold *row ranges* beats
//! any whole-table placement at the same HBM budget. MTrainS adds the SCM
//! tier that makes the cold tail nearly free. This driver sweeps lookup
//! skew × HBM budget on the three production models (Big Basin with an
//! Optane-class SCM tier attached) and pins two claims: per-row never
//! costs more than per-table at an equal HBM budget, and the hot/cold
//! crossover row index (rows needed for 90% traffic coverage) moves left
//! as the Zipf exponent grows.

use crate::sweep::sweep;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::dist::ZipfCdf;
use recsim_data::production::{production_model, ProductionModelId};
use recsim_hw::units::Bytes;
use recsim_hw::{Platform, ScmDevice};
use recsim_metrics::Table;
use recsim_placement::plan::{table_demands, ADAGRAD_STATE_MULTIPLIER};
use recsim_shard::{per_table_plan_with_caps, RowShardSolver};

/// Row count of the reference table the crossover claim reads the CDF on
/// (the paper's Figure 6 upper end: ~10M-row hash sizes).
const CROSSOVER_ROWS: u64 = 10_000_000;

/// Traffic coverage defining the hot/cold crossover row index.
const CROSSOVER_COVERAGE: f64 = 0.9;

/// Warm-tier (host DDR) budget as a multiple of the HBM budget. Capping
/// DDR below the host's physical 256 GiB models the production reality
/// that trainer DDR is shared with readers, activations and the OS —
/// and it is what pushes each model's cold tail onto the SCM tier.
const DDR_BUDGET_MULTIPLE: f64 = 2.0;

/// One sweep point: both plans priced for one (model, skew, budget) cell.
struct Point {
    model: ProductionModelId,
    zipf: f64,
    frac: f64,
    row_cost: f64,
    table_cost: f64,
    hbm_share: f64,
    scm_bytes: u64,
    fell_back: bool,
}

/// Compares per-row against per-table placement across skew × HBM budget.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "rowshard",
        "Per-row hot/cold sharding vs per-table over HBM/DDR/SCM \
         (skew × HBM budget, M1/M2/M3 on Big Basin + Optane SCM)",
    );
    let platform = Platform::big_basin(Bytes::from_gib(32)).with_scm(ScmDevice::optane_pmem());
    let setups = [
        (ProductionModelId::M1, 1600u64),
        (ProductionModelId::M2, 3200),
        (ProductionModelId::M3, 800),
    ];
    let zipfs: &[f64] = effort.pick(&[0.8, 1.1, 1.4], &[0.6, 0.8, 1.0, 1.1, 1.2, 1.4, 1.6]);
    let fracs: &[f64] = effort.pick(&[0.05, 0.15, 0.4], &[0.02, 0.05, 0.1, 0.15, 0.25, 0.4]);

    let mut grid = Vec::new();
    for &(model, batch) in &setups {
        for &zipf in zipfs {
            for &frac in fracs {
                grid.push((model, batch, zipf, frac));
            }
        }
    }

    // Parallel phase: each cell solves both planners independently.
    let points: Vec<Point> = sweep(&grid, |&(model, batch, zipf, frac)| {
        let config = production_model(model);
        let total: u64 = table_demands(&config, ADAGRAD_STATE_MULTIPLIER)
            .iter()
            .map(|d| d.bytes)
            .sum();
        let budget = Bytes::new((total as f64 * frac) as u64);
        let ddr = Bytes::new((budget.as_u64() as f64 * DDR_BUDGET_MULTIPLE) as u64);
        let row = RowShardSolver::default()
            .solve_with_caps(&config, &platform, batch, zipf, budget, ddr)
            .unwrap_or_else(|e| panic!("per-row solve failed on {model:?}: {e}"));
        let table = per_table_plan_with_caps(&config, &platform, batch, zipf, budget, ddr)
            .unwrap_or_else(|e| panic!("per-table solve failed on {model:?}: {e}"));
        Point {
            model,
            zipf,
            frac,
            row_cost: row.cost().as_secs(),
            table_cost: table.cost().as_secs(),
            hbm_share: row.hbm_traffic_share(&config, batch),
            scm_bytes: row.bytes_per_tier().2,
            fell_back: row.fell_back(),
        }
    });

    let mut never_worse = true;
    let mut worst_cells: Vec<String> = Vec::new();
    let mut best_advantages: Vec<String> = Vec::new();
    for &(model, _) in &setups {
        let mut table = Table::new(vec![
            "zipf s",
            "HBM frac",
            "per-row ms",
            "per-table ms",
            "advantage",
            "HBM traffic",
        ]);
        let mut best_adv = 0.0f64;
        for p in points.iter().filter(|p| p.model == model) {
            let adv = if p.table_cost > 0.0 {
                1.0 - p.row_cost / p.table_cost
            } else {
                0.0
            };
            if p.row_cost > p.table_cost + 1e-15 {
                never_worse = false;
                worst_cells.push(format!(
                    "{model:?} s={} frac={}: {:.4} > {:.4} ms",
                    p.zipf,
                    p.frac,
                    p.row_cost * 1e3,
                    p.table_cost * 1e3
                ));
            }
            best_adv = best_adv.max(adv);
            table.push_row(vec![
                format!("{:.1}", p.zipf),
                format!("{:.0}%", p.frac * 100.0),
                format!("{:.3}", p.row_cost * 1e3),
                format!("{:.3}", p.table_cost * 1e3),
                format!("{:.1}%", adv * 100.0),
                format!(
                    "{:.1}%{}",
                    p.hbm_share * 100.0,
                    if p.fell_back { " (fb)" } else { "" }
                ),
            ]);
        }
        best_advantages.push(format!("{model:?} best {:.1}%", best_adv * 100.0));
        out.notes.push(format!(
            "{model:?}: per-row vs per-table across skew × HBM budget (fractions of the \
             model's own footprint); (fb) marks a per-table fallback"
        ));
        out.tables.push(table);
    }

    // Crossover: rows needed to cover 90% of the traffic on a 10M-row
    // reference table, per swept exponent.
    let mut crossover = Table::new(vec!["zipf s", "rows for 90% traffic"]);
    let crossings: Vec<(f64, u64)> = zipfs
        .iter()
        .map(|&s| {
            (
                s,
                ZipfCdf::new(CROSSOVER_ROWS, s).rows_for_coverage(CROSSOVER_COVERAGE),
            )
        })
        .collect();
    for &(s, k) in &crossings {
        crossover.push_row(vec![format!("{s:.1}"), k.to_string()]);
    }
    out.tables.push(crossover);
    let monotone = crossings.windows(2).all(|w| w[1].1 < w[0].1);

    out.claims.push(Claim::new(
        "Per-row placement never costs more than whole-table placement at an \
         equal HBM budget, on all three production models across the full \
         skew × budget sweep",
        if worst_cells.is_empty() {
            format!(
                "{} sweep cells, per-row <= per-table in every one",
                points.len()
            )
        } else {
            worst_cells.join("; ")
        },
        never_worse,
    ));
    out.claims.push(Claim::new(
        "The hot/cold crossover row index (90% traffic coverage on a 10M-row \
         table) strictly decreases as the Zipf exponent grows",
        crossings
            .iter()
            .map(|(s, k)| format!("s={s:.1}: {k}"))
            .collect::<Vec<_>>()
            .join(", "),
        monotone,
    ));
    out.claims.push(Claim::new(
        "Per-row sharding finds a strictly positive advantage on every \
         production model somewhere in the sweep (the skewed cells)",
        best_advantages.join("; "),
        setups.iter().all(|&(model, _)| {
            points
                .iter()
                .any(|p| p.model == model && p.row_cost < p.table_cost - 1e-15)
        }),
    ));
    out.claims.push(Claim::new(
        "With the warm tier capped at 2x the HBM budget, every production \
         model spills a non-zero cold tail onto the SCM tier somewhere in \
         the sweep",
        setups
            .iter()
            .map(|&(model, _)| {
                let max_scm = points
                    .iter()
                    .filter(|p| p.model == model)
                    .map(|p| p.scm_bytes)
                    .max()
                    .unwrap_or(0);
                format!("{model:?} max SCM {}", Bytes::new(max_scm))
            })
            .collect::<Vec<_>>()
            .join("; "),
        setups
            .iter()
            .all(|&(model, _)| points.iter().any(|p| p.model == model && p.scm_bytes > 0)),
    ));
    out.notes.push(format!(
        "Warm-tier cap: host DDR budget = {DDR_BUDGET_MULTIPLE}x the HBM budget \
         (trainer DDR is shared with readers, activations and the OS)"
    ));
    out.notes.push(format!(
        "SCM tier: Optane-class PMem ({}, {:.0} ns, {:.0} GB/s); crossover read \
         off the Zipf CDF at {:.0}% coverage",
        ScmDevice::optane_pmem().capacity(),
        ScmDevice::optane_pmem().read_latency().as_secs() * 1e9,
        ScmDevice::optane_pmem().sustained_bandwidth().as_gb_per_s(),
        CROSSOVER_COVERAGE * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
