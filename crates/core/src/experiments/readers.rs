//! Reader-tier sizing (paper Section IV.B.2).
//!
//! "We typically scale up reader servers such that data reading is not a
//! bottleneck. Consequently, for more performant training hardware, we may
//! utilize more readers." This driver sizes the reader tier for the same
//! model on each training platform.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::Table;
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::readers::ReaderModel;
use recsim_sim::{CpuClusterSetup, CpuTrainingSim, GpuTrainingSim};

/// Sizes the reader tier behind each platform.
pub fn run(_effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "readers",
        "Reader-tier sizing per training platform (paper Section IV.B.2)",
    );
    let model = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
    let readers = ReaderModel::default();

    let cpu = CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(200))
        .expect("single-trainer setup is valid")
        .run();
    let bb = GpuTrainingSim::new(
        &model,
        &Platform::big_basin(Bytes::from_gib(32)),
        PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
        1600,
    )
    .expect("fits")
    .run();
    let zion = GpuTrainingSim::new(
        &model,
        &Platform::zion_prototype(),
        PlacementStrategy::SystemMemory,
        1600,
    )
    .expect("fits")
    .run();

    let mut table = Table::new(vec![
        "training setup",
        "throughput ex/s",
        "readers needed",
        "warehouse bandwidth",
    ]);
    let mut counts = Vec::new();
    for (name, report) in [
        ("dual-socket CPU (1 trainer + 2 PS)", &cpu),
        ("Big Basin (GPU memory)", &bb),
        ("Zion (system memory)", &zion),
    ] {
        let n = readers.readers_needed(&model, report.throughput());
        counts.push(n);
        table.push_row(vec![
            name.to_string(),
            format!("{:.0}", report.throughput()),
            n.to_string(),
            readers
                .warehouse_bandwidth(&model, report.throughput())
                .to_string()
                + "/s",
        ]);
    }
    out.tables.push(table);

    out.claims.push(Claim::new(
        "More performant training hardware utilizes more readers",
        format!(
            "CPU {} readers vs Big Basin {} vs Zion {}",
            counts[0], counts[1], counts[2]
        ),
        counts[1] > counts[0] && counts[2] > counts[0],
    ));
    out.claims.push(Claim::new(
        "Per-reader delivery rate is preprocessing-bound, well below the NIC line rate",
        format!("{:.0} ex/s per reader", readers.examples_per_second(&model)),
        readers.examples_per_second(&model)
            < recsim_hw::Link::ethernet_25g()
                .effective_bandwidth()
                .as_bytes_per_s()
                / model.example_bytes() as f64
                * 0.5,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
