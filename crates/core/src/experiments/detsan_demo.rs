//! A deliberately order-sensitive toy driver that the determinism
//! sanitizer must catch.
//!
//! Not in [`super::registry`]: this driver exists to *fail* `recsim verify
//! --detsan`, proving the sanitizer localizes a planted nondeterminism bug
//! to the exact stage and sweep point. The planted bug is the canonical
//! one: a floating-point reduction whose grouping depends on the worker
//! count, so the rounding — and therefore the result — changes with
//! `RECSIM_THREADS` even though every sweep point computes "the same" sum.
//! Only [`DIVERGENT_POINT`] carries values with enough magnitude spread
//! (±1e8 against 1.0) for the grouping to matter, so the sanitizer must
//! name that point, not just the driver.

use crate::sweep::sweep;
use crate::{Claim, Effort, ExperimentOutput};

/// The sweep point carrying the catastrophic-cancellation values — the one
/// the sanitizer must localize.
pub const DIVERGENT_POINT: u64 = 2;

/// Stage recorded once per sweep point, over the point's reduced sum.
pub const POINT_STAGE: &str = "demo/point-reduce";

/// The values of one sweep point. Every point sums 62 ones; the divergent
/// point brackets them with ±1e8, where f32 spacing is 8, so small addends
/// are absorbed differently depending on grouping.
fn point_values(point: u64) -> Vec<f32> {
    let mut values = vec![1.0f32; 62];
    if point == DIVERGENT_POINT {
        values.insert(0, 1.0e8);
        values.push(-1.0e8);
    }
    values
}

/// Sums `values` in `chunks` contiguous chunks with f32 accumulation, then
/// adds the chunk sums. The grouping (and thus the rounding) depends on
/// `chunks` — the exact bug the sanitizer's contract forbids.
fn chunked_sum(values: &[f32], chunks: usize) -> f32 {
    let chunks = chunks.clamp(1, values.len().max(1));
    let size = values.len().div_ceil(chunks).max(1);
    // detsan: reduction-order — deliberately worker-count-dependent
    // grouping; this IS the planted bug.
    let chunk_sums = values.chunks(size).map(|c| c.iter().sum::<f32>());
    chunk_sums.sum::<f32>()
}

/// Runs the demo sweep. Byte-identical across thread counts everywhere
/// *except* the planted reduction, which `recsim verify --detsan
/// detsan_demo` must pin to [`POINT_STAGE`] at point [`DIVERGENT_POINT`].
pub fn run(effort: Effort) -> ExperimentOutput {
    let points: Vec<u64> = (0..effort.pick(4, 8)).collect();
    let sums = sweep(&points, |&p| {
        let values = point_values(p);
        if recsim_detsan::enabled() {
            recsim_detsan::record("demo/datagen", recsim_detsan::digest_f32_slice(&values));
        }
        let sum = chunked_sum(&values, recsim_pool::thread_count());
        if recsim_detsan::enabled() {
            let mut d = recsim_detsan::StateDigest::new();
            d.write_f32(sum);
            recsim_detsan::record(POINT_STAGE, d.finish());
        }
        sum
    });
    // detsan: reduction-order — serial fold over the submission-ordered
    // sweep results, widened to f64.
    let total: f64 = sums.iter().map(|&s| f64::from(s)).sum();
    if recsim_detsan::enabled() {
        let mut d = recsim_detsan::StateDigest::new();
        d.write_f64(total);
        recsim_detsan::record("demo/fold", d.finish());
    }

    let mut out = ExperimentOutput::new(
        "detsan_demo",
        "determinism-sanitizer demo (plants an order-sensitive reduction)",
    );
    out.claims.push(Claim::new(
        "the demo sweep folds to a finite total",
        format!("total = {total}"),
        total.is_finite(),
    ));
    out.notes.push(format!(
        "chunked f32 sum over {} points: {total} — worker-count-dependent \
         by design; see DESIGN.md §11",
        points.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_changes_the_planted_points_sum() {
        let values = point_values(DIVERGENT_POINT);
        let serial = chunked_sum(&values, 1);
        let split = chunked_sum(&values, 4);
        assert_ne!(serial, split, "the planted values must be order-sensitive");
        let benign = point_values(0);
        assert_eq!(chunked_sum(&benign, 1), chunked_sum(&benign, 4));
    }
}
