//! autoshard — cost-model-driven automatic placement vs the static
//! Figure-8 strategies on the three production models (ISSUE 4 tentpole).
//!
//! For each production setup (M1/M2/M3 on Big Basin, Table III batch
//! sizes) the driver scores the four static Figure-8 strategies and the
//! three `recsim-shard` solvers on the same simulator, then compares
//! throughput, GPU load imbalance and bytes-per-tier. The refiner seeds
//! its local search with every feasible static plan, so its predicted
//! iteration time can never lose to the best static strategy — the claim
//! this experiment pins on every sweep point.

use crate::sweep::sweep;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::Table;
use recsim_shard::{static_plans, GreedySharder, PackSharder, RefineSharder, ShardPlan, Sharder};

/// One sweep point: every plan scored for one production model, plus the
/// refined plan's critical-path attribution (computed inside the parallel
/// closure, not serially afterwards).
struct Point {
    model: ProductionModelId,
    batch: u64,
    statics: Vec<ShardPlan>,
    autos: Vec<Result<ShardPlan, String>>,
    refine_attribution: Vec<(String, f64)>,
}

/// Compares auto-sharded placements against the static Figure-8 lineup.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "autoshard",
        "Cost-model-driven auto-sharding vs static Figure-8 placements \
         (M1/M2/M3 on Big Basin)",
    );
    let budget = effort.pick(4, 16);
    let platform = Platform::big_basin(Bytes::from_gib(32));
    let setups = [
        (ProductionModelId::M1, 1600u64),
        (ProductionModelId::M2, 3200),
        (ProductionModelId::M3, 800),
    ];

    // Parallel phase: one production model per sweep point. Each point
    // scores 4 static + 3 auto plans and attributes the refined plan's
    // critical path, so the expensive simulator work all rides the pool.
    let points: Vec<Point> = sweep(&setups, |&(model, batch)| {
        let config = production_model(model);
        let statics = static_plans(&config, &platform, batch);
        let solvers: [Box<dyn Sharder>; 3] = [
            Box::new(GreedySharder),
            Box::new(PackSharder),
            Box::new(RefineSharder::with_budget(budget)),
        ];
        let autos: Vec<Result<ShardPlan, String>> = solvers
            .iter()
            .map(|s| {
                s.shard(&config, &platform, batch)
                    .map_err(|e| e.to_string())
            })
            .collect();
        let refine_attribution = autos
            .last()
            .and_then(|r| r.as_ref().ok())
            .map(|plan| {
                let total = plan.iteration_time().as_secs();
                plan.report()
                    .attribution()
                    .iter()
                    .map(|(label, d)| {
                        let share = if total > 0.0 {
                            d.as_secs() / total
                        } else {
                            0.0
                        };
                        (label.clone(), share)
                    })
                    .collect()
            })
            .unwrap_or_default();
        Point {
            model,
            batch,
            statics,
            autos,
            refine_attribution,
        }
    });

    let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
    let mut refine_beats_static_everywhere = true;
    let mut all_autos_feasible = true;
    let mut refine_margins: Vec<String> = Vec::new();
    let mut imbalance_rows: Vec<String> = Vec::new();

    for point in &points {
        let mut table = Table::new(vec![
            "plan",
            "ex/s",
            "imbalance",
            "GPU GiB",
            "host GiB",
            "remote GiB",
        ]);
        let push_plan = |table: &mut Table, plan: &ShardPlan| {
            let (gpu, host, remote) = plan.bytes_per_tier();
            table.push_row(vec![
                plan.solver().to_string(),
                format!("{:.0}", plan.throughput()),
                format!("{:.2}", plan.gpu_imbalance()),
                format!("{:.1}", gib(gpu)),
                format!("{:.1}", gib(host)),
                format!("{:.1}", gib(remote)),
            ]);
        };
        for plan in &point.statics {
            push_plan(&mut table, plan);
        }
        for cell in &point.autos {
            match cell {
                Ok(plan) => push_plan(&mut table, plan),
                Err(e) => {
                    all_autos_feasible = false;
                    let mut row = vec![format!("({e})")];
                    row.resize(6, String::new());
                    table.push_row(row);
                }
            }
        }
        out.notes.push(format!(
            "{:?} @ batch {} — plans below; refiner budget {budget}",
            point.model, point.batch
        ));
        out.tables.push(table);

        let best_static_time = point
            .statics
            .iter()
            .map(|p| p.iteration_time().as_secs())
            .fold(f64::INFINITY, f64::min);
        if let Some(Ok(refined)) = point.autos.last() {
            let t = refined.iteration_time().as_secs();
            if t > best_static_time + 1e-12 {
                refine_beats_static_everywhere = false;
            }
            refine_margins.push(format!(
                "{:?}: refine {:.3} ms vs best static {:.3} ms",
                point.model,
                t * 1e3,
                best_static_time * 1e3
            ));
            imbalance_rows.push(format!("{:?} {:.2}", point.model, refined.gpu_imbalance()));
        } else {
            refine_beats_static_everywhere = false;
            refine_margins.push(format!("{:?}: refine infeasible", point.model));
        }

        // Per-point critical-path attribution of the refined plan, already
        // computed inside the parallel closure.
        if !point.refine_attribution.is_empty() {
            let mut attr = Table::new(vec!["refined critical path", "share"]);
            for (label, share) in point.refine_attribution.iter().take(4) {
                attr.push_row(vec![label.clone(), format!("{:.1}%", share * 100.0)]);
            }
            out.tables.push(attr);
        }
    }

    out.claims.push(Claim::new(
        "The refined auto-placement never loses to the best static Figure-8 \
         strategy on any production model (its search is seeded with every \
         feasible static plan)",
        refine_margins.join("; "),
        refine_beats_static_everywhere,
    ));
    out.claims.push(Claim::new(
        "Every solver produces a capacity-feasible, validated plan for all \
         three production models on Big Basin",
        format!(
            "{} auto plans scored across {} models",
            points
                .iter()
                .map(|p| p.autos.iter().filter(|c| c.is_ok()).count())
                .sum::<usize>(),
            points.len()
        ),
        all_autos_feasible,
    ));
    out.claims.push(Claim::new(
        "Auto-placement keeps GPU load imbalance bounded (max/mean under 2x) \
         wherever it fills HBM",
        imbalance_rows.join("; "),
        points.iter().all(|p| {
            p.autos.iter().flatten().all(|plan| {
                let (gpu, _, _) = plan.bytes_per_tier();
                gpu == 0 || plan.gpu_imbalance() < 2.0
            })
        }),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
