//! Figure 10 — throughput while varying dense and sparse feature counts on
//! CPU and GPU, plus the perf-per-watt comparison.

use crate::design_space::TestSuite;
use crate::sweep::{grid2, sweep_compact};
use crate::{Claim, Effort, ExperimentOutput};
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::Table;
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::{CpuClusterSetup, CpuTrainingSim, GpuTrainingSim, SimScratch};

/// One simulated (dense, sparse) grid point.
struct Point {
    dense: usize,
    sparse: usize,
    cpu_tput: f64,
    gpu_tput: f64,
    ppw: f64,
}

/// Sweeps the dense × sparse grid on both platforms.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig10",
        "Varying dense/sparse features on CPU and GPU + efficiency (paper Figure 10)",
    );
    let suite = TestSuite::default();
    let dense_axis = effort.pick(TestSuite::quick_dense_axis(), TestSuite::dense_axis());
    let sparse_axis = effort.pick(TestSuite::quick_sparse_axis(), TestSuite::sparse_axis());
    let bb = Platform::big_basin(Bytes::from_gib(32));

    // Parallel phase: each grid point is an independent pure simulation.
    let points = sweep_compact(&grid2(&dense_axis, &sparse_axis), |&(dense, sparse)| {
        let model = suite.model(dense, sparse);
        let mut scratch = SimScratch::new();
        let cpu = CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(suite.cpu_batch))
            .expect("single-trainer setup is valid")
            .run_in(&mut scratch);
        let gpu = GpuTrainingSim::new(
            &model,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            suite.gpu_batch,
        )
        .expect("test-suite tables fit HBM")
        .run_in(&mut scratch);
        Point {
            dense,
            sparse,
            cpu_tput: cpu.throughput(),
            gpu_tput: gpu.throughput(),
            ppw: gpu.perf_per_watt() / cpu.perf_per_watt(),
        }
    });

    // Serial fold, in submission (row-major) order — identical to the old
    // nested loop.
    let mut table = Table::new(vec![
        "dense",
        "sparse",
        "CPU ex/s",
        "GPU ex/s",
        "GPU/CPU",
        "GPU/CPU perf-per-watt",
    ]);
    let mut gpu_always_faster = true;
    // (dense, ppw ratio) at the smallest sparse count, to check the trend.
    let mut ppw_by_dense: Vec<(usize, f64)> = Vec::new();
    let mut tput_grid: Vec<(usize, usize, f64, f64)> = Vec::new();
    for p in &points {
        let ratio = p.gpu_tput / p.cpu_tput;
        gpu_always_faster &= ratio > 1.0;
        if p.sparse == sparse_axis[0] {
            ppw_by_dense.push((p.dense, p.ppw));
        }
        tput_grid.push((p.dense, p.sparse, p.cpu_tput, p.gpu_tput));
        table.push_row(vec![
            p.dense.to_string(),
            p.sparse.to_string(),
            format!("{:.0}", p.cpu_tput),
            format!("{:.0}", p.gpu_tput),
            format!("{ratio:.1}x"),
            format!("{:.1}x", p.ppw),
        ]);
    }
    out.tables.push(table);

    out.claims.push(Claim::new(
        "The throughput of the GPU setup is higher than the CPU setup in all configurations",
        "GPU > CPU at every grid point",
        gpu_always_faster,
    ));
    // Throughput falls as features increase (both axes), on both platforms.
    let corner = |d: usize, s: usize| {
        tput_grid
            .iter()
            .find(|&&(dd, ss, _, _)| dd == d && ss == s)
            .copied()
            .expect("grid corner present")
    };
    let small = corner(dense_axis[0], sparse_axis[0]);
    let big = corner(*dense_axis.last().unwrap(), *sparse_axis.last().unwrap());
    out.claims.push(Claim::new(
        "As the number of dense and sparse features increase, training throughput reduces",
        format!(
            "CPU {:.0} -> {:.0}, GPU {:.0} -> {:.0}",
            small.2, big.2, small.3, big.3
        ),
        big.2 < small.2 && big.3 < small.3,
    ));
    let ppw_first = ppw_by_dense.first().expect("non-empty").1;
    let ppw_last = ppw_by_dense.last().expect("non-empty").1;
    out.claims.push(Claim::new(
        "GPU power efficiency is highest for models with more dense features",
        format!(
            "GPU/CPU perf-per-watt at {} dense: {ppw_first:.1}x; at {} dense: {ppw_last:.1}x",
            ppw_by_dense.first().unwrap().0,
            ppw_by_dense.last().unwrap().0
        ),
        ppw_last > ppw_first,
    ));
    out.notes.push(
        "Fixed per the paper's caption: MLP 512^3, hash size 100000, batch 200 (CPU) and \
         1600 (GPU). CPU setup: one trainer + one dense + one sparse PS. In our \
         reproduction the GPU's perf-per-watt advantage is larger than the paper's \
         (which found a few CPU wins); the trend across dense features matches."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
        assert_eq!(out.tables[0].len(), 9);
    }
}
