//! Table III — CPU vs GPU optimal-setup comparison for the production
//! models.

use crate::setups::{optimal_batch, ProductionSetup};
use crate::sweep::sweep_compact;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::ProductionModelId;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::Table;

/// Regenerates Table III: optimal batch search, relative throughput and
/// power efficiency of the Big Basin ports against the production CPU
/// setups.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "table3",
        "CPU-GPU optimal setup comparison (paper Table III)",
    );
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let all_candidates: Vec<u64> =
        effort.pick(vec![400, 800, 1600, 3200], vec![200, 400, 800, 1600, 3200]);

    // Parallel phase: one production model per sweep point. The optimal
    // batch search inside each point is itself a serial candidate scan.
    let points = sweep_compact(&ProductionModelId::ALL, |&id| {
        let setup = ProductionSetup::for_model(id);
        let cpu = setup.simulate_cpu();
        let model = setup.model_config();
        // The paper's optimal batches (1600/3200/800) are quality-capped:
        // beyond them the loss regression was unacceptable. Search below
        // each model's cap.
        let candidates: Vec<u64> = all_candidates
            .iter()
            .copied()
            .filter(|&b| b <= setup.gpu_batch)
            .collect();
        let (best_batch, gpu) = optimal_batch(&model, &bb, setup.gpu_placement, &candidates)
            .expect("Table III placements fit");
        (
            format!(
                "{} trainers + {} PS",
                setup.cpu.trainers,
                setup.cpu.dense_ps + setup.cpu.sparse_ps
            ),
            setup.gpu_placement.label(),
            best_batch,
            gpu.throughput() / cpu.throughput(),
            gpu.perf_per_watt() / cpu.perf_per_watt(),
        )
    });

    let mut table = Table::new(vec![
        "model",
        "CPU setup",
        "GPU placement",
        "optimal GPU batch",
        "GPU/CPU throughput",
        "GPU/CPU perf-per-watt",
    ]);
    let mut ratios: Vec<(ProductionModelId, f64, f64)> = Vec::new();
    for (&id, (cpu_setup, placement, best_batch, tput_ratio, ppw_ratio)) in
        ProductionModelId::ALL.iter().zip(&points)
    {
        ratios.push((id, *tput_ratio, *ppw_ratio));
        table.push_row(vec![
            id.name().to_string(),
            cpu_setup.clone(),
            placement.clone(),
            best_batch.to_string(),
            format!("{tput_ratio:.2}x"),
            format!("{ppw_ratio:.2}x"),
        ]);
    }
    out.tables.push(table);

    let (_, m1_tput, m1_ppw) = ratios[0];
    let (_, m2_tput, m2_ppw) = ratios[1];
    let (_, m3_tput, m3_ppw) = ratios[2];
    out.claims.push(Claim::new(
        "M1 trains faster on a single Big Basin than on its production CPU setup \
         (paper: 2.25x) and is markedly more power-efficient (paper: 4.3x)",
        format!("throughput {m1_tput:.2}x, perf/W {m1_ppw:.2}x"),
        m1_tput > 1.0 && m1_ppw > m1_tput,
    ));
    out.claims.push(Claim::new(
        "M2 is near parity in throughput (paper: 0.85x) yet clearly ahead in power \
         efficiency (paper: 2.8x)",
        format!("throughput {m2_tput:.2}x, perf/W {m2_ppw:.2}x"),
        m2_tput < m1_tput && m2_ppw > 1.0,
    ));
    out.claims.push(Claim::new(
        "M3 (remote embedding placement) reaches neither the CPU setup's throughput \
         (paper: 0.67x) nor its power efficiency (paper: 0.43x)",
        format!("throughput {m3_tput:.2}x, perf/W {m3_ppw:.2}x"),
        m3_tput < 1.0 && m3_ppw < 1.0,
    ));
    out.notes.push(
        "Power: CPU setups draw (trainers + parameter servers) x the 600 W dual-socket \
         envelope; Big Basin draws its 7.3x envelope, plus remote PS servers for M3 — \
         the arithmetic behind the paper's 4.3x/2.8x/0.43x column."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
