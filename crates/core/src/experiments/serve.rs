//! serve — online inference serving: caches, micro-batching, and
//! tail-latency SLOs (ISSUE 9 tentpole).
//!
//! Training efficiency is only half of a recommendation model's life; the
//! trained DLRM then answers ranking queries under a tail-latency SLO.
//! This driver runs the `recsim-serve` discrete-event loop over three
//! sweeps on a stationary-Zipf workload priced by the `recsim-hw` memory
//! hierarchy:
//!
//! * **cache sweep** — hit rate and p99 across capacities for LRU,
//!   perfect-LFU, and the static-hot set (both replacement policies are
//!   stack algorithms, so hit rate must be monotone in capacity — checked);
//! * **batching sweep** — goodput-under-SLO across `max_batch`: small
//!   batches cannot amortize the per-batch launch overhead and the server
//!   overloads, huge batches spend the whole SLO waiting for the batch to
//!   fill — the goodput curve must peak at an interior knee (checked);
//! * **scenarios** — a traffic spike and a mid-run model push (stall +
//!   cold cache), reported with before/after tails.
//!
//! It then *executes* the priced schedule for real: a quick-trained DLRM
//! scores every generated request through `recsim_serve::execute_schedule`
//! under `prof::scope` instrumentation, so `recsim prof serve` sees the
//! serving ops on the measured side of the calibration join.

use crate::sweep::sweep;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::ModelConfig;
use recsim_serve::{
    execute_schedule, BatchPolicy, CachePolicy, EmbeddingCache, LatencyModel, ModelPush,
    ServeConfig, ServeReport, Spike, WorkloadConfig,
};
use recsim_train::trainer::{TrainRun, TrainerConfig};

/// The reference serving model: M-small DLRM over 4 sparse features of
/// 64Ki rows each (256Ki cacheable rows total).
fn serving_model() -> ModelConfig {
    ModelConfig::test_suite(8, 4, 65_536, &[64, 32])
}

/// One cache-sweep point.
struct CachePoint {
    policy: CachePolicy,
    capacity: usize,
    report: ServeReport,
}

/// One batching-sweep point.
struct BatchPoint {
    max_batch: usize,
    report: ServeReport,
}

fn cache_config(policy: CachePolicy, capacity: usize, duration_secs: f64) -> ServeConfig {
    ServeConfig {
        workload: WorkloadConfig::steady(0xC0FFEE, 4_000.0, duration_secs),
        policy,
        capacity_rows: capacity,
        batching: BatchPolicy::new(16, 2_000),
        slo_ms: 5.0,
        push: None,
    }
}

fn batch_config(max_batch: usize, duration_secs: f64) -> ServeConfig {
    ServeConfig {
        workload: WorkloadConfig::steady(0xBA7C4, 20_000.0, duration_secs),
        policy: CachePolicy::Lru,
        capacity_rows: 16_384,
        batching: BatchPolicy::new(max_batch, 4_000),
        slo_ms: 2.0,
        push: None,
    }
}

/// Sweeps cache capacity × policy, micro-batch size, and the spike/push
/// scenarios for the serving tier.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "serve",
        "Online inference serving: embedding-cache policies, micro-batch \
         knee, and tail-latency SLOs for a DLRM under open-loop Zipf load",
    );
    let model = serving_model();
    let latency = LatencyModel::closed_form(&model);

    // --- Cache sweep: capacity × policy. ---
    let capacities: &[usize] = if matches!(effort, Effort::Quick) {
        &[512, 2_048, 8_192, 32_768]
    } else {
        &[256, 1_024, 4_096, 16_384, 65_536]
    };
    let cache_duration = effort.pick(0.5, 1.5);
    let cache_grid: Vec<(CachePolicy, usize)> = CachePolicy::ALL
        .iter()
        .flat_map(|&p| capacities.iter().map(move |&c| (p, c)))
        .collect();
    let cache_points: Vec<CachePoint> = sweep(&cache_grid, |&(policy, capacity)| CachePoint {
        policy,
        capacity,
        report: recsim_serve::simulate(
            &model,
            &cache_config(policy, capacity, cache_duration),
            &latency,
        ),
    });

    let mut table = recsim_metrics::Table::new(vec![
        "capacity rows",
        "lru hit%",
        "lfu hit%",
        "static-hot hit%",
        "lru p99 ms",
    ]);
    for &capacity in capacities {
        let cell = |policy: CachePolicy, f: &dyn Fn(&ServeReport) -> String| {
            cache_points
                .iter()
                .find(|p| p.policy == policy && p.capacity == capacity)
                .map_or_else(String::new, |p| f(&p.report))
        };
        table.push_row(vec![
            format!("{capacity}"),
            cell(CachePolicy::Lru, &|r| format!("{:.1}", r.hit_rate * 100.0)),
            cell(CachePolicy::Lfu, &|r| format!("{:.1}", r.hit_rate * 100.0)),
            cell(CachePolicy::StaticHot, &|r| {
                format!("{:.1}", r.hit_rate * 100.0)
            }),
            cell(CachePolicy::Lru, &|r| format!("{:.3}", r.p99_ms)),
        ]);
    }
    out.notes.push(format!(
        "cache sweep: {} requests over {cache_duration} s of stationary Zipf load, \
         16-deep micro-batches",
        cache_points.first().map_or(0, |p| p.report.requests)
    ));
    out.tables.push(table);

    // Claim 1: every policy's hit rate is monotone non-decreasing in
    // capacity (LRU/LFU are stack algorithms; static-hot sets are nested).
    let mut monotone = true;
    let mut monotone_rows = Vec::new();
    for &policy in &CachePolicy::ALL {
        let series: Vec<f64> = capacities
            .iter()
            .filter_map(|&c| {
                cache_points
                    .iter()
                    .find(|p| p.policy == policy && p.capacity == c)
                    .map(|p| p.report.hit_rate)
            })
            .collect();
        let ok = series.windows(2).all(|w| w[1] >= w[0] - 1e-12);
        if !ok {
            monotone = false;
        }
        monotone_rows.push(format!(
            "{}: {}",
            policy.name(),
            series
                .iter()
                .map(|h| format!("{:.1}%", h * 100.0))
                .collect::<Vec<_>>()
                .join(" → ")
        ));
    }
    out.claims.push(Claim::new(
        "Embedding-cache hit rate is monotone non-decreasing in capacity for \
         every policy (LRU and perfect-LFU satisfy the stack-algorithm \
         inclusion property; static-hot sets are nested)",
        monotone_rows.join("; "),
        monotone,
    ));

    // Claim 2: on a stationary Zipf workload the oracle static-hot set
    // meets or beats LRU at every capacity (requests are independent
    // draws, so popularity is the only signal and top-k-by-frequency is
    // the optimal static placement).
    let mut static_wins = true;
    let mut win_rows = Vec::new();
    for &capacity in capacities {
        let rate = |policy| {
            cache_points
                .iter()
                .find(|p| p.policy == policy && p.capacity == capacity)
                .map_or(0.0, |p| p.report.hit_rate)
        };
        let (hot, lru) = (rate(CachePolicy::StaticHot), rate(CachePolicy::Lru));
        if hot < lru - 1e-12 {
            static_wins = false;
        }
        win_rows.push(format!(
            "{capacity}: hot {:.1}% vs lru {:.1}%",
            hot * 100.0,
            lru * 100.0
        ));
    }
    out.claims.push(Claim::new(
        "The static-hot set meets or beats LRU at every capacity on the \
         stationary Zipf workload",
        win_rows.join("; "),
        static_wins,
    ));

    // --- Batching sweep: goodput-under-SLO across max_batch. ---
    let batch_grid: Vec<usize> = (0..effort.pick(9, 11)).map(|k| 1usize << k).collect();
    let batch_duration = effort.pick(0.25, 1.0);
    let batch_points: Vec<BatchPoint> = sweep(&batch_grid, |&max_batch| BatchPoint {
        max_batch,
        report: recsim_serve::simulate(&model, &batch_config(max_batch, batch_duration), &latency),
    });

    let mut table = recsim_metrics::Table::new(vec![
        "max batch",
        "goodput rps",
        "slo attainment",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "mean batch",
    ]);
    for p in &batch_points {
        table.push_row(vec![
            format!("{}", p.max_batch),
            format!("{:.0}", p.report.goodput_rps),
            format!("{:.1}%", p.report.slo_attainment * 100.0),
            format!("{:.3}", p.report.p50_ms),
            format!("{:.3}", p.report.p99_ms),
            format!("{:.3}", p.report.p999_ms),
            format!("{:.1}", p.report.mean_batch),
        ]);
    }
    out.notes.push(format!(
        "batching sweep: 20 krps offered against a {:.0} µs per-batch launch \
         overhead, SLO 2 ms, max delay 4 ms",
        latency.batch_overhead_us
    ));
    out.tables.push(table);

    // Claim 3: goodput rises to an interior knee, then tails off — tiny
    // batches overload on launch overhead, huge batches burn the SLO
    // filling.
    let best = batch_points
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.report.goodput_rps.total_cmp(&b.1.report.goodput_rps))
        .map_or(0, |(i, _)| i);
    let interior = batch_points.len() >= 3 && best > 0 && best < batch_points.len() - 1;
    let knee_holds = interior && {
        let first = batch_points.first().map_or(0.0, |p| p.report.goodput_rps);
        let last = batch_points.last().map_or(0.0, |p| p.report.goodput_rps);
        let peak = batch_points[best].report.goodput_rps;
        peak > first && peak > last
    };
    out.claims.push(Claim::new(
        "Micro-batching raises goodput-under-SLO to an interior knee and \
         then tails off (launch-overhead overload below, fill-delay SLO \
         burn above)",
        format!(
            "knee at max_batch {} ({:.0} rps), endpoints {:.0}/{:.0} rps",
            batch_points[best].max_batch,
            batch_points[best].report.goodput_rps,
            batch_points.first().map_or(0.0, |p| p.report.goodput_rps),
            batch_points.last().map_or(0.0, |p| p.report.goodput_rps),
        ),
        knee_holds,
    ));

    // --- Scenarios: traffic spike and model push, at the knee. ---
    let knee_batch = batch_points[best].max_batch;
    let scenario_duration = effort.pick(0.5, 1.0);
    let spike_cfg = ServeConfig {
        workload: WorkloadConfig {
            spike: Some(Spike {
                start_secs: scenario_duration * 0.4,
                duration_secs: scenario_duration * 0.2,
                multiplier: 6.0,
            }),
            ..WorkloadConfig::steady(0x5E1C, 8_000.0, scenario_duration)
        },
        policy: CachePolicy::Lru,
        capacity_rows: 16_384,
        batching: BatchPolicy::new(knee_batch, 4_000),
        slo_ms: 2.0,
        push: None,
    };
    let push_cfg = ServeConfig {
        push: Some(ModelPush {
            at_secs: scenario_duration * 0.5,
            stall_us: 20_000,
        }),
        workload: WorkloadConfig::steady(0x9054, 8_000.0, scenario_duration),
        ..spike_cfg.clone()
    };
    let scenario_points: Vec<(&str, ServeReport)> = sweep(
        &[("traffic-spike", spike_cfg), ("model-push", push_cfg)],
        |(name, cfg)| (*name, recsim_serve::simulate(&model, cfg, &latency)),
    );

    let mut table = recsim_metrics::Table::new(vec![
        "scenario",
        "offered rps",
        "goodput rps",
        "p99 ms",
        "p999 ms",
        "hit%",
    ]);
    for (name, report) in &scenario_points {
        table.push_row(vec![
            (*name).to_string(),
            format!("{:.0}", report.offered_rps),
            format!("{:.0}", report.goodput_rps),
            format!("{:.3}", report.p99_ms),
            format!("{:.3}", report.p999_ms),
            format!("{:.1}", report.hit_rate * 100.0),
        ]);
    }
    out.tables.push(table);
    if let Some((_, report)) = scenario_points.iter().find(|(n, _)| *n == "model-push") {
        if let Some(push) = &report.push {
            out.notes.push(format!(
                "model push: p99 {:.3} → {:.3} ms, hit rate {:.1}% → {:.1}% \
                 across the swap ({:.0} ms weight-transfer stall)",
                push.pre_p99_ms,
                push.post_p99_ms,
                push.pre_hit_rate * 100.0,
                push.post_hit_rate * 100.0,
                push.stall_ms,
            ));
        }
    }
    if let Some((_, report)) = scenario_points.iter().find(|(n, _)| *n == "traffic-spike") {
        out.notes.push(format!(
            "traffic spike: 6x burst holds {:.1}% of requests inside the 2 ms \
             SLO; attribution {}",
            report.slo_attainment * 100.0,
            report
                .attribution
                .iter()
                .map(|(label, share)| format!("{label} {:.0}%", share * 100.0))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }

    // --- Real execution: the priced schedule through a trained DLRM. ---
    // This is what `recsim prof serve` profiles: the serve ops
    // (`serve/batch`, `serve/cache`, `serve/step`) open real scopes here.
    let exec_model = ModelConfig::test_suite(8, 4, 2_048, &[16, 8]);
    let trained = TrainRun::new(&exec_model, TrainerConfig::quick_test()).execute();
    let exec_cfg = ServeConfig {
        workload: WorkloadConfig::steady(0xE8EC, 2_000.0, effort.pick(0.25, 0.5)),
        policy: CachePolicy::Lru,
        capacity_rows: 512,
        batching: BatchPolicy::new(16, 2_000),
        slo_ms: 5.0,
        push: None,
    };
    let exec_latency = LatencyModel::closed_form(&exec_model);
    let (requests, batches) = recsim_serve::schedule(&exec_model, &exec_cfg, &exec_latency);
    let mut cache = EmbeddingCache::new(CachePolicy::Lru, 512);
    let summary = execute_schedule(
        trained.model(),
        &exec_model,
        &requests,
        &batches,
        &mut cache,
        0xE8EC,
    );
    out.notes.push(format!(
        "real execution: {} examples in {} micro-batches through the trained \
         model (held-out NE {:.3}), mean click score {:.3}, cache hit rate \
         {:.1}%, score digest {:#018x}",
        summary.examples,
        summary.batches,
        trained.final_ne(),
        summary.mean_score,
        100.0 * summary.hits as f64 / (summary.hits + summary.misses).max(1) as f64,
        summary.score_digest,
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
