//! Figure 5 — utilization distributions across repeated training runs.
//!
//! The paper measures one ranking model trained repeatedly at a fixed scale
//! over a week and finds wide utilization distributions, wider for
//! parameter servers than for trainers. We regenerate that population by
//! jittering the model configuration run-to-run (feature-set churn) and
//! applying multiplicative system noise, then simulating each run.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::fleet::FleetSampler;
use recsim_data::schema::{Interaction, ModelConfig, SparseFeatureSpec};
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::{Summary, Table};
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::variability::{HardwareNoise, VariabilityStudy};
use recsim_sim::{CpuClusterSetup, CpuTrainingSim};

fn jittered_model(base: &ModelConfig, factor: f64) -> ModelConfig {
    let sparse = base
        .sparse_features()
        .iter()
        .map(|f| {
            SparseFeatureSpec::new(
                f.name(),
                ((f.hash_size() as f64 * factor) as u64).max(30),
                (f.mean_lookups() * factor).max(1.0),
            )
        })
        .collect();
    ModelConfig::new(
        format!("{}-jitter", base.name()),
        ((base.num_dense() as f64 * factor) as usize).max(8),
        sparse,
        base.embedding_dim(),
        base.bottom_mlp().to_vec(),
        base.top_mlp().to_vec(),
        Interaction::DotProduct,
        base.truncation(),
    )
}

/// Regenerates the utilization-distribution boxes.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig05",
        "Utilization distribution of a ranking model at fixed scale (paper Figure 5)",
    );
    let runs = effort.pick(40, 400);
    let base = ModelConfig::test_suite(256, 24, 1_000_000, &[512, 512, 512]);
    let scale = CpuClusterSetup {
        trainers: 4,
        dense_ps: 2,
        sparse_ps: 2,
        hogwild_threads: 1,
        batch_per_thread: 200,
        sync_period: 16,
    };
    let mut fleet = FleetSampler::new(0x0F16_0005);

    let mut trainer_cpu = Summary::new();
    let mut trainer_nic = Summary::new();
    let mut ps_cpu = Summary::new();
    let mut ps_nic = Summary::new();
    let mut attribution_gap = Summary::new();
    let mut mlp_share = Summary::new();
    for _ in 0..runs {
        let config_factor = fleet.sample_config_variation();
        let model = jittered_model(&base, config_factor);
        let Ok(sim) = CpuTrainingSim::new(&model, scale) else {
            // Jitter keeps every dimension above the validity floor; an
            // invalid draw would only thin the population, not skew it.
            continue;
        };
        let report = sim.run();
        let noise = fleet.sample_system_noise();
        let push = |summary: &mut Summary, prefix: &str, suffix: &str| {
            let picked = report.mean_utilization(|n| n.starts_with(prefix) && n.ends_with(suffix));
            if let Some(mean) = picked {
                summary.push((mean * noise).clamp(0.0, 1.0));
            }
        };
        push(&mut trainer_cpu, "trainer", "_cpu");
        push(&mut trainer_nic, "trainer", "_nic");
        push(&mut ps_cpu, "sparse_ps", "_cpu");
        push(&mut ps_nic, "sparse_ps", "_nic");
        // Critical-path attribution of the same run: the breakdown must
        // repartition the reported iteration time, and the Hogwild dense
        // stack's share is what the trainer-CPU utilization reflects.
        let total = report.iteration_time().as_secs();
        let attributed: f64 = report.attribution().iter().map(|(_, d)| d.as_secs()).sum();
        attribution_gap.push((attributed - total).abs() / total);
        mlp_share.push(
            report
                .attributed_to("mlp compute")
                .map_or(0.0, |d| d.as_secs() / total),
        );
    }

    let mut table = Table::new(vec![
        "resource", "p5", "p25", "p50", "p75", "p95", "mean", "cv",
    ]);
    let mut render = |name: &str, s: &mut Summary| -> (f64, f64) {
        let (p5, p25, p50, p75, p95) = s.whiskers();
        let mean = s.mean();
        let cv = if mean > 0.0 { s.std_dev() / mean } else { 0.0 };
        table.push_row(vec![
            name.to_string(),
            format!("{p5:.3}"),
            format!("{p25:.3}"),
            format!("{p50:.3}"),
            format!("{p75:.3}"),
            format!("{p95:.3}"),
            format!("{mean:.3}"),
            format!("{cv:.3}"),
        ]);
        (mean, cv)
    };
    let (t_mean, t_cv) = render("trainer CPU", &mut trainer_cpu);
    render("trainer network", &mut trainer_nic);
    let (p_mean, p_cv) = render("sparse PS CPU", &mut ps_cpu);
    render("sparse PS network", &mut ps_nic);
    out.tables.push(table);

    out.claims.push(Claim::new(
        "Trainer servers show high CPU utilization with relatively small variation",
        format!("trainer mean {t_mean:.2}, cv {t_cv:.2}"),
        t_mean > 0.5 && t_cv < 0.35,
    ));
    out.claims.push(Claim::new(
        "Parameter-server utilization is lower on average with a wider distribution",
        format!(
            "PS mean {p_mean:.2} (< trainer {t_mean:.2}), PS cv {p_cv:.2} (> trainer {t_cv:.2})"
        ),
        p_mean < t_mean && p_cv > t_cv,
    ));
    let gap = attribution_gap.mean();
    let share = mlp_share.mean();
    out.claims.push(Claim::new(
        "Critical-path attribution repartitions the reported iteration time, so the \
         figure consumes the breakdown instead of recomputing from raw busy-times",
        format!(
            "mean |attributed - iteration|/iteration = {gap:.2e}; Hogwild MLP share {share:.2}"
        ),
        gap < 1e-2 && share > 0.0,
    ));
    out.notes.push(format!(
        "{runs} simulated runs; run-to-run config jitter (log-normal feature churn) plus \
         multiplicative system noise reproduce the paper's variability attribution."
    ));

    // The hardware-level component of the spread, isolated: identical model
    // config, GPUs independently derated per run.
    let gpu_runs = effort.pick(10, 60);
    let study = match VariabilityStudy::run(
        &ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]),
        &Platform::big_basin(Bytes::from_gib(32)),
        PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
        1600,
        HardwareNoise::default(),
        gpu_runs,
        0x0F16_5005,
    ) {
        Ok(study) => study,
        Err(e) => {
            out.claims.push(Claim::new(
                "Hardware-noise variability study runs on the fixed GPU setup",
                format!("study rejected: {e}"),
                false,
            ));
            return out;
        }
    };
    let mut summary = study.summary();
    let (p5, _, p50, _, p95) = summary.whiskers();
    let mut table = Table::new(vec!["GPU-fleet throughput under hardware noise", "value"]);
    table.push_row(vec![
        "nominal ex/s".into(),
        format!("{:.0}", study.nominal_throughput()),
    ]);
    table.push_row(vec!["p5".into(), format!("{p5:.0}")]);
    table.push_row(vec!["p50".into(), format!("{p50:.0}")]);
    table.push_row(vec!["p95".into(), format!("{p95:.0}")]);
    table.push_row(vec![
        "mean loss to noise".into(),
        format!("{:.1}%", study.mean_loss() * 100.0),
    ]);
    out.tables.push(table);
    out.claims.push(Claim::new(
        "Hardware-level variability alone produces run-to-run throughput spread (the \
         slowest worker paces data-parallel training)",
        format!(
            "p5/p95 = {:.2} with identical configs ({gpu_runs} noisy fleets)",
            p5 / p95
        ),
        p5 < p95 && study.mean_loss() > 0.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
