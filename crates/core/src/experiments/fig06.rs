//! Figure 6 — hash size vs mean feature length of the production models'
//! embedding tables.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_metrics::{Figure, Series, Table};

/// Regenerates the per-table scatter of hash size against mean lookups.
pub fn run(_effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig06",
        "Hash size vs mean feature length per embedding table (paper Figure 6)",
    );
    let mut figure = Figure::new(
        "hash size vs mean feature length",
        "log10(hash size)",
        "mean lookups",
    );
    let mut table = Table::new(vec![
        "model",
        "tables",
        "min hash",
        "max hash",
        "mean hash",
        "hot small tables",
    ]);

    let mut all_within_range = true;
    let mut some_hot_small = false;
    for id in ProductionModelId::ALL {
        let model = production_model(id);
        let mut series = Series::new(id.name());
        let mut min_hash = u64::MAX;
        let mut max_hash = 0u64;
        let mut sum_hash = 0u64;
        let mean_lookups = model.mean_lookups_per_feature();
        let mut hot_small = 0usize;
        for f in model.sparse_features() {
            series.push((f.hash_size() as f64).log10(), f.mean_lookups());
            min_hash = min_hash.min(f.hash_size());
            max_hash = max_hash.max(f.hash_size());
            sum_hash += f.hash_size();
            all_within_range &= (30..=20_000_000).contains(&f.hash_size());
            // "some of the most accessed tables are relatively small":
            // above-twice-mean access with a below-mean hash size.
            let mean_hash = model
                .sparse_features()
                .iter()
                .map(recsim_data::SparseFeatureSpec::hash_size)
                .sum::<u64>() as f64
                / model.num_sparse() as f64;
            if f.mean_lookups() > 2.0 * mean_lookups && (f.hash_size() as f64) < mean_hash {
                hot_small += 1;
            }
        }
        some_hot_small |= hot_small > 0;
        table.push_row(vec![
            id.name().to_string(),
            model.num_sparse().to_string(),
            min_hash.to_string(),
            max_hash.to_string(),
            format!("{:.2e}", sum_hash as f64 / model.num_sparse() as f64),
            hot_small.to_string(),
        ]);
        figure.push_series(series);
    }
    out.tables.push(table);
    out.figures.push(figure);

    out.claims.push(Claim::new(
        "Hash sizes range from 30 (smallest) to 20 million (largest)",
        "all generated tables inside [30, 2e7]",
        all_within_range,
    ));
    out.claims.push(Claim::new(
        "Access frequency does not always correlate with table size — some of the most \
         accessed tables are relatively small",
        "found heavily-accessed below-mean-size tables",
        some_hot_small,
    ));
    // Quantify it: the per-table correlation between log hash size and mean
    // lookups is weak in every model.
    let mut max_abs_r: f64 = 0.0;
    for id in ProductionModelId::ALL {
        let model = production_model(id);
        let hashes: Vec<f64> = model
            .sparse_features()
            .iter()
            .map(|f| (f.hash_size() as f64).log10())
            .collect();
        let lookups: Vec<f64> = model
            .sparse_features()
            .iter()
            .map(recsim_data::SparseFeatureSpec::mean_lookups)
            .collect();
        max_abs_r = max_abs_r.max(recsim_metrics::stats::pearson(&hashes, &lookups).abs());
    }
    out.claims.push(Claim::new(
        "Hash size and access frequency are at most weakly correlated per table",
        format!("max |Pearson r| across models: {max_abs_r:.2}"),
        max_abs_r < 0.5,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
        assert_eq!(out.figures[0].series().len(), 3);
    }
}
