//! Figure 1 — relative throughput of the three production models across
//! hardware and placement choices.

use crate::setups::ProductionSetup;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::ProductionModelId;
use recsim_metrics::Table;

/// Simulates M1/M2/M3 on their production CPU setups, their Big Basin
/// ports, and Zion, reporting throughput relative to the CPU baseline.
pub fn run(_effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig01",
        "Throughput of three production models across platforms (paper Figure 1)",
    );
    let mut table = Table::new(vec![
        "model",
        "CPU setup ex/s",
        "Big Basin ex/s (rel)",
        "Zion ex/s (rel)",
        "BB embedding placement",
    ]);
    let mut rel: Vec<(ProductionModelId, f64, f64)> = Vec::new();
    for id in ProductionModelId::ALL {
        let setup = ProductionSetup::for_model(id);
        let cpu = setup.simulate_cpu().throughput();
        let bb = setup.simulate_big_basin().throughput();
        let zion = setup.simulate_zion().throughput();
        rel.push((id, bb / cpu, zion / cpu));
        table.push_row(vec![
            id.name().to_string(),
            format!("{cpu:.0}"),
            format!("{bb:.0} ({:.2}x)", bb / cpu),
            format!("{zion:.0} ({:.2}x)", zion / cpu),
            setup.gpu_placement.label(),
        ]);
    }
    out.tables.push(table);

    let m1 = rel[0];
    let m2 = rel[1];
    let m3 = rel[2];
    out.claims.push(Claim::new(
        "Both GPU platforms beat the production CPU setups for M1/M2, and the gains vary \
         with model parameters",
        format!(
            "M1: BB {:.2}x / Zion {:.2}x; M2: BB {:.2}x / Zion {:.2}x",
            m1.1, m1.2, m2.1, m2.2
        ),
        m1.1 > 1.0 && m1.2 > 1.0 && m2.1 > 1.0 && m2.2 > 1.0 && (m1.1 - m2.1).abs() > 0.1,
    ));
    out.claims.push(Claim::new(
        "M3 shows weaker scaling on Big Basin because of its embedding memory requirement \
         (remote placement), while Zion recovers it",
        format!("M3: BB {:.2}x, Zion {:.2}x over CPU", m3.1, m3.2),
        m3.1 < m1.1 && m3.1 < 1.0 && m3.2 > m3.1 && m3.2 > 1.0,
    ));
    out.notes.push(
        "Relative throughput is normalized per model to its production CPU setup, as in \
         the paper's Figure 1."
            .into(),
    );
    out.notes.push(
        "Deviation: the paper's Figure 1 shows Zion ahead of Big Basin for every model; \
         in our model Big Basin keeps the lead for M1 (its tables fit HBM and its NVLink \
         carries the exchanges), while Zion leads for M2 and M3."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
