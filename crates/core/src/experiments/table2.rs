//! Table II — descriptions of the three production models.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_metrics::Table;

fn mlp_label(widths: &[usize]) -> String {
    widths
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("-")
}

/// Regenerates Table II from the generated production model stand-ins.
pub fn run(_effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "table2",
        "Descriptions of three production models (paper Table II)",
    );
    let models: Vec<_> = ProductionModelId::ALL
        .iter()
        .map(|&id| (id, production_model(id)))
        .collect();

    let mut table = Table::new(vec!["", "M1_prod", "M2_prod", "M3_prod"]);
    let row = |label: &str, f: &dyn Fn(&recsim_data::schema::ModelConfig) -> String| {
        let mut cells = vec![label.to_string()];
        for (_, m) in &models {
            cells.push(f(m));
        }
        cells
    };
    table.push_row(row("# Sparse Features", &|m| m.num_sparse().to_string()));
    table.push_row(row("# Dense Features", &|m| m.num_dense().to_string()));
    table.push_row(row("Embedding Size [GiB]", &|m| {
        format!(
            "{:.0}",
            m.total_embedding_bytes() as f64 / (1u64 << 30) as f64
        )
    }));
    table.push_row(row("Embedding Lookups (mean/feature)", &|m| {
        format!("{:.0}", m.mean_lookups_per_feature())
    }));
    table.push_row(row("Bottom MLP Dimensions", &|m| mlp_label(m.bottom_mlp())));
    table.push_row(row("Top MLP Dimensions", &|m| mlp_label(m.top_mlp())));
    out.tables.push(table);

    let gib = |id: ProductionModelId| {
        production_model(id).total_embedding_bytes() as f64 / (1u64 << 30) as f64
    };
    out.claims.push(Claim::new(
        "M1/M2 embeddings are tens of GBs; M3's are hundreds",
        format!(
            "M1 {:.0} GiB, M2 {:.0} GiB, M3 {:.0} GiB",
            gib(ProductionModelId::M1),
            gib(ProductionModelId::M2),
            gib(ProductionModelId::M3)
        ),
        (10.0..100.0).contains(&gib(ProductionModelId::M1))
            && (10.0..100.0).contains(&gib(ProductionModelId::M2))
            && (100.0..1000.0).contains(&gib(ProductionModelId::M3)),
    ));
    let (m1, m2, m3) = (
        production_model(ProductionModelId::M1),
        production_model(ProductionModelId::M2),
        production_model(ProductionModelId::M3),
    );
    out.claims.push(Claim::new(
        "Feature counts: 30/800, 13/504, 127/809 sparse/dense",
        format!(
            "{}/{}, {}/{}, {}/{}",
            m1.num_sparse(),
            m1.num_dense(),
            m2.num_sparse(),
            m2.num_dense(),
            m3.num_sparse(),
            m3.num_dense()
        ),
        m1.num_sparse() == 30
            && m1.num_dense() == 800
            && m2.num_sparse() == 13
            && m2.num_dense() == 504
            && m3.num_sparse() == 127
            && m3.num_dense() == 809,
    ));
    out.claims.push(Claim::new(
        "Mean lookups per feature: ~28 / ~17 / ~49",
        format!(
            "{:.1} / {:.1} / {:.1}",
            m1.mean_lookups_per_feature(),
            m2.mean_lookups_per_feature(),
            m3.mean_lookups_per_feature()
        ),
        (m1.mean_lookups_per_feature() / 28.0 - 1.0).abs() < 0.1
            && (m2.mean_lookups_per_feature() / 17.0 - 1.0).abs() < 0.1
            && (m3.mean_lookups_per_feature() / 49.0 - 1.0).abs() < 0.1,
    ));
    out.notes.push(
        "Per-table hash sizes and lookup counts are generated to match the paper's \
         disclosed aggregates (Table II + Section III.A); embedding dimension 64 is an \
         assumption that lands the sizes in the disclosed GiB bands."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
