//! Figure 12 — hash-size scaling on CPU and GPU.
//!
//! On the CPU parameter server, growing hash sizes change the table size
//! but barely the lookup cost. On the GPU server, growth first forces the
//! tables out of the single-GPU replicated regime into a distributed one
//! (adding per-table all-to-alls), then out of HBM entirely (hybrid spill
//! to host memory) — the paper's "more GPUs need to be used … and this
//! increases the communication cost".

use crate::design_space::TestSuite;
use crate::setups::gpu_with_fallback;
use crate::sweep::sweep_compact;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::{Figure, Series, Table};
use recsim_placement::plan::min_gpus_needed;
use recsim_sim::{CpuClusterSetup, CpuTrainingSim, SimScratch};

/// Sweeps the shared hash size on both platforms.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig12",
        "Hash-size scaling on CPU and GPU (paper Figure 12)",
    );
    let suite = TestSuite::default();
    let hashes = effort.pick(
        vec![10_000, 1_000_000, 50_000_000, 100_000_000],
        TestSuite::hash_axis(),
    );
    let bb = Platform::big_basin(Bytes::from_gib(32));

    // Parallel phase: one hash size per sweep point.
    let points = sweep_compact(&hashes, |&hash| {
        let model = ModelConfig::test_suite(256, 16, hash, &suite.mlp);
        let mut scratch = SimScratch::new();
        let cpu = CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(suite.cpu_batch))
            .expect("single-trainer setup is valid")
            .run_in(&mut scratch);
        let gpus = min_gpus_needed(&model, &bb, 2.0).map_or_else(|| ">8".into(), |g| g.to_string());
        let gpu = gpu_with_fallback(&model, &bb, suite.gpu_batch)
            .map(|(report, strategy)| (report.throughput(), strategy.label()));
        (cpu.throughput(), gpu, gpus)
    });

    let mut cpu_series = Series::new("CPU");
    let mut gpu_series = Series::new("GPU");
    let mut table = Table::new(vec![
        "hash size",
        "CPU ex/s",
        "GPU ex/s",
        "GPU placement",
        "min GPUs for tables",
    ]);
    for (&hash, (cpu_tput, gpu, gpus)) in hashes.iter().zip(&points) {
        cpu_series.push((hash as f64).log10(), *cpu_tput);
        match gpu {
            Some((gpu_tput, strategy_label)) => {
                gpu_series.push((hash as f64).log10(), *gpu_tput);
                table.push_row(vec![
                    format!("{hash:.0e}"),
                    format!("{cpu_tput:.0}"),
                    format!("{gpu_tput:.0}"),
                    strategy_label.clone(),
                    gpus.clone(),
                ]);
            }
            None => {
                table.push_row(vec![
                    format!("{hash:.0e}"),
                    format!("{cpu_tput:.0}"),
                    "-".into(),
                    "does not fit".into(),
                    gpus.clone(),
                ]);
            }
        }
    }
    out.tables.push(table);

    let cpu_first = cpu_series.points().first().expect("non-empty").1;
    let cpu_last = cpu_series.points().last().expect("non-empty").1;
    out.claims.push(Claim::new(
        "Increasing hash size does not significantly affect CPU throughput",
        format!(
            "CPU changes {:.0}% across four decades",
            (cpu_last / cpu_first - 1.0) * 100.0
        ),
        (cpu_last / cpu_first - 1.0).abs() < 0.25,
    ));
    let gpu_first = gpu_series.points().first().expect("non-empty").1;
    let gpu_last = gpu_series.points().last().expect("non-empty").1;
    out.claims.push(Claim::new(
        "GPU throughput drops significantly as hash size scales (tables spread over more \
         GPUs, communication grows, and eventually spill to host memory)",
        format!(
            "GPU falls to {:.2}x of its small-hash throughput",
            gpu_last / gpu_first
        ),
        gpu_last < 0.5 * gpu_first,
    ));
    out.figures.push(
        Figure::new("hash-size scaling", "log10(hash size)", "examples/s")
            .with_series(cpu_series)
            .with_series(gpu_series),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
