//! Table I — hardware platform details.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::Table;

/// Regenerates Table I from the `recsim-hw` platform presets.
pub fn run(_effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("table1", "Hardware platform details (paper Table I)");
    let cpu = Platform::dual_socket_cpu();
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let zion = Platform::zion_prototype();

    let mut table = Table::new(vec![
        "",
        "CPU System",
        "Big Basin GPU System",
        "Prototype Zion GPU System",
    ]);
    let gpus = |p: &Platform| {
        if p.has_gpus() {
            format!("{} NVIDIA V100", p.gpus().len())
        } else {
            "-".to_string()
        }
    };
    table.push_row(vec![
        "Accelerators".into(),
        gpus(&cpu),
        gpus(&bb),
        gpus(&zion),
    ]);
    let gpu_mem = |p: &Platform| {
        p.gpus()
            .first()
            .map_or_else(|| "-".into(), |g| g.memory().capacity().to_string())
    };
    table.push_row(vec![
        "Accelerator Memory".into(),
        gpu_mem(&cpu),
        "16/32 GiB".into(),
        gpu_mem(&zion),
    ]);
    table.push_row(vec![
        "System Memory".into(),
        cpu.host().memory().capacity().to_string(),
        bb.host().memory().capacity().to_string(),
        zion.host().memory().capacity().to_string(),
    ]);
    table.push_row(vec![
        "System Memory BW".into(),
        cpu.host().memory().stream_bandwidth().to_string(),
        bb.host().memory().stream_bandwidth().to_string(),
        zion.host().memory().stream_bandwidth().to_string(),
    ]);
    table.push_row(vec![
        "Interconnect".into(),
        format!("{}", cpu.network().bandwidth()),
        format!("{}", bb.network().bandwidth()),
        format!("{}", zion.network().bandwidth()),
    ]);
    table.push_row(vec![
        "Power envelope".into(),
        cpu.power().envelope().to_string(),
        bb.power().envelope().to_string(),
        zion.power().envelope().to_string(),
    ]);
    out.tables.push(table);

    out.claims.push(Claim::new(
        "Zion has ~2 TB system memory and ~1 TB/s bandwidth (Table I)",
        format!(
            "{} at {}",
            zion.host().memory().capacity(),
            zion.host().memory().stream_bandwidth()
        ),
        zion.host().memory().capacity() == Bytes::from_tib(2)
            && zion.host().memory().stream_bandwidth().as_gb_per_s() >= 1000.0,
    ));
    out.claims.push(Claim::new(
        "Big Basin's power capacity is 7.3x the dual-socket CPU server",
        format!(
            "{:.1}x",
            bb.power().envelope().as_watts() / cpu.power().envelope().as_watts()
        ),
        (bb.power().envelope().as_watts() / cpu.power().envelope().as_watts() - 7.3).abs() < 0.01,
    ));
    out.claims.push(Claim::new(
        "Both GPU platforms carry eight V100s",
        format!("BB: {}, Zion: {}", bb.gpus().len(), zion.gpus().len()),
        bb.gpus().len() == 8 && zion.gpus().len() == 8,
    ));
    out.notes.push(
        "Zion's power envelope is an assumption (the paper discloses only Big Basin's 7.3x); \
         see DESIGN.md."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].len(), 6);
    }
}
