//! Figure 2 — frequency and duration of training workloads.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::fleet::{FleetSampler, WorkloadClass};
use recsim_metrics::{OnlineStats, Series, Table};

/// Samples the fleet's workload classes and regenerates the
/// frequency-vs-duration landscape.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig02",
        "Frequency and duration of ML training workloads (paper Figure 2)",
    );
    let samples_per_class = effort.pick(200, 2000);
    let mut fleet = FleetSampler::new(0x0F16_0002);

    let mut table = Table::new(vec![
        "workload",
        "trainings/week (mean)",
        "duration hours (mean)",
        "recommendation?",
    ]);
    let mut freq_means = Vec::new();
    let mut figure = recsim_metrics::Figure::new(
        "workload landscape",
        "trainings per week",
        "duration (hours)",
    );
    for class in WorkloadClass::ALL {
        let mut freq = OnlineStats::new();
        let mut dur = OnlineStats::new();
        let mut series = Series::new(class.name());
        for _ in 0..samples_per_class {
            let w = fleet.sample_workflow(class);
            freq.push(w.trainings_per_week);
            dur.push(w.duration_hours);
            if series.len() < 50 {
                series.push(w.trainings_per_week, w.duration_hours);
            }
        }
        table.push_row(vec![
            class.name().to_string(),
            format!("{:.1}", freq.mean()),
            format!("{:.1}", dur.mean()),
            if class.is_recommendation() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
        freq_means.push((class, freq.mean()));
        figure.push_series(series);
    }
    out.tables.push(table);
    out.figures.push(figure);

    let max_rec = freq_means
        .iter()
        .filter(|(c, _)| c.is_recommendation())
        .map(|(_, f)| *f)
        .fold(0.0f64, f64::max);
    let max_other = freq_means
        .iter()
        .filter(|(c, _)| !c.is_recommendation())
        .map(|(_, f)| *f)
        .fold(0.0f64, f64::max);
    out.claims.push(Claim::new(
        "Deep learning recommendation models are the most frequently trained workloads",
        format!("max recommendation cadence {max_rec:.1}/week vs max other {max_other:.1}/week"),
        max_rec > max_other,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
        assert_eq!(out.tables[0].len(), 4);
        assert_eq!(out.figures[0].series().len(), 4);
    }
}
