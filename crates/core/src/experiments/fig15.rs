//! Figure 15 — model accuracy degrades with batch size under manual tuning.
//!
//! This is the one experiment that runs *real* training: a laptop-scale
//! DLRM on planted-teacher CTR data, a fixed example budget, and the
//! linear-scaling learning-rate rule. The paper's observation — "despite
//! the tuning, the accuracy gap grows as we scale the batch size" — must
//! emerge from actual optimization dynamics, not the simulator.

use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::schema::ModelConfig;
use recsim_metrics::{Figure, Series, Table};
use recsim_train::trainer::TrainerConfig;
use recsim_train::BatchScalingStudy;

/// The model used for the real-training accuracy studies: a scaled-down
/// recommendation model that trains in seconds.
pub fn accuracy_model() -> ModelConfig {
    ModelConfig::test_suite(16, 4, 2_000, &[32, 16])
}

/// The baseline configuration (batch 200, like the production CPU setups).
pub fn baseline_config(effort: Effort) -> TrainerConfig {
    TrainerConfig {
        batch_size: 200,
        train_examples: effort.pick(40_000, 240_000),
        eval_examples: effort.pick(8_000, 20_000),
        learning_rate: 0.04,
        warmup_steps: 20,
        adagrad: true,
        seed: 31,
    }
}

/// Trains at growing batch sizes with the manual linear-scaling rule and
/// reports the NE gap against the batch-200 baseline.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig15",
        "Accuracy gap vs batch size under manual LR tuning (paper Figure 15)",
    );
    let model = accuracy_model();
    let study = BatchScalingStudy::new(&model, baseline_config(effort));
    let batches: Vec<usize> =
        effort.pick(vec![200, 800, 3200], vec![200, 400, 800, 1600, 3200, 6400]);
    let points = study.sweep(&batches);

    let mut table = Table::new(vec!["batch", "scaled LR", "NE", "NE gap vs batch 200"]);
    let mut series = Series::new("NE gap (%)");
    for p in &points {
        table.push_row(vec![
            p.batch_size.to_string(),
            format!("{:.4}", p.learning_rate),
            format!("{:.4}", p.ne),
            format!("{:+.2}%", p.ne_gap_percent),
        ]);
        series.push(p.batch_size as f64, p.ne_gap_percent);
    }
    out.tables.push(table);

    let first_gap = points.first().expect("non-empty").ne_gap_percent;
    let last_gap = points.last().expect("non-empty").ne_gap_percent;
    out.claims.push(Claim::new(
        "Despite manual LR tuning, the accuracy gap grows as the batch size is scaled",
        format!("gap {first_gap:+.2}% at the baseline batch -> {last_gap:+.2}% at the largest"),
        last_gap > first_gap && last_gap > 0.05,
    ));
    let all_finite = points.iter().all(|p| p.ne.is_finite() && p.ne < 1.2);
    out.claims.push(Claim::new(
        "Every configuration still trains to a usable model (NE near or below 1)",
        "all NEs finite and < 1.2",
        all_finite,
    ));
    out.figures.push(
        Figure::new("accuracy gap vs batch size", "batch size", "NE gap (%)").with_series(series),
    );
    out.notes.push(
        "Real numerics on synthetic planted-teacher CTR data with a fixed example budget: \
         larger batches take proportionally fewer optimizer steps, the regime the paper's \
         production sweeps operate in."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
