//! Embedding-access locality and the caching opportunity (extension of
//! paper Section III.A.2).
//!
//! The paper's characterization — skewed access frequencies, hot small
//! tables — "opens up new optimization opportunities as well, such as
//! caching". This driver quantifies that: reuse-distance analysis of the
//! production-model access streams yields LRU hit-rate curves, and feeding
//! the measured hit rate back into the simulator shows how much of the
//! GPU-memory placement's throughput a hot-row cache recovers for a model
//! whose tables live in host memory.

use crate::sweep::sweep;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::schema::ModelConfig;
use recsim_data::trace::AccessTrace;
use recsim_data::CtrGenerator;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::{Figure, Series, Table};
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::{GpuTrainingSim, SimScratch};

/// Runs the locality characterization and the cache-augmented placement
/// study.
pub fn run(effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "locality",
        "Embedding access locality and hot-row caching (extension of §III.A.2)",
    );
    // A model with production-like skew but a traceable size.
    let model = ModelConfig::test_suite(64, 8, 200_000, &[512, 512, 512]);
    let examples = effort.pick(2_000, 20_000);
    let mut gen = CtrGenerator::new(&model, 0x10CA);
    let trace = AccessTrace::collect(&mut gen, examples);
    let profile = trace.merged_profile();

    // Hit-rate curve.
    let mut curve = Series::new("LRU hit rate");
    let mut table = Table::new(vec![
        "cache rows",
        "% of unique rows",
        "LRU hit rate",
        "static top-k coverage",
    ]);
    let unique = profile.unique_rows() as usize;
    for frac in [0.001, 0.01, 0.05, 0.10, 0.25, 0.50] {
        let rows = ((unique as f64 * frac) as usize).max(1);
        let hr = profile.lru_hit_rate(rows);
        curve.push(frac * 100.0, hr);
        table.push_row(vec![
            rows.to_string(),
            format!("{:.1}%", frac * 100.0),
            format!("{:.3}", hr),
            format!("{:.3}", profile.top_k_coverage(rows)),
        ]);
    }
    out.tables.push(table);
    out.figures.push(
        Figure::new(
            "LRU hit rate vs cache size",
            "% of unique rows cached",
            "hit rate",
        )
        .with_series(curve),
    );

    let hr_10 = profile.lru_hit_rate((unique / 10).max(1));
    out.claims.push(Claim::new(
        "Zipf-skewed access concentrates traffic: a cache holding 10% of the touched rows \
         serves the majority of lookups",
        format!("10% LRU cache hit rate = {hr_10:.2}"),
        hr_10 > 0.5,
    ));

    // Cache-augmented system-memory placement.
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let batch = 1600;
    let sim_model = ModelConfig::test_suite(256, 16, 5_000_000, &[512, 512, 512]);
    // Parallel phase: the three placement setups are independent sims.
    let cache_setups = [
        (
            "GPU memory (table-wise)",
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            None,
        ),
        (
            "system memory, no cache",
            PlacementStrategy::SystemMemory,
            None,
        ),
        (
            "system memory + hot-row GPU cache",
            PlacementStrategy::SystemMemory,
            Some(hr_10),
        ),
    ];
    let reports = sweep(&cache_setups, |&(_, strategy, cache)| {
        let mut scratch = SimScratch::new();
        let sim = GpuTrainingSim::new(&sim_model, &bb, strategy, batch).expect("fits");
        match cache {
            Some(hr) => sim
                .with_host_cache_hit_rate(hr)
                .expect("measured hit rate is a valid fraction")
                .run_in(&mut scratch),
            None => sim.run_in(&mut scratch),
        }
    });
    let gpu_mem = &reports[0];
    let host_plain = &reports[1];
    let host_cached = &reports[2];

    let mut table = Table::new(vec!["setup", "ex/s", "vs GPU-memory placement"]);
    for (&(name, _, _), r) in cache_setups.iter().zip(&reports) {
        table.push_row(vec![
            name.to_string(),
            format!("{:.0}", r.throughput()),
            format!("{:.2}x", r.throughput() / gpu_mem.throughput()),
        ]);
    }
    out.tables.push(table);

    let recovered = (host_cached.throughput() - host_plain.throughput())
        / (gpu_mem.throughput() - host_plain.throughput()).max(1.0);
    out.claims.push(Claim::new(
        "A hot-row cache (hit rate from the measured trace) recovers a substantial share \
         of the GPU-memory placement's advantage for host-resident tables",
        format!(
            "cache recovers {:.0}% of the gap ({:.0} -> {:.0} of {:.0})",
            recovered * 100.0,
            host_plain.throughput(),
            host_cached.throughput(),
            gpu_mem.throughput()
        ),
        recovered > 0.25,
    ));
    out.notes.push(format!(
        "{examples} traced examples; reuse distances computed exactly (Mattson stack via \
         Fenwick tree); this experiment extends the paper (it motivates but does not \
         evaluate caching)."
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
