//! Embedding quantization and its placement consequences (extension of
//! paper Section III.A.2).
//!
//! The paper lists "compression for these large embedding tables using
//! quantization" among the optimization opportunities its characterization
//! opens. The consequence the simulator can quantify: shrinking M3's
//! hundreds of GBs changes *which placements are feasible* — at INT8 the
//! tables of the paper's problem child fit a single Big Basin's HBM, and
//! the GPU-memory placement it was denied becomes available.

use crate::setups::gpu_with_fallback;
use crate::sweep::sweep_compact;
use crate::{Claim, Effort, ExperimentOutput};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_data::schema::EmbeddingPrecision;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_metrics::Table;
use recsim_placement::{PartitionScheme, Placement, PlacementStrategy};

/// Sweeps M3's embedding precision and reports feasibility and throughput.
pub fn run(_effort: Effort) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "compression",
        "Embedding quantization unlocks placements for M3 (extension of §III.A.2)",
    );
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let batch = 800;

    // Parallel phase: one embedding precision per sweep point.
    let precisions = [
        ("FP32", EmbeddingPrecision::Fp32),
        ("FP16", EmbeddingPrecision::Fp16),
        ("INT8", EmbeddingPrecision::Int8),
    ];
    let points = sweep_compact(&precisions, |&(_, precision)| {
        let model = production_model(ProductionModelId::M3).with_embedding_precision(precision);
        let fits = Placement::plan(
            &model,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            2.0,
        )
        .is_ok();
        let (report, strategy) =
            gpu_with_fallback(&model, &bb, batch).expect("some placement fits");
        (
            fits,
            report.throughput(),
            strategy.label(),
            Bytes::new(model.total_embedding_bytes()).to_string(),
        )
    });

    let mut table = Table::new(vec![
        "precision",
        "embedding size",
        "fits BB GPU memory?",
        "best BB setup",
        "ex/s",
    ]);
    let mut results = Vec::new();
    for (&(label, precision), (fits, tput, strategy_label, size)) in precisions.iter().zip(&points)
    {
        results.push((precision, *fits, *tput));
        table.push_row(vec![
            label.to_string(),
            size.clone(),
            if *fits { "yes" } else { "no" }.to_string(),
            strategy_label.clone(),
            format!("{tput:.0}"),
        ]);
    }
    out.tables.push(table);

    let fp32 = &results[0];
    let int8 = &results[2];
    out.claims.push(Claim::new(
        "At FP32, M3's tables cannot live in a single Big Basin's GPU memory (the paper's \
         finding); at INT8 they can",
        format!("fp32 fits: {}, int8 fits: {}", fp32.1, int8.1),
        !fp32.1 && int8.1,
    ));
    // The production alternative the paper was forced into for FP32 M3:
    // remote CPU parameter servers (Table III).
    let remote = recsim_sim::GpuTrainingSim::new(
        &production_model(ProductionModelId::M3),
        &bb,
        PlacementStrategy::RemoteCpu { servers: 8 },
        batch,
    )
    .expect("remote always fits")
    .run();
    out.claims.push(Claim::new(
        "Quantization removes the need for the remote-PS setup the paper's Table III was \
         forced into: INT8 M3 in GPU memory far outruns FP32 M3 on remote parameter \
         servers",
        format!(
            "{:.0} ex/s (int8 GPU memory) vs {:.0} ex/s (fp32 remote PS)",
            int8.2,
            remote.throughput()
        ),
        int8.2 > remote.throughput() * 3.0,
    ));
    let model = production_model(ProductionModelId::M3);
    out.claims.push(Claim::new(
        "INT8 quarters the embedding footprint",
        format!(
            "{} -> {}",
            Bytes::new(model.total_embedding_bytes()),
            Bytes::new(
                model
                    .with_embedding_precision(EmbeddingPrecision::Int8)
                    .total_embedding_bytes()
            )
        ),
        model
            .with_embedding_precision(EmbeddingPrecision::Int8)
            .total_embedding_bytes()
            * 4
            == model.total_embedding_bytes(),
    ));
    out.notes.push(
        "Quantized storage is modeled for capacity and traffic only; the accuracy cost of \
         quantization (the reason the paper's production models stayed FP32) is out of \
         scope for the simulator."
            .into(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold() {
        let out = run(Effort::Quick);
        assert!(out.all_claims_hold(), "{}", out.render());
    }
}
