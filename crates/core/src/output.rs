//! Structured experiment results: tables, figures and checked claims.

use recsim_metrics::{ascii, Figure, Table};
use serde::{Deserialize, Serialize};

/// How much compute an experiment driver may spend.
///
/// `Quick` shrinks sample counts and training budgets so the whole suite
/// runs in CI seconds; `Full` matches the scales reported in
/// `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effort {
    /// Reduced scale for tests.
    Quick,
    /// The scale used for the recorded results.
    Full,
}

impl Effort {
    /// Picks `quick` or `full` by variant.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

/// One qualitative statement the paper makes, checked against regenerated
/// data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// The paper's statement, paraphrased.
    pub statement: String,
    /// What the reproduction measured.
    pub observed: String,
    /// Whether the reproduction agrees.
    pub holds: bool,
}

impl Claim {
    /// Records a checked claim.
    pub fn new(statement: impl Into<String>, observed: impl Into<String>, holds: bool) -> Self {
        Self {
            statement: statement.into(),
            observed: observed.into(),
            holds,
        }
    }
}

/// The structured output of one experiment driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutput {
    /// Paper artifact id, e.g. `"fig11"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Result series (for plots).
    pub figures: Vec<Figure>,
    /// Checked qualitative claims.
    pub claims: Vec<Claim>,
    /// Free-form notes (assumptions, substitutions, deviations).
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Creates an empty output shell.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            figures: Vec::new(),
            claims: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Whether every checked claim holds.
    pub fn all_claims_hold(&self) -> bool {
        self.claims.iter().all(|c| c.holds)
    }

    /// The claims that failed.
    pub fn failed_claims(&self) -> Vec<&Claim> {
        self.claims.iter().filter(|c| !c.holds).collect()
    }

    /// Renders everything as a terminal report: tables, ASCII plots, claim
    /// checklist and notes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("==== {} — {} ====\n\n", self.id, self.title));
        for table in &self.tables {
            out.push_str(&table.to_string());
            out.push('\n');
        }
        for figure in &self.figures {
            out.push_str(&ascii::line_plot(figure, 72, 18));
            out.push('\n');
        }
        if !self.claims.is_empty() {
            out.push_str("Claims:\n");
            for claim in &self.claims {
                out.push_str(&format!(
                    "  [{}] {}\n        observed: {}\n",
                    if claim.holds { "ok" } else { "FAIL" },
                    claim.statement,
                    claim.observed
                ));
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_pick() {
        assert_eq!(Effort::Quick.pick(1, 2), 1);
        assert_eq!(Effort::Full.pick(1, 2), 2);
    }

    #[test]
    fn claims_gate_success() {
        let mut out = ExperimentOutput::new("figX", "test");
        assert!(out.all_claims_hold(), "vacuously true");
        out.claims.push(Claim::new("a", "yes", true));
        assert!(out.all_claims_hold());
        out.claims.push(Claim::new("b", "no", false));
        assert!(!out.all_claims_hold());
        assert_eq!(out.failed_claims().len(), 1);
    }

    #[test]
    fn render_contains_sections() {
        let mut out = ExperimentOutput::new("figY", "render test");
        out.claims.push(Claim::new("stmt", "obs", true));
        out.notes.push("a note".into());
        let r = out.render();
        assert!(r.contains("figY"));
        assert!(r.contains("[ok] stmt"));
        assert!(r.contains("note: a note"));
    }
}
