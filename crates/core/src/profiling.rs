//! Hot-path profiling and sim-vs-real roofline calibration (DESIGN.md §12).
//!
//! [`profile_driver`] runs one experiment driver with the `recsim-prof`
//! recorder armed, then joins the drained [`ProfileSnapshot`] with the
//! hardware model: every measured operator is classified against the host
//! CPU's roofline (compute- vs bandwidth-bound, achieved fraction of the
//! roof), and the measured wall-clock shares are calibrated against the
//! simulator's critical-path attribution for the same training
//! configuration. Divergence beyond [`DIVERGENCE_THRESHOLD_PP`] percentage
//! points is flagged — the signal that the simulator's cost model and the
//! real numerics have drifted apart.
//!
//! The join is deliberately built from plain data ([`build_report`] is a
//! pure function of a snapshot), so everything below the timing source is
//! unit-testable with synthetic profiles.

use crate::experiments::{self, fig15};
use crate::Effort;
use recsim_hw::device::skylake_dual_socket;
use recsim_hw::units::{Bytes, Flops};
use recsim_hw::{AccessPattern, ComputeDevice, Work};
use recsim_metrics::Table;
use recsim_prof::{self as prof, Op, OpProfile, ProfileSnapshot};
use recsim_sim::{CpuClusterSetup, CpuTrainingSim};
use recsim_trace::{chrome_trace, TaskCategory, Tracer};
use serde::{Deserialize, Serialize};

/// Measured-vs-simulated share divergence (percentage points) beyond which
/// a calibration row is flagged.
pub const DIVERGENCE_THRESHOLD_PP: f64 = 15.0;

/// How a measured operator sits against the device roofline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RooflineBound {
    /// Arithmetic throughput limits the op (intensity above the ridge).
    Compute,
    /// Memory traffic limits the op (intensity below the ridge).
    Bandwidth,
    /// No counters recorded (loop phases, zero-shape kernels).
    Unclassified,
}

impl RooflineBound {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            RooflineBound::Compute => "compute",
            RooflineBound::Bandwidth => "bandwidth",
            RooflineBound::Unclassified => "-",
        }
    }
}

/// One operator's measured aggregates joined with its roofline placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpRoofline {
    /// Which operator.
    pub op: Op,
    /// Closed scopes recorded.
    pub count: u64,
    /// Measured wall time, seconds.
    pub total_secs: f64,
    /// Share of the measured loop time, percent (phases: share of the
    /// profiled driver's wall time instead).
    pub share_percent: f64,
    /// Mean scope duration, microseconds.
    pub mean_us: f64,
    /// Median retained-sample duration, microseconds.
    pub p50_us: f64,
    /// 99th-percentile retained-sample duration, microseconds.
    pub p99_us: f64,
    /// Closed-form FLOPs counted.
    pub flops: u64,
    /// Closed-form bytes counted.
    pub bytes: u64,
    /// Achieved compute rate, GFLOP/s.
    pub achieved_gflops: f64,
    /// Achieved memory traffic, GB/s.
    pub achieved_gb_per_sec: f64,
    /// Arithmetic intensity, FLOP/byte (`None` when no bytes counted).
    pub intensity: Option<f64>,
    /// Which roof limits this op on the reference device.
    pub bound: RooflineBound,
    /// Roofline-predicted time for the counted work, seconds.
    pub roof_secs: f64,
    /// `roof_secs / total_secs`: fraction of the roof actually achieved
    /// (1.0 = running at the roof; small = leaving the device idle).
    pub roof_fraction: f64,
}

/// One row of the sim-vs-measured calibration join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationRow {
    /// Attribution category label ([`TaskCategory::label`]).
    pub category: String,
    /// Share of the measured (profiled) loop time, percent.
    pub measured_percent: f64,
    /// Share of the simulator's critical-path makespan, percent,
    /// renormalized over the categories the profiler can observe.
    pub simulated_percent: f64,
    /// `measured_percent - simulated_percent`.
    pub divergence_pp: f64,
    /// Whether `|divergence_pp|` exceeds the threshold.
    pub flagged: bool,
}

/// A profiled driver run: measured op profiles, roofline classification
/// and the calibration join against the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Which registry driver ran.
    pub driver: String,
    /// The effort it ran at.
    pub effort: Effort,
    /// Wall-clock of the whole driver run, seconds.
    pub wall_secs: f64,
    /// Measured loop time (sum over phase scopes), seconds.
    pub loop_secs: f64,
    /// Measured leaf-kernel time, seconds.
    pub leaf_secs: f64,
    /// Loop time not attributed to any leaf kernel, seconds.
    pub unattributed_secs: f64,
    /// Total counted work across leaves, GFLOP.
    pub total_gflop: f64,
    /// Total counted traffic across leaves, GB.
    pub total_gb: f64,
    /// Reference device the roofline classification used.
    pub device: String,
    /// Per-op measurements joined with the roofline (active ops only,
    /// leaves first in [`Op::ALL`] order).
    pub ops: Vec<OpRoofline>,
    /// Sim-vs-measured calibration rows (empty when the driver exercised
    /// no real training).
    pub calibration: Vec<CalibrationRow>,
    /// Share of the simulator makespan in categories the profiler cannot
    /// observe (dropped before renormalizing), percent.
    pub sim_unobserved_percent: f64,
    /// Flagging threshold used, percentage points.
    pub threshold_pp: f64,
    /// The raw drained snapshot (retained samples feed the Chrome export).
    pub snapshot: ProfileSnapshot,
}

/// The attribution category a measured op calibrates against, `None` for
/// loop phases that only bracket other ops.
pub fn category_of(op: Op) -> Option<TaskCategory> {
    match op {
        Op::EmbGather => Some(TaskCategory::EmbeddingLookup),
        Op::EmbScatter | Op::OptSparse => Some(TaskCategory::EmbeddingUpdate),
        Op::LinearFwd | Op::LinearBwd | Op::InteractionFwd | Op::InteractionBwd | Op::LossBce => {
            Some(TaskCategory::MlpCompute)
        }
        Op::OptDense => Some(TaskCategory::Optimizer),
        Op::ServeCacheLookup => Some(TaskCategory::EmbeddingLookup),
        Op::ServeBatchAssemble => Some(TaskCategory::HostStaging),
        Op::DataGen => Some(TaskCategory::ReaderStall),
        Op::TrainStep | Op::Eval | Op::ServeStep => None,
    }
}

/// The access pattern an op's counted bytes follow on the host.
fn pattern_of(op: Op) -> AccessPattern {
    match op {
        Op::EmbGather | Op::EmbScatter | Op::OptSparse | Op::ServeCacheLookup => {
            AccessPattern::Random
        }
        _ => AccessPattern::Sequential,
    }
}

/// The counted work of one op as a roofline quantum (no launch overhead:
/// measured time already includes every real overhead).
fn work_of(p: &OpProfile) -> Work {
    Work::new(
        Flops::new(p.flops),
        Bytes::new(p.bytes),
        pattern_of(p.op),
        0,
    )
}

/// Runs the registry driver `id` at `effort` with the profiler armed and
/// returns the joined report.
///
/// # Errors
///
/// Returns the list of known ids when `id` is not in the registry.
pub fn profile_driver(id: &str, effort: Effort) -> Result<ProfileReport, String> {
    let Some((_, driver)) = experiments::registry().into_iter().find(|(d, _)| *d == id) else {
        let known: Vec<&str> = experiments::registry().iter().map(|(d, _)| *d).collect();
        return Err(format!(
            "unknown driver `{id}`; known drivers: {}",
            known.join(", ")
        ));
    };
    prof::reset();
    prof::set_enabled(true);
    let t0 = prof::clock::monotonic_nanos();
    let _ = driver(effort);
    let wall_secs = prof::clock::monotonic_nanos().saturating_sub(t0) as f64 * 1e-9;
    let snapshot = prof::drain();
    prof::set_enabled(false);
    Ok(build_report(id, effort, wall_secs, snapshot))
}

/// Joins a drained snapshot with the roofline model and the simulator's
/// attribution. Pure in everything but the embedded `CpuTrainingSim` run
/// (itself deterministic), so synthetic snapshots exercise every branch.
pub fn build_report(
    driver: &str,
    effort: Effort,
    wall_secs: f64,
    snapshot: ProfileSnapshot,
) -> ProfileReport {
    let device = skylake_dual_socket();
    let loop_secs = snapshot.phase_total_ns() as f64 * 1e-9;
    let leaf_secs = snapshot.leaf_total_ns() as f64 * 1e-9;
    let unattributed_secs = snapshot.unattributed_ns() as f64 * 1e-9;

    let ops: Vec<OpRoofline> = snapshot
        .active_ops()
        .map(|p| op_roofline(p, &device, loop_secs, wall_secs))
        .collect();

    let (calibration, sim_unobserved_percent) = calibrate(&snapshot, effort);

    ProfileReport {
        driver: driver.to_string(),
        effort,
        wall_secs,
        loop_secs,
        leaf_secs,
        unattributed_secs,
        total_gflop: snapshot.total_flops() as f64 * 1e-9,
        total_gb: snapshot.total_bytes() as f64 * 1e-9,
        device: "skylake dual-socket".to_string(),
        ops,
        calibration,
        sim_unobserved_percent,
        threshold_pp: DIVERGENCE_THRESHOLD_PP,
        snapshot,
    }
}

fn op_roofline(
    p: &OpProfile,
    device: &ComputeDevice,
    loop_secs: f64,
    wall_secs: f64,
) -> OpRoofline {
    let total_secs = p.total_ns as f64 * 1e-9;
    let basis = if p.op.is_phase() {
        wall_secs
    } else {
        loop_secs
    };
    let share_percent = if basis > 0.0 {
        total_secs / basis * 100.0
    } else {
        0.0
    };
    let work = work_of(p);
    let has_counters = p.flops > 0 || p.bytes > 0;
    let bound = if !has_counters {
        RooflineBound::Unclassified
    } else if work.is_memory_bound_on(device) {
        RooflineBound::Bandwidth
    } else {
        RooflineBound::Compute
    };
    let roof_secs = if has_counters {
        work.time_on(device).as_secs()
    } else {
        0.0
    };
    OpRoofline {
        op: p.op,
        count: p.count,
        total_secs,
        share_percent,
        mean_us: p.mean_ns() as f64 * 1e-3,
        p50_us: p.p50_ns as f64 * 1e-3,
        p99_us: p.p99_ns as f64 * 1e-3,
        flops: p.flops,
        bytes: p.bytes,
        achieved_gflops: p.achieved_flops_per_sec() * 1e-9,
        achieved_gb_per_sec: p.achieved_bytes_per_sec() * 1e-9,
        intensity: (p.bytes > 0).then(|| p.intensity()),
        bound,
        roof_secs,
        roof_fraction: if total_secs > 0.0 {
            roof_secs / total_secs
        } else {
            0.0
        },
    }
}

/// One calibration bucket: a coarse pipeline stage with an explicit
/// mapping on both sides of the join. The measured loop is a single
/// process, while the reference CPU fleet distributes the same stages
/// across parameter servers — PS-side scatters and EASGD center updates
/// are that architecture's "update" stage, so they join the same bucket
/// as the local scatter/optimizer scopes. Wire time (`NicTransfer` etc.)
/// has no local counterpart and is excluded (reported as unobserved).
struct CalibrationBucket {
    label: &'static str,
    ops: &'static [Op],
    categories: &'static [TaskCategory],
}

const CALIBRATION_BUCKETS: [CalibrationBucket; 4] = [
    CalibrationBucket {
        label: "embedding lookup",
        ops: &[Op::EmbGather, Op::ServeCacheLookup],
        categories: &[TaskCategory::EmbeddingLookup],
    },
    CalibrationBucket {
        label: "embedding + dense update",
        ops: &[Op::EmbScatter, Op::OptSparse, Op::OptDense],
        categories: &[
            TaskCategory::EmbeddingUpdate,
            TaskCategory::PsUpdate,
            TaskCategory::Optimizer,
        ],
    },
    CalibrationBucket {
        label: "mlp compute",
        ops: &[
            Op::LinearFwd,
            Op::LinearBwd,
            Op::InteractionFwd,
            Op::InteractionBwd,
            Op::LossBce,
        ],
        categories: &[TaskCategory::MlpCompute],
    },
    CalibrationBucket {
        label: "input pipeline",
        ops: &[Op::DataGen, Op::ServeBatchAssemble],
        categories: &[TaskCategory::ReaderStall, TaskCategory::HostStaging],
    },
];

/// Joins measured per-bucket shares with the simulator's critical-path
/// attribution for the reference training configuration (the fig15
/// accuracy model at its baseline batch — the same hot path the real
/// training drivers execute). Returns the rows plus the simulator share
/// that fell outside every bucket (distribution overhead the local loop
/// cannot exhibit).
fn calibrate(snapshot: &ProfileSnapshot, effort: Effort) -> (Vec<CalibrationRow>, f64) {
    let measured: Vec<f64> = CALIBRATION_BUCKETS
        .iter()
        .map(|b| {
            b.ops
                .iter()
                .map(|&op| snapshot.op(op).total_ns as f64 * 1e-9)
                .sum()
        })
        .collect();
    let measured_total: f64 = measured.iter().sum();
    if measured_total <= 0.0 {
        return (Vec::new(), 0.0);
    }

    let model = fig15::accuracy_model();
    let batch = fig15::baseline_config(effort).batch_size as u64;
    let Ok(sim) = CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(batch)) else {
        return (Vec::new(), 0.0);
    };
    let cp = sim.critical_path(5);

    let simulated: Vec<f64> = CALIBRATION_BUCKETS
        .iter()
        .map(|b| b.categories.iter().map(|&c| cp.share_of(c)).sum())
        .collect();
    let sim_observable: f64 = simulated.iter().sum();
    let sim_unobserved_percent = if cp.makespan > 0.0 {
        (cp.makespan - sim_observable) / cp.makespan * 100.0
    } else {
        0.0
    };

    let rows = CALIBRATION_BUCKETS
        .iter()
        .zip(measured.iter().zip(&simulated))
        .map(|(bucket, (&m, &s))| {
            let measured_percent = m / measured_total * 100.0;
            let simulated_percent = if sim_observable > 0.0 {
                s / sim_observable * 100.0
            } else {
                0.0
            };
            let divergence_pp = measured_percent - simulated_percent;
            CalibrationRow {
                category: bucket.label.to_string(),
                measured_percent,
                simulated_percent,
                divergence_pp,
                flagged: divergence_pp.abs() > DIVERGENCE_THRESHOLD_PP,
            }
        })
        .collect();
    (rows, sim_unobserved_percent)
}

impl ProfileReport {
    /// The kernel table: one row per active leaf op.
    pub fn kernel_table(&self) -> Table {
        let mut t = Table::new(vec![
            "op", "count", "total ms", "share", "mean µs", "p99 µs", "GFLOP/s", "GB/s", "FLOP/B",
            "bound", "of roof",
        ]);
        for o in self.ops.iter().filter(|o| !o.op.is_phase()) {
            t.push_row(vec![
                o.op.id().to_string(),
                o.count.to_string(),
                format!("{:.2}", o.total_secs * 1e3),
                format!("{:.1}%", o.share_percent),
                format!("{:.1}", o.mean_us),
                format!("{:.1}", o.p99_us),
                format!("{:.2}", o.achieved_gflops),
                format!("{:.2}", o.achieved_gb_per_sec),
                o.intensity.map_or("-".to_string(), |i| format!("{i:.2}")),
                o.bound.label().to_string(),
                format!("{:.0}%", o.roof_fraction * 100.0),
            ]);
        }
        if self.loop_secs > 0.0 {
            t.push_row(vec![
                "(unattributed)".to_string(),
                "-".to_string(),
                format!("{:.2}", self.unattributed_secs * 1e3),
                format!("{:.1}%", self.unattributed_secs / self.loop_secs * 100.0),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        t
    }

    /// The phase table: loop phases against the driver wall clock.
    pub fn phase_table(&self) -> Table {
        let mut t = Table::new(vec!["phase", "count", "total ms", "share of wall"]);
        for o in self.ops.iter().filter(|o| o.op.is_phase()) {
            t.push_row(vec![
                o.op.id().to_string(),
                o.count.to_string(),
                format!("{:.2}", o.total_secs * 1e3),
                format!("{:.1}%", o.share_percent),
            ]);
        }
        t
    }

    /// The calibration table: measured vs simulated category shares.
    pub fn calibration_table(&self) -> Table {
        let mut t = Table::new(vec![
            "category",
            "measured",
            "simulated",
            "divergence",
            "flag",
        ]);
        for r in &self.calibration {
            t.push_row(vec![
                r.category.clone(),
                format!("{:.1}%", r.measured_percent),
                format!("{:.1}%", r.simulated_percent),
                format!("{:+.1} pp", r.divergence_pp),
                if r.flagged { "DIVERGENT" } else { "ok" }.to_string(),
            ]);
        }
        t
    }

    /// Renders the human-readable summary (the `--format summary` output).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profiled `{}` ({:?}): wall {:.3} s, loop {:.3} s, leaves {:.3} s \
             ({:.1}% of loop attributed), {:.2} GFLOP / {:.2} GB counted\n",
            self.driver,
            self.effort,
            self.wall_secs,
            self.loop_secs,
            self.leaf_secs,
            if self.loop_secs > 0.0 {
                self.leaf_secs / self.loop_secs * 100.0
            } else {
                0.0
            },
            self.total_gflop,
            self.total_gb,
        ));
        out.push_str(&format!(
            "kernels vs {} roofline:\n{}",
            self.device,
            self.kernel_table()
        ));
        out.push_str(&format!("loop phases:\n{}", self.phase_table()));
        if self.calibration.is_empty() {
            out.push_str("calibration: driver exercised no profiled training loop\n");
        } else {
            out.push_str(&format!(
                "sim-vs-measured calibration (threshold {:.0} pp, {:.1}% of sim makespan \
                 outside profiled categories):\n{}",
                self.threshold_pp,
                self.sim_unobserved_percent,
                self.calibration_table()
            ));
            let flagged = self.calibration.iter().filter(|r| r.flagged).count();
            out.push_str(&format!(
                "{flagged} divergent categor{} of {}\n",
                if flagged == 1 { "y" } else { "ies" },
                self.calibration.len()
            ));
        }
        out
    }

    /// Exports the retained samples as a Perfetto-loadable Chrome trace:
    /// one track per op, spans at their measured offsets.
    pub fn chrome(&self) -> String {
        let mut rec = recsim_trace::TraceRecorder::new();
        for p in &self.snapshot.ops {
            let category = category_of(p.op).unwrap_or(TaskCategory::Framework);
            for s in &p.samples {
                rec.span(
                    p.op.id(),
                    p.op.id(),
                    category,
                    s.start_ns as f64 * 1e-3,
                    s.dur_ns as f64 * 1e-3,
                );
            }
        }
        chrome_trace(&rec.finish())
    }

    /// Serializes the whole report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates the serializer error (never for this report shape).
    pub fn json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_prof::Counters;

    /// A synthetic snapshot shaped like a real training loop drain.
    fn synthetic_snapshot() -> ProfileSnapshot {
        let mut ops: Vec<OpProfile> = Op::ALL
            .into_iter()
            .map(|op| OpProfile {
                op,
                count: 0,
                total_ns: 0,
                flops: 0,
                bytes: 0,
                min_ns: 0,
                max_ns: 0,
                p50_ns: 0,
                p99_ns: 0,
                samples: Vec::new(),
                dropped_samples: 0,
            })
            .collect();
        let mut set = |op: Op, total_ns: u64, c: Counters| {
            let p = &mut ops[op.index()];
            p.count = 10;
            p.total_ns = total_ns;
            p.flops = c.flops;
            p.bytes = c.bytes;
        };
        set(
            Op::LinearFwd,
            400_000,
            Counters::linear_forward(200, 16, 32),
        );
        set(
            Op::LinearBwd,
            700_000,
            Counters::linear_backward(200, 16, 32),
        );
        set(
            Op::EmbGather,
            300_000,
            Counters::embedding_forward(800, 200, 8),
        );
        set(
            Op::EmbScatter,
            200_000,
            Counters::embedding_backward(800, 400, 8),
        );
        set(Op::LossBce, 50_000, Counters::bce_loss(200));
        set(Op::OptDense, 150_000, Counters::adagrad_update(1_000));
        set(Op::DataGen, 500_000, Counters::none());
        set(Op::TrainStep, 2_000_000, Counters::none());
        ProfileSnapshot { ops }
    }

    #[test]
    fn leaf_shares_and_unattributed_sum_to_loop() {
        let report = build_report("automl", Effort::Quick, 3e-3, synthetic_snapshot());
        let leaf_shares: f64 = report
            .ops
            .iter()
            .filter(|o| !o.op.is_phase())
            .map(|o| o.share_percent)
            .sum();
        let unattributed = report.unattributed_secs / report.loop_secs * 100.0;
        assert!(
            (leaf_shares + unattributed - 100.0).abs() < 1e-6,
            "{leaf_shares} + {unattributed} != 100"
        );
        assert!(report.loop_secs > 0.0 && report.leaf_secs > 0.0);
    }

    #[test]
    fn embedding_gather_is_bandwidth_bound_on_cpu() {
        let report = build_report("automl", Effort::Quick, 3e-3, synthetic_snapshot());
        let gather = report
            .ops
            .iter()
            .find(|o| o.op == Op::EmbGather)
            .expect("active");
        assert_eq!(gather.bound, RooflineBound::Bandwidth);
        assert!(gather.intensity.expect("bytes counted") < 1.0);
    }

    #[test]
    fn large_gemm_is_compute_bound_on_cpu() {
        let device = skylake_dual_socket();
        let p = OpProfile {
            op: Op::LinearFwd,
            count: 1,
            total_ns: 1_000_000,
            flops: Counters::linear_forward(1024, 1024, 1024).flops,
            bytes: Counters::linear_forward(1024, 1024, 1024).bytes,
            min_ns: 0,
            max_ns: 0,
            p50_ns: 0,
            p99_ns: 0,
            samples: Vec::new(),
            dropped_samples: 0,
        };
        let r = op_roofline(&p, &device, 1.0, 1.0);
        assert_eq!(r.bound, RooflineBound::Compute);
        assert!(r.roof_secs > 0.0);
    }

    #[test]
    fn phases_are_unclassified_and_share_wall() {
        let report = build_report("automl", Effort::Quick, 4e-3, synthetic_snapshot());
        let step = report
            .ops
            .iter()
            .find(|o| o.op == Op::TrainStep)
            .expect("active");
        assert_eq!(step.bound, RooflineBound::Unclassified);
        // 2 ms of 4 ms wall.
        assert!((step.share_percent - 50.0).abs() < 1e-6);
    }

    #[test]
    fn calibration_covers_observable_categories_and_sums_to_100() {
        let report = build_report("automl", Effort::Quick, 3e-3, synthetic_snapshot());
        assert!(!report.calibration.is_empty());
        let measured: f64 = report.calibration.iter().map(|r| r.measured_percent).sum();
        let simulated: f64 = report.calibration.iter().map(|r| r.simulated_percent).sum();
        assert!(
            (measured - 100.0).abs() < 1e-6,
            "measured sums to {measured}"
        );
        assert!(
            (simulated - 100.0).abs() < 1e-6,
            "simulated sums to {simulated}"
        );
        let labels: Vec<&str> = report
            .calibration
            .iter()
            .map(|r| r.category.as_str())
            .collect();
        for want in [
            "embedding lookup",
            "embedding + dense update",
            "mlp compute",
            "input pipeline",
        ] {
            assert!(labels.contains(&want), "missing {want} in {labels:?}");
        }
    }

    #[test]
    fn calibration_buckets_cover_every_leaf_and_data_gen() {
        for op in Op::ALL {
            let in_bucket = CALIBRATION_BUCKETS.iter().any(|b| b.ops.contains(&op));
            if op.is_phase() {
                assert_eq!(in_bucket, op == Op::DataGen, "{op:?}");
            } else {
                assert!(in_bucket, "{op:?} not in any calibration bucket");
            }
        }
    }

    #[test]
    fn empty_snapshot_has_no_calibration() {
        let empty = ProfileSnapshot {
            ops: Op::ALL
                .into_iter()
                .map(|op| OpProfile {
                    op,
                    count: 0,
                    total_ns: 0,
                    flops: 0,
                    bytes: 0,
                    min_ns: 0,
                    max_ns: 0,
                    p50_ns: 0,
                    p99_ns: 0,
                    samples: Vec::new(),
                    dropped_samples: 0,
                })
                .collect(),
        };
        let report = build_report("table1", Effort::Quick, 1e-3, empty);
        assert!(report.calibration.is_empty());
        assert!(report.ops.is_empty());
        assert!(report.summary().contains("no profiled training loop"));
    }

    #[test]
    fn every_leaf_op_maps_to_a_category() {
        for op in Op::ALL {
            if op.is_phase() {
                // Only DataGen among phases feeds calibration directly.
                continue;
            }
            assert!(category_of(op).is_some(), "{op:?} unmapped");
        }
        assert_eq!(category_of(Op::TrainStep), None);
        assert_eq!(category_of(Op::Eval), None);
        assert_eq!(category_of(Op::DataGen), Some(TaskCategory::ReaderStall));
    }

    #[test]
    fn summary_renders_all_sections() {
        let report = build_report("automl", Effort::Quick, 3e-3, synthetic_snapshot());
        let s = report.summary();
        assert!(s.contains("kernels vs skylake dual-socket roofline"));
        assert!(s.contains("loop phases"));
        assert!(s.contains("sim-vs-measured calibration"));
        assert!(s.contains("linear/fwd"));
        assert!(s.contains("(unattributed)"));
    }

    #[test]
    fn chrome_export_emits_one_span_per_sample() {
        let mut snapshot = synthetic_snapshot();
        snapshot.ops[Op::LinearFwd.index()].samples = vec![
            recsim_prof::Sample {
                start_ns: 1_000,
                dur_ns: 500,
            },
            recsim_prof::Sample {
                start_ns: 2_000,
                dur_ns: 700,
            },
        ];
        let report = build_report("automl", Effort::Quick, 3e-3, snapshot);
        let json = report.chrome();
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("linear/fwd"));
    }

    #[test]
    fn unknown_driver_is_an_error() {
        let err = profile_driver("nonsense", Effort::Quick).expect_err("unknown id");
        assert!(err.contains("unknown driver"));
        assert!(err.contains("automl"));
    }
}
