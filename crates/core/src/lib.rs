//! The experiment harness of `recsim`: drivers that regenerate every table
//! and figure of *Understanding Training Efficiency of Deep Learning
//! Recommendation Models at Scale* (HPCA 2021).
//!
//! Each experiment in [`experiments`] is a pure function from a scale
//! ([`Effort`]) to an [`ExperimentOutput`] — structured tables, series and
//! the qualitative *claims* the paper makes about that experiment, each
//! checked against the regenerated data. The benchmark binaries in
//! `recsim-bench` and the integration tests are thin wrappers over these
//! drivers.
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`experiments::fig01`] | Fig. 1 — production models across platforms |
//! | [`experiments::fig02`] | Fig. 2 — workload frequency vs duration |
//! | [`experiments::fig05`] | Fig. 5 — utilization distributions |
//! | [`experiments::fig06`] | Fig. 6 — hash size vs feature length |
//! | [`experiments::fig07`] | Fig. 7 — feature-length KDE |
//! | [`experiments::fig09`] | Fig. 9 — trainer / PS count histograms |
//! | [`experiments::fig10`] | Fig. 10 — dense/sparse feature sweep |
//! | [`experiments::fig11`] | Fig. 11 — batch-size scaling |
//! | [`experiments::fig12`] | Fig. 12 — hash-size scaling |
//! | [`experiments::fig13`] | Fig. 13 — MLP-dimension scaling |
//! | [`experiments::fig14`] | Fig. 14 — placement comparison BB vs Zion |
//! | [`experiments::fig15`] | Fig. 15 — batch size vs accuracy (real training) |
//! | [`experiments::table1`] | Table I — platform inventory |
//! | [`experiments::table2`] | Table II — production model descriptions |
//! | [`experiments::table3`] | Table III — CPU vs GPU optimal setups |
//! | [`experiments::automl`] | §VI.C — AutoML re-tuning study |
//!
//! # Example
//!
//! ```
//! use recsim_core::{Effort, experiments::table1};
//!
//! let out = table1::run(Effort::Quick);
//! assert!(out.all_claims_hold(), "{}", out.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design_space;
pub mod detsan_check;
pub mod experiments;
pub mod output;
pub mod profiling;
pub mod setups;
pub mod sweep;

pub use output::{Claim, Effort, ExperimentOutput};
pub use sweep::{sweep, sweep_compact};

/// Re-export of the validation layer so experiment drivers and downstream
/// tools can name RV0xx codes without a direct `recsim-verify` dependency.
pub use recsim_verify as verify;
