//! Shared experiment setups: the paper's Table III production
//! configurations, platform constructors and placement fallbacks.

use recsim_data::production::{production_model, ProductionModelId};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::{CpuClusterSetup, CpuTrainingSim, GpuTrainingSim, SimReport};
use serde::{Deserialize, Serialize};

/// The production training setup of one model (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductionSetup {
    /// Which production model.
    pub model: ProductionModelId,
    /// The CPU fleet configuration.
    pub cpu: CpuClusterSetup,
    /// Embedding placement of the Big Basin port.
    pub gpu_placement: PlacementStrategy,
    /// The throughput-optimal global batch found for the GPU port.
    pub gpu_batch: u64,
}

impl ProductionSetup {
    /// Table III's row for `model`.
    ///
    /// CPU setups are the paper's (trainers and parameter servers split
    /// evenly between dense and sparse); GPU placements and optimal batch
    /// sizes are the paper's findings (M1: 1600 on GPU memory, M2: 3200 on
    /// GPU memory, M3: 800 against remote CPU parameter servers).
    pub fn for_model(model: ProductionModelId) -> Self {
        match model {
            ProductionModelId::M1 => Self {
                model,
                cpu: CpuClusterSetup {
                    trainers: 6,
                    dense_ps: 4,
                    sparse_ps: 4,
                    hogwild_threads: 1,
                    batch_per_thread: 200,
                    sync_period: 16,
                },
                gpu_placement: PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
                gpu_batch: 1600,
            },
            ProductionModelId::M2 => Self {
                model,
                cpu: CpuClusterSetup {
                    trainers: 20,
                    dense_ps: 8,
                    sparse_ps: 8,
                    hogwild_threads: 1,
                    batch_per_thread: 200,
                    sync_period: 16,
                },
                gpu_placement: PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
                gpu_batch: 3200,
            },
            ProductionModelId::M3 => Self {
                model,
                cpu: CpuClusterSetup {
                    trainers: 8,
                    dense_ps: 4,
                    sparse_ps: 4,
                    hogwild_threads: 4,
                    batch_per_thread: 200,
                    sync_period: 16,
                },
                gpu_placement: PlacementStrategy::RemoteCpu { servers: 8 },
                gpu_batch: 800,
            },
        }
    }

    /// The model configuration.
    pub fn model_config(&self) -> ModelConfig {
        production_model(self.model)
    }

    /// Simulates the production CPU setup.
    ///
    /// # Panics
    ///
    /// Panics if the Table III cluster shape fails validation — the shapes
    /// here are constants, so that would be a bug in this module.
    pub fn simulate_cpu(&self) -> SimReport {
        CpuTrainingSim::new(&self.model_config(), self.cpu)
            .expect("Table III CPU setup is valid")
            .run()
    }

    /// Simulates the Big Basin port (32 GiB SKU).
    ///
    /// # Panics
    ///
    /// Panics if the Table III placement cannot host the model — that would
    /// mean the generated model diverged from the paper's capacity bands.
    pub fn simulate_big_basin(&self) -> SimReport {
        GpuTrainingSim::new(
            &self.model_config(),
            &Platform::big_basin(Bytes::from_gib(32)),
            self.gpu_placement,
            self.gpu_batch,
        )
        .expect("Table III placement must fit")
        .run()
    }

    /// Simulates the model on Zion with the best placement among system
    /// memory, hybrid and distributed GPU memory (system memory wins for
    /// the production models, per the paper's Figure 14 finding).
    ///
    /// # Panics
    ///
    /// Panics if no placement fits (Zion's 2 TB always holds the production
    /// models).
    pub fn simulate_zion(&self) -> SimReport {
        let zion = Platform::zion_prototype();
        let model = self.model_config();
        let batch = self.gpu_batch.max(1600);
        [
            PlacementStrategy::SystemMemory,
            PlacementStrategy::Hybrid,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
        ]
        .into_iter()
        .filter_map(|s| GpuTrainingSim::new(&model, &zion, s, batch).ok())
        .map(|sim| sim.run())
        .max_by(|a, b| {
            a.throughput()
                .partial_cmp(&b.throughput())
                .expect("finite throughput")
        })
        .expect("Zion system memory must fit production models")
    }
}

/// Tries GPU placements in preference order (table-wise GPU memory, then
/// hybrid spill) and returns the first that fits, with its label — the
/// fallback chain a practitioner walks when tables outgrow HBM (used by the
/// hash-scaling sweep of Figure 12).
pub fn gpu_with_fallback(
    config: &ModelConfig,
    platform: &Platform,
    batch: u64,
) -> Option<(SimReport, PlacementStrategy)> {
    for strategy in [
        PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
        PlacementStrategy::Hybrid,
        PlacementStrategy::SystemMemory,
    ] {
        if let Ok(sim) = GpuTrainingSim::new(config, platform, strategy, batch) {
            return Some((sim.run(), strategy));
        }
    }
    None
}

/// The throughput-optimal batch size over a candidate list.
pub fn optimal_batch(
    config: &ModelConfig,
    platform: &Platform,
    strategy: PlacementStrategy,
    candidates: &[u64],
) -> Option<(u64, SimReport)> {
    let mut best: Option<(u64, SimReport)> = None;
    for &batch in candidates {
        if let Ok(sim) = GpuTrainingSim::new(config, platform, strategy, batch) {
            let report = sim.run();
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| report.throughput() > b.throughput());
            if better {
                best = Some((batch, report));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_setups_have_paper_shapes() {
        let m1 = ProductionSetup::for_model(ProductionModelId::M1);
        assert_eq!(m1.cpu.trainers, 6);
        assert_eq!(m1.cpu.total_servers(), 14);
        assert_eq!(m1.gpu_batch, 1600);
        let m3 = ProductionSetup::for_model(ProductionModelId::M3);
        assert!(matches!(
            m3.gpu_placement,
            PlacementStrategy::RemoteCpu { .. }
        ));
        assert_eq!(m3.cpu.hogwild_threads, 4);
    }

    #[test]
    fn all_production_setups_simulate() {
        for id in ProductionModelId::ALL {
            let setup = ProductionSetup::for_model(id);
            assert!(setup.simulate_cpu().throughput() > 0.0);
            assert!(setup.simulate_big_basin().throughput() > 0.0);
            assert!(setup.simulate_zion().throughput() > 0.0);
        }
    }

    #[test]
    fn fallback_walks_the_chain() {
        let bb = Platform::big_basin(Bytes::from_gib(16));
        // Small model: first choice fits.
        let small = ModelConfig::test_suite(64, 8, 10_000, &[128]);
        let (_, strat) = gpu_with_fallback(&small, &bb, 512).expect("fits");
        assert_eq!(
            strat,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise)
        );
        // M3-scale model: table-wise fails, hybrid catches it.
        let m3 = production_model(ProductionModelId::M3);
        let (_, strat) = gpu_with_fallback(&m3, &bb, 512).expect("hybrid or host");
        assert_ne!(
            strat,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise)
        );
    }

    #[test]
    fn optimal_batch_picks_a_candidate() {
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let cfg = ModelConfig::test_suite(64, 8, 100_000, &[256, 256]);
        let (batch, report) = optimal_batch(
            &cfg,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            &[200, 1600, 6400],
        )
        .expect("some batch fits");
        assert!([200, 1600, 6400].contains(&batch));
        assert!(report.throughput() > 0.0);
    }
}
