//! The Section V design-space sweep helpers.
//!
//! The paper: "we created a test suite where we can customize major model
//! configurations in a systematic way … numbers of dense features between 64
//! and 4096 … counts of sparse features ranging between 4 and 128 … a
//! constant hash size … truncate number of look-ups per table to 32."

use recsim_data::schema::ModelConfig;
use serde::{Deserialize, Serialize};

/// The fixed anchors of the paper's test suite (Section V / Figure 10
/// caption): MLP 512³, hash 100 000, CPU batch 200, GPU batch 1600.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSuite {
    /// Hash size shared by all sparse features.
    pub hash_size: u64,
    /// Symmetric MLP used for both stacks.
    pub mlp: Vec<usize>,
    /// CPU mini-batch size.
    pub cpu_batch: u64,
    /// GPU global batch size.
    pub gpu_batch: u64,
}

impl Default for TestSuite {
    fn default() -> Self {
        Self {
            hash_size: 100_000,
            mlp: vec![512, 512, 512],
            cpu_batch: 200,
            gpu_batch: 1600,
        }
    }
}

impl TestSuite {
    /// The model with `dense` dense and `sparse` sparse features.
    pub fn model(&self, dense: usize, sparse: usize) -> ModelConfig {
        ModelConfig::test_suite(dense, sparse, self.hash_size, &self.mlp)
    }

    /// The paper's dense-feature axis (64 … 4096).
    pub fn dense_axis() -> Vec<usize> {
        vec![64, 128, 256, 512, 1024, 2048, 4096]
    }

    /// The paper's sparse-feature axis (4 … 128).
    pub fn sparse_axis() -> Vec<usize> {
        vec![4, 8, 16, 32, 64, 128]
    }

    /// The batch-size axis of Figure 11.
    pub fn batch_axis() -> Vec<u64> {
        vec![64, 128, 200, 400, 800, 1600, 3200, 6400, 12800]
    }

    /// The hash-size axis of Figure 12.
    pub fn hash_axis() -> Vec<u64> {
        vec![
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            50_000_000,
            100_000_000,
        ]
    }

    /// The MLP-dimension axis of Figure 13 as `(width, layers)` pairs
    /// (rendered as `width^layers` like the paper).
    pub fn mlp_axis() -> Vec<(usize, usize)> {
        vec![(64, 2), (128, 2), (256, 3), (512, 3), (1024, 3), (2048, 4)]
    }

    /// A reduced grid for `Effort::Quick` runs.
    pub fn quick_dense_axis() -> Vec<usize> {
        vec![64, 512, 4096]
    }

    /// A reduced grid for `Effort::Quick` runs.
    pub fn quick_sparse_axis() -> Vec<usize> {
        vec![4, 32, 128]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure_10_caption() {
        let t = TestSuite::default();
        assert_eq!(t.hash_size, 100_000);
        assert_eq!(t.mlp, vec![512, 512, 512]);
        assert_eq!(t.cpu_batch, 200);
        assert_eq!(t.gpu_batch, 1600);
    }

    #[test]
    fn axes_span_the_paper_ranges() {
        let dense = TestSuite::dense_axis();
        assert_eq!(*dense.first().unwrap(), 64);
        assert_eq!(*dense.last().unwrap(), 4096);
        let sparse = TestSuite::sparse_axis();
        assert_eq!(*sparse.first().unwrap(), 4);
        assert_eq!(*sparse.last().unwrap(), 128);
    }

    #[test]
    fn model_uses_anchors() {
        let t = TestSuite::default();
        let m = t.model(256, 16);
        assert_eq!(m.num_dense(), 256);
        assert_eq!(m.num_sparse(), 16);
        assert_eq!(m.truncation(), 32);
        assert_eq!(m.sparse_features()[0].hash_size(), 100_000);
    }
}
