//! Greedy partitioning primitives shared by the placement planner.
//!
//! The paper notes that "differences in access ratios might create
//! imbalances among servers if not carefully partitioned" — the planner
//! therefore balances by *load* (bytes or traffic), not by table count,
//! using the classic longest-processing-time greedy heuristic.

/// Assigns each weighted item to one of `bins` bins, minimizing the maximum
/// bin load (LPT greedy: heaviest item first, to the least-loaded bin).
///
/// Returns the bin index per item (aligned with `weights`).
///
/// # Panics
///
/// Panics if `bins == 0`.
///
/// # Example
///
/// ```
/// let assignment = recsim_placement::partition::greedy_balance(&[5, 3, 3, 1], 2);
/// // The two 3s end up opposite the 5.
/// assert_ne!(assignment[1], assignment[0]);
/// assert_ne!(assignment[2], assignment[0]);
/// ```
pub fn greedy_balance(weights: &[u64], bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0usize; weights.len()];
    for idx in order {
        // `bins > 0` is asserted above, so a minimum always exists.
        let bin = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        assignment[idx] = bin;
        loads[bin] += weights[idx];
    }
    assignment
}

/// Like [`greedy_balance`] but with a per-bin capacity; returns
/// `Err(item_index)` for the first item that fits in no bin.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn greedy_pack(weights: &[u64], bins: usize, capacity: u64) -> Result<Vec<usize>, usize> {
    assert!(bins > 0, "need at least one bin");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0usize; weights.len()];
    for idx in order {
        let candidate = loads
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l + weights[idx] <= capacity)
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i);
        match candidate {
            Some(bin) => {
                assignment[idx] = bin;
                loads[bin] += weights[idx];
            }
            None => return Err(idx),
        }
    }
    Ok(assignment)
}

/// Improves an assignment by local search: repeatedly moves an item from
/// the most-loaded bin to the least-loaded bin, or swaps a pair across
/// them, whenever that lowers the maximum load. Runs at most `iterations`
/// improvement rounds and stops early at a local optimum.
///
/// The result is never worse than the input (the paper's warning about
/// partition-induced imbalance motivates spending a little more than plain
/// LPT).
///
/// # Panics
///
/// Panics if `bins == 0` or an assignment index is out of range.
pub fn refine_balance(
    weights: &[u64],
    assignment: &mut [usize],
    bins: usize,
    iterations: usize,
) {
    assert!(bins > 0, "need at least one bin");
    let mut loads = bin_loads(weights, assignment, bins);
    for _ in 0..iterations {
        // `bins > 0` is asserted above; the `else` arms are unreachable but
        // keep the function total without a panicking call.
        let Some((max_bin, &max_load)) = loads
            .iter()
            .enumerate()
            .max_by_key(|&(i, &l)| (l, usize::MAX - i))
        else {
            return;
        };
        let Some((min_bin, &min_load)) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
        else {
            return;
        };
        if max_bin == min_bin {
            return;
        }
        // Best single move: largest item on the max bin that still helps.
        let mut best: Option<(usize, u64)> = None; // (item, new_max_pair_load)
        for (item, &b) in assignment.iter().enumerate() {
            if b != max_bin {
                continue;
            }
            let w = weights[item];
            let new_pair_max = (max_load - w).max(min_load + w);
            if new_pair_max < max_load && best.map(|(_, m)| new_pair_max < m).unwrap_or(true)
            {
                best = Some((item, new_pair_max));
            }
        }
        // Best swap between max and min bins.
        let mut best_swap: Option<(usize, usize, u64)> = None;
        for (a, &ba) in assignment.iter().enumerate() {
            if ba != max_bin {
                continue;
            }
            for (b, &bb) in assignment.iter().enumerate() {
                if bb != min_bin || weights[a] <= weights[b] {
                    continue;
                }
                let delta = weights[a] - weights[b];
                let new_pair_max = (max_load - delta).max(min_load + delta);
                if new_pair_max < max_load
                    && best_swap.map(|(_, _, m)| new_pair_max < m).unwrap_or(true)
                {
                    best_swap = Some((a, b, new_pair_max));
                }
            }
        }
        match (best, best_swap) {
            (Some((item, move_max)), Some((a, b, swap_max))) => {
                if swap_max < move_max {
                    assignment[a] = min_bin;
                    assignment[b] = max_bin;
                } else {
                    assignment[item] = min_bin;
                }
            }
            (Some((item, _)), None) => assignment[item] = min_bin,
            (None, Some((a, b, _))) => {
                assignment[a] = min_bin;
                assignment[b] = max_bin;
            }
            (None, None) => return, // local optimum
        }
        loads = bin_loads(weights, assignment, bins);
    }
}

/// Total load per bin for an assignment.
///
/// # Panics
///
/// Panics if an assignment index is out of range.
pub fn bin_loads(weights: &[u64], assignment: &[usize], bins: usize) -> Vec<u64> {
    let mut loads = vec![0u64; bins];
    for (w, &b) in weights.iter().zip(assignment) {
        loads[b] += w;
    }
    loads
}

/// Load imbalance: `max_load / mean_load`; `1.0` is perfectly balanced.
/// Returns `1.0` for an empty or zero-load system.
pub fn load_imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_spreads_equal_items_evenly() {
        let a = greedy_balance(&[1, 1, 1, 1], 2);
        let loads = bin_loads(&[1, 1, 1, 1], &a, 2);
        assert_eq!(loads, vec![2, 2]);
    }

    #[test]
    fn balance_handles_skew() {
        let weights = [100, 1, 1, 1, 1];
        let a = greedy_balance(&weights, 2);
        let loads = bin_loads(&weights, &a, 2);
        // All small items oppose the big one.
        assert_eq!(loads.iter().min(), Some(&4));
    }

    #[test]
    fn pack_respects_capacity() {
        let weights = [6, 5, 4];
        let a = greedy_pack(&weights, 2, 10).expect("fits");
        let loads = bin_loads(&weights, &a, 2);
        assert!(loads.iter().all(|&l| l <= 10));
    }

    #[test]
    fn pack_reports_unfittable_item() {
        let weights = [6, 6, 6];
        let err = greedy_pack(&weights, 2, 10).expect_err("third 6 cannot fit");
        assert!(weights[err] == 6);
    }

    #[test]
    fn pack_rejects_oversized_single_item() {
        assert!(greedy_pack(&[11], 4, 10).is_err());
    }

    #[test]
    fn imbalance_metrics() {
        assert_eq!(load_imbalance(&[5, 5]), 1.0);
        assert_eq!(load_imbalance(&[10, 0]), 2.0);
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn refinement_never_worsens_and_can_improve() {
        // A case LPT gets wrong: 4,4,3,3,3 into 2 bins. LPT: {4,3,3}=10 vs
        // {4,3}=7; optimal: {4,4}? no — {4,3,3}=10/{4,3}=7 vs {4,4}=8/{3,3,3}=9.
        let weights = [4u64, 4, 3, 3, 3];
        let mut assignment = greedy_balance(&weights, 2);
        let before = *bin_loads(&weights, &assignment, 2).iter().max().unwrap();
        refine_balance(&weights, &mut assignment, 2, 20);
        let after = *bin_loads(&weights, &assignment, 2).iter().max().unwrap();
        assert!(after <= before);
        assert_eq!(after, 9, "optimal max load is 9");
        // Conservation: every item still assigned to a valid bin.
        assert!(assignment.iter().all(|&b| b < 2));
    }

    #[test]
    fn refinement_handles_trivial_cases() {
        let mut empty: Vec<usize> = vec![];
        refine_balance(&[], &mut empty, 3, 10);
        let mut one = vec![0usize];
        refine_balance(&[5], &mut one, 1, 10);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn empty_weights_ok() {
        assert!(greedy_balance(&[], 3).is_empty());
        assert_eq!(greedy_pack(&[], 3, 10), Ok(vec![]));
    }
}
