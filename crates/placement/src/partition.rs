//! Greedy partitioning primitives shared by the placement planner and the
//! `recsim-shard` auto-sharder.
//!
//! The paper notes that "differences in access ratios might create
//! imbalances among servers if not carefully partitioned" — the planner
//! therefore balances by *load* (bytes or traffic), not by table count,
//! using the classic longest-processing-time greedy heuristic.

use crate::plan::PlacementError;
use recsim_hw::units::Bytes;

/// Assigns each weighted item to one of `bins` bins, minimizing the maximum
/// bin load (LPT greedy: heaviest item first, to the least-loaded bin).
///
/// Returns the bin index per item (aligned with `weights`).
///
/// # Panics
///
/// Panics if `bins == 0`.
///
/// # Example
///
/// ```
/// let assignment = recsim_placement::partition::greedy_balance(&[5, 3, 3, 1], 2);
/// // The two 3s end up opposite the 5.
/// assert_ne!(assignment[1], assignment[0]);
/// assert_ne!(assignment[2], assignment[0]);
/// ```
pub fn greedy_balance(weights: &[u64], bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0usize; weights.len()];
    for idx in order {
        // `bins > 0` is asserted above, so a minimum always exists.
        let bin = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map_or(0, |(i, _)| i);
        assignment[idx] = bin;
        loads[bin] += weights[idx];
    }
    assignment
}

/// Like [`greedy_balance`] but with a per-bin capacity; returns
/// [`PlacementError::Unplaceable`] for the first item that fits in no bin.
///
/// # Errors
///
/// [`PlacementError::Unplaceable`] names the first item (in LPT order)
/// whose weight fits in no bin at the given capacity.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn greedy_pack(
    weights: &[u64],
    bins: usize,
    capacity: u64,
) -> Result<Vec<usize>, PlacementError> {
    assert!(bins > 0, "need at least one bin");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0usize; weights.len()];
    for idx in order {
        let candidate = loads
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l + weights[idx] <= capacity)
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i);
        match candidate {
            Some(bin) => {
                assignment[idx] = bin;
                loads[bin] += weights[idx];
            }
            None => {
                return Err(PlacementError::Unplaceable {
                    item: idx,
                    needed: Bytes::new(weights[idx]),
                    available: Bytes::new(capacity),
                })
            }
        }
    }
    Ok(assignment)
}

/// One memory tier for [`pack_tiers`]: `bins` bins of `capacity` bytes
/// each (e.g. 8 GPUs × HBM table capacity, 1 host × DRAM, 8 remote PS ×
/// DDR4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tier {
    /// Number of equally-sized bins in this tier.
    pub bins: usize,
    /// Per-bin capacity in bytes.
    pub capacity: u64,
}

/// Multi-tier capacity packing: places items (visited in the caller-given
/// `order` of indices into `weights`) into the first tier with room,
/// choosing the least-loaded fitting bin within that tier. Tiers are
/// tried in declaration order, so putting the fastest memory first and
/// ordering items hottest-first yields a cost-density packing.
///
/// Returns `(tier, bin)` per item, aligned with `weights`.
///
/// # Errors
///
/// [`PlacementError::Unplaceable`] for the first visited item that fits in
/// no bin of any tier (`available` reports the largest per-bin capacity).
///
/// # Panics
///
/// Panics if `tiers` is empty, any tier has zero bins, `order` is not a
/// permutation of `0..weights.len()`, or an order index is out of range.
pub fn pack_tiers(
    weights: &[u64],
    order: &[usize],
    tiers: &[Tier],
) -> Result<Vec<(usize, usize)>, PlacementError> {
    assert!(!tiers.is_empty(), "need at least one tier");
    assert!(tiers.iter().all(|t| t.bins > 0), "tiers need bins");
    assert_eq!(order.len(), weights.len(), "order must cover every item");
    let max_capacity = tiers.iter().map(|t| t.capacity).max().unwrap_or(0);
    let mut loads: Vec<Vec<u64>> = tiers.iter().map(|t| vec![0u64; t.bins]).collect();
    let mut assignment = vec![(0usize, 0usize); weights.len()];
    let mut seen = vec![false; weights.len()];
    for &idx in order {
        assert!(!seen[idx], "order visits item {idx} twice");
        seen[idx] = true;
        let w = weights[idx];
        let mut placed = false;
        for (t, tier_loads) in loads.iter_mut().enumerate() {
            let candidate = tier_loads
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l + w <= tiers[t].capacity)
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i);
            if let Some(bin) = candidate {
                tier_loads[bin] += w;
                assignment[idx] = (t, bin);
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(PlacementError::Unplaceable {
                item: idx,
                needed: Bytes::new(w),
                available: Bytes::new(max_capacity),
            });
        }
    }
    Ok(assignment)
}

/// Improves an assignment by local search: repeatedly moves an item from
/// the most-loaded bin to the least-loaded bin, or swaps a pair across
/// them, whenever that lowers the maximum load. Runs at most `iterations`
/// improvement rounds and stops early at a local optimum.
///
/// The result is never worse than the input (the paper's warning about
/// partition-induced imbalance motivates spending a little more than plain
/// LPT).
///
/// # Panics
///
/// Panics if `bins == 0` or an assignment index is out of range.
pub fn refine_balance(weights: &[u64], assignment: &mut [usize], bins: usize, iterations: usize) {
    assert!(bins > 0, "need at least one bin");
    let mut loads = bin_loads(weights, assignment, bins);
    for _ in 0..iterations {
        // `bins > 0` is asserted above; the `else` arms are unreachable but
        // keep the function total without a panicking call.
        let Some((max_bin, &max_load)) = loads
            .iter()
            .enumerate()
            .max_by_key(|&(i, &l)| (l, usize::MAX - i))
        else {
            return;
        };
        let Some((min_bin, &min_load)) = loads.iter().enumerate().min_by_key(|&(i, &l)| (l, i))
        else {
            return;
        };
        if max_bin == min_bin {
            return;
        }
        // Best single move: largest item on the max bin that still helps.
        let mut best: Option<(usize, u64)> = None; // (item, new_max_pair_load)
        for (item, &b) in assignment.iter().enumerate() {
            if b != max_bin {
                continue;
            }
            let w = weights[item];
            let new_pair_max = (max_load - w).max(min_load + w);
            if new_pair_max < max_load && best.is_none_or(|(_, m)| new_pair_max < m) {
                best = Some((item, new_pair_max));
            }
        }
        // Best swap between max and min bins.
        let mut best_swap: Option<(usize, usize, u64)> = None;
        for (a, &ba) in assignment.iter().enumerate() {
            if ba != max_bin {
                continue;
            }
            for (b, &bb) in assignment.iter().enumerate() {
                if bb != min_bin || weights[a] <= weights[b] {
                    continue;
                }
                let delta = weights[a] - weights[b];
                let new_pair_max = (max_load - delta).max(min_load + delta);
                if new_pair_max < max_load && best_swap.is_none_or(|(_, _, m)| new_pair_max < m) {
                    best_swap = Some((a, b, new_pair_max));
                }
            }
        }
        match (best, best_swap) {
            (Some((item, move_max)), Some((a, b, swap_max))) => {
                if swap_max < move_max {
                    assignment[a] = min_bin;
                    assignment[b] = max_bin;
                } else {
                    assignment[item] = min_bin;
                }
            }
            (Some((item, _)), None) => assignment[item] = min_bin,
            (None, Some((a, b, _))) => {
                assignment[a] = min_bin;
                assignment[b] = max_bin;
            }
            (None, None) => return, // local optimum
        }
        loads = bin_loads(weights, assignment, bins);
    }
}

/// Total load per bin for an assignment.
///
/// # Panics
///
/// Panics if an assignment index is out of range.
pub fn bin_loads(weights: &[u64], assignment: &[usize], bins: usize) -> Vec<u64> {
    let mut loads = vec![0u64; bins];
    for (w, &b) in weights.iter().zip(assignment) {
        loads[b] += w;
    }
    loads
}

/// Load imbalance: `max_load / mean_load`; `1.0` is perfectly balanced.
/// Returns `1.0` for an empty or zero-load system.
pub fn load_imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_spreads_equal_items_evenly() {
        let a = greedy_balance(&[1, 1, 1, 1], 2);
        let loads = bin_loads(&[1, 1, 1, 1], &a, 2);
        assert_eq!(loads, vec![2, 2]);
    }

    #[test]
    fn balance_handles_skew() {
        let weights = [100, 1, 1, 1, 1];
        let a = greedy_balance(&weights, 2);
        let loads = bin_loads(&weights, &a, 2);
        // All small items oppose the big one.
        assert_eq!(loads.iter().min(), Some(&4));
    }

    #[test]
    fn pack_respects_capacity() {
        let weights = [6, 5, 4];
        let a = greedy_pack(&weights, 2, 10).expect("fits");
        let loads = bin_loads(&weights, &a, 2);
        assert!(loads.iter().all(|&l| l <= 10));
    }

    #[test]
    fn pack_reports_unfittable_item() {
        let weights = [6, 6, 6];
        let err = greedy_pack(&weights, 2, 10).expect_err("third 6 cannot fit");
        match err {
            PlacementError::Unplaceable {
                item,
                needed,
                available,
            } => {
                assert_eq!(weights[item], 6);
                assert_eq!(needed.as_u64(), 6);
                assert_eq!(available.as_u64(), 10);
            }
            other => panic!("expected Unplaceable, got {other:?}"),
        }
    }

    #[test]
    fn pack_rejects_oversized_single_item() {
        let err = greedy_pack(&[11], 4, 10).expect_err("11 > 10");
        assert!(matches!(err, PlacementError::Unplaceable { item: 0, .. }));
        assert!(err.to_string().contains("no bin has room"));
    }

    #[test]
    fn tiers_fill_in_declaration_order() {
        // Two fast bins of 10, one slow bin of 100: first two items land
        // in tier 0, the third spills.
        let weights = [8, 8, 8];
        let tiers = [
            Tier {
                bins: 2,
                capacity: 10,
            },
            Tier {
                bins: 1,
                capacity: 100,
            },
        ];
        let a = pack_tiers(&weights, &[0, 1, 2], &tiers).expect("fits");
        assert_eq!(a[0], (0, 0));
        assert_eq!(a[1], (0, 1));
        assert_eq!(a[2], (1, 0));
    }

    #[test]
    fn tiers_respect_order_priority() {
        // Reversed order: the last item gets the fast tier instead.
        let weights = [8, 8];
        let tiers = [
            Tier {
                bins: 1,
                capacity: 10,
            },
            Tier {
                bins: 1,
                capacity: 100,
            },
        ];
        let a = pack_tiers(&weights, &[1, 0], &tiers).expect("fits");
        assert_eq!(a[1].0, 0, "visited first, gets the fast tier");
        assert_eq!(a[0].0, 1);
    }

    #[test]
    fn tiers_report_unplaceable() {
        let tiers = [Tier {
            bins: 2,
            capacity: 10,
        }];
        let err = pack_tiers(&[4, 11], &[0, 1], &tiers).expect_err("11 fits nowhere");
        assert!(matches!(err, PlacementError::Unplaceable { item: 1, .. }));
    }

    #[test]
    fn imbalance_metrics() {
        assert_eq!(load_imbalance(&[5, 5]), 1.0);
        assert_eq!(load_imbalance(&[10, 0]), 2.0);
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn refinement_never_worsens_and_can_improve() {
        // A case LPT gets wrong: 4,4,3,3,3 into 2 bins. LPT: {4,3,3}=10 vs
        // {4,3}=7; optimal: {4,4}? no — {4,3,3}=10/{4,3}=7 vs {4,4}=8/{3,3,3}=9.
        let weights = [4u64, 4, 3, 3, 3];
        let mut assignment = greedy_balance(&weights, 2);
        let before = *bin_loads(&weights, &assignment, 2).iter().max().unwrap();
        refine_balance(&weights, &mut assignment, 2, 20);
        let after = *bin_loads(&weights, &assignment, 2).iter().max().unwrap();
        assert!(after <= before);
        assert_eq!(after, 9, "optimal max load is 9");
        // Conservation: every item still assigned to a valid bin.
        assert!(assignment.iter().all(|&b| b < 2));
    }

    #[test]
    fn refinement_handles_trivial_cases() {
        let mut empty: Vec<usize> = vec![];
        refine_balance(&[], &mut empty, 3, 10);
        let mut one = vec![0usize];
        refine_balance(&[5], &mut one, 1, 10);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn empty_weights_ok() {
        assert!(greedy_balance(&[], 3).is_empty());
        assert_eq!(greedy_pack(&[], 3, 10), Ok(vec![]));
    }
}
