//! The placement strategy vocabulary (paper Figure 8).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How tables are split across GPUs under GPU-memory placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// Whole tables are assigned to GPUs (greedy size balancing).
    TableWise,
    /// Every table's rows are sharded evenly across all GPUs.
    RowWise,
    /// Every GPU holds a full copy of every table: gathers are local and no
    /// forward exchange is needed, but every replica applies the full
    /// batch's updates and gradients must be exchanged — only sensible when
    /// everything fits one GPU's HBM.
    Replicated,
}

impl fmt::Display for PartitionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionScheme::TableWise => write!(f, "table-wise"),
            PartitionScheme::RowWise => write!(f, "row-wise"),
            PartitionScheme::Replicated => write!(f, "replicated"),
        }
    }
}

/// One of the paper's four embedding-placement strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Tables distributed over the GPUs' HBM.
    GpuMemory(PartitionScheme),
    /// Tables in the GPU server's own system (CPU) memory.
    SystemMemory,
    /// Tables partitioned across remote CPU parameter servers.
    RemoteCpu {
        /// Number of remote sparse parameter servers.
        servers: u32,
    },
    /// Hot tables on GPU HBM up to capacity, the rest in system memory.
    Hybrid,
}

impl PlacementStrategy {
    /// All strategies in the order of the paper's Figure 8, with table-wise
    /// GPU partitioning and 8 remote servers as representatives.
    pub fn figure8_lineup() -> [PlacementStrategy; 4] {
        [
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            PlacementStrategy::SystemMemory,
            PlacementStrategy::RemoteCpu { servers: 8 },
            PlacementStrategy::Hybrid,
        ]
    }

    /// Short label for report tables.
    pub fn label(&self) -> String {
        match self {
            PlacementStrategy::GpuMemory(s) => format!("GPU memory ({s})"),
            PlacementStrategy::SystemMemory => "system memory".to_string(),
            PlacementStrategy::RemoteCpu { servers } => {
                format!("remote CPU ({servers} PS)")
            }
            PlacementStrategy::Hybrid => "hybrid GPU+system".to_string(),
        }
    }
}

impl fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_covers_the_four_options() {
        let lineup = PlacementStrategy::figure8_lineup();
        assert_eq!(lineup.len(), 4);
        assert!(matches!(lineup[0], PlacementStrategy::GpuMemory(_)));
        assert!(matches!(lineup[1], PlacementStrategy::SystemMemory));
        assert!(matches!(lineup[2], PlacementStrategy::RemoteCpu { .. }));
        assert!(matches!(lineup[3], PlacementStrategy::Hybrid));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> = PlacementStrategy::figure8_lineup()
            .iter()
            .map(PlacementStrategy::label)
            .collect();
        assert_eq!(labels.len(), 4);
    }
}
